"""Scenario-campaign orchestration: declarative sweeps, a parallel runner and
a persistent cross-run penalty cache.

The contention models are only useful at scale when many scenarios — schemes
× networks × models × placements — can be priced cheaply.  This package
turns the incremental engine of :mod:`repro.core.incremental` into an
orchestration layer:

* :class:`CampaignSpec` expands declarative sweeps into concrete scenarios;
* :class:`CampaignRunner` executes them on a worker pool, deduplicating and
  fanning out the cache-miss component evaluations;
* :class:`PersistentPenaltyCache` keeps the memoized contention situations
  warm across runs;
* :class:`CampaignResultStore` collects the results for
  :mod:`repro.analysis`, JSON and CSV consumers.

Shell entry point: ``python -m repro campaign --spec campaign.json``.
"""

from .persistence import PersistentPenaltyCache, canonical_key
from .progress import CampaignProgress, ScenarioProgress
from .results import CampaignResultStore, ScenarioResult
from .runner import CampaignRunner, resolve_model
from .spec import CampaignSpec, InterferenceSpec, ScenarioSpec, WorkloadSpec

__all__ = [
    "CampaignProgress",
    "ScenarioProgress",
    "CampaignSpec",
    "InterferenceSpec",
    "ScenarioSpec",
    "WorkloadSpec",
    "CampaignRunner",
    "resolve_model",
    "PersistentPenaltyCache",
    "canonical_key",
    "CampaignResultStore",
    "ScenarioResult",
]
