"""Parallel campaign execution.

:class:`CampaignRunner` executes the scenarios of a :class:`CampaignSpec`
on a :mod:`concurrent.futures` worker pool while sharing one
:class:`~repro.core.incremental.PenaltyCache` across every scenario:

* **graph scenarios** are decomposed into conflict components first; the
  distinct cache-miss components of the *whole campaign* are evaluated in
  parallel (they are independent by construction and deduplicated across
  scenarios, so an isomorphic contention situation is priced exactly once —
  the biggest win for the Myrinet model's exponential state-set
  enumeration), then every scenario is assembled from the warm cache;
* **application scenarios** are independent simulations and fan out one per
  worker, their rate providers sharing the campaign cache.

Parallel execution is **bit-exact** with serial execution: a component
evaluation is a deterministic function of its canonical snapshot, and a
cache hit replays the stored floats unchanged, so the penalties of a
scenario do not depend on which worker (or which earlier scenario) priced
its components.  The work *counters* may differ between backends (a
component priced once in parallel might have been a hit in a differently
ordered serial run); the results never do —
``tests/campaign/test_campaign_runner.py`` asserts this over random
campaigns.

The ``backend`` parameter selects ``"thread"`` (default; shares the cache
in-process), ``"process"`` (real CPU parallelism for the model evaluations;
workers receive a cache snapshot and send fresh entries back), or
``"serial"`` (inline, no pool — the reference for exactness tests).
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..cluster.spec import custom_cluster
from ..core.incremental import (
    EngineStats,
    PenaltyCache,
    _evaluate_component,
    cached_predict,
)
from ..core.penalty import ContentionModel, LinearCostModel
from ..core.registry import get_model, model_for_network
from ..exceptions import ModelError, WorkloadError
from ..network.technologies import get_technology
from ..obs import MetricsRegistry
from ..simulator.engine import EngineConfig
from ..simulator.providers import ModelRateProvider
from ..simulator.simulator import Simulator
from ..trace import JsonlTraceSink, TraceRecord
from .persistence import PersistentPenaltyCache
from .results import CampaignResultStore, ScenarioResult
from .spec import CampaignSpec, ScenarioSpec

__all__ = ["CampaignRunner", "resolve_model"]

BACKENDS = ("serial", "thread", "process")


def resolve_model(name: str, network: str) -> ContentionModel:
    """Model axis entry → model instance (``"auto"`` = the network's model)."""
    if name in ("auto", "paper"):
        return model_for_network(network)
    try:
        return model_for_network(name)
    except ModelError:
        return get_model(name)


def _cost_model(network: str) -> LinearCostModel:
    return LinearCostModel.for_technology(get_technology(network))


def _merge_stats(target: EngineStats, snapshot: Dict[str, int]) -> None:
    for field_name, value in snapshot.items():
        setattr(target, field_name, getattr(target, field_name) + value)


def _execute_graph_scenario(
    scenario: ScenarioSpec,
    cache: Optional[PenaltyCache],
    stats: EngineStats,
    map_fn: Optional[Callable] = None,
    graph=None,
    model: Optional[ContentionModel] = None,
) -> ScenarioResult:
    """Price one static-graph scenario through the component cache."""
    if graph is None:
        graph = scenario.build_graph()
    if model is None:
        model = resolve_model(scenario.model, scenario.network)
    prediction = cached_predict(
        model, graph, _cost_model(scenario.network),
        cache=cache, map_fn=map_fn, stats=stats,
    )
    metrics = {
        "mean_penalty": prediction.mean_penalty,
        "max_penalty": prediction.max_penalty,
        "total_time": max(prediction.times.values(), default=0.0),
    }
    return ScenarioResult(
        axes=scenario.axes(),
        metrics=metrics,
        penalties=prediction.penalties,
        times=prediction.times,
    )


def _scenario_trace_path(trace_dir: str, scenario: ScenarioSpec) -> Path:
    return Path(trace_dir) / f"{scenario.scenario_id}.jsonl"


def _execute_app_scenario(
    scenario: ScenarioSpec,
    cores_per_node: int,
    cache: Optional[PenaltyCache],
    trace_dir: Optional[str] = None,
    metrics_every: int = 0,
) -> Tuple[ScenarioResult, Dict[str, int]]:
    """Run one application scenario through the predictive simulator.

    With ``trace_dir`` set the run's :mod:`repro.trace` record stream is
    written to ``<trace_dir>/<scenario_id>.jsonl`` (the directory is created
    on demand); tracing never changes the results.  ``metrics_every > 0``
    additionally attaches a per-scenario :class:`~repro.obs.MetricsRegistry`
    and samples it into the trace every that many steps — opt-in, because
    the samples carry wall-clock timings and make the trace *bytes* (never
    the results) run-dependent.
    """
    application = scenario.build_application()
    cluster = custom_cluster(
        num_nodes=int(scenario.num_hosts or 1),
        cores_per_node=cores_per_node,
        technology=scenario.network,
    )
    model = resolve_model(scenario.model, scenario.network)
    provider = ModelRateProvider(model, cluster.technology, cache=cache)
    injectors = scenario.build_injectors()
    sink = None
    if trace_dir is not None:
        path = _scenario_trace_path(trace_dir, scenario)
        path.parent.mkdir(parents=True, exist_ok=True)
        sink = JsonlTraceSink(path)
        # run.meta header makes the file self-describing, so `repro trace
        # replay` can rebuild this scenario without the campaign spec
        params = scenario.workload.param_dict()
        sink.emit(TraceRecord(0.0, "run.meta", None, {
            "scenario_id": scenario.scenario_id,
            "workload": scenario.workload.name,
            "kind": scenario.workload.kind,
            "hosts": scenario.num_hosts,
            "tasks": params.get("num_tasks", scenario.num_hosts),
            "size": params.get("size"),
            "problem_size": params.get("problem_size", 4000),
            "block_size": params.get("block_size", 200),
            "network": scenario.network,
            "placement": scenario.placement or "RRP",
            "seed": int(scenario.seed or 0),
            "cores_per_node": cores_per_node,
            "mode": "predictive",
            "interference": (scenario.interference.to_dict()
                             if scenario.interference else "none"),
        }))
    config = None
    if injectors or sink is not None:
        metrics = (MetricsRegistry()
                   if sink is not None and metrics_every > 0 else None)
        config = EngineConfig(injectors=injectors, trace=sink, metrics=metrics,
                              metrics_sample_every=max(int(metrics_every), 0))
    try:
        simulator = Simulator(
            cluster, provider, technology=cluster.technology, config=config,
            mode="predictive", model_name=model.name,
        )
        report = simulator.run(
            application,
            placement=scenario.placement or "RRP",
            seed=int(scenario.seed or 0),
        )
    finally:
        if sink is not None:
            sink.close()
    times = {str(rank): value for rank, value in report.communication_times().items()}
    metrics = {
        "mean_penalty": report.average_penalty,
        "max_penalty": report.max_penalty,
        "total_time": report.total_time,
    }
    result = ScenarioResult(axes=scenario.axes(), metrics=metrics, times=times)
    return result, provider.stats.snapshot()


def _cache_snapshot(cache: PenaltyCache) -> Tuple[bool, List[Tuple[Hashable, Dict]]]:
    return isinstance(cache, PersistentPenaltyCache), cache.items()


def _app_scenario_job(
    payload: Tuple[ScenarioSpec, int, Tuple[bool, List[Tuple[Hashable, Dict]]],
                   Optional[str], int],
) -> Tuple[ScenarioResult, Dict[str, int], List[Tuple[Hashable, Dict]]]:
    """Process-pool job: rebuild a worker-local cache, run, return new entries.

    ``metrics_every`` travels as a plain int (a ``MetricsRegistry`` holds a
    lock and is not picklable); the registry is built inside the worker.
    """
    scenario, cores_per_node, (persistent, entries), trace_dir, metrics_every = payload
    cache: PenaltyCache = PersistentPenaltyCache() if persistent else PenaltyCache()
    for key, mapping in entries:
        # entries are already in the parent cache's keyspace: bypass re-encoding
        PenaltyCache.put(cache, key, mapping)
    result, stats = _execute_app_scenario(scenario, cores_per_node, cache,
                                          trace_dir=trace_dir,
                                          metrics_every=metrics_every)
    seeded = {key for key, _ in entries}
    fresh = [(key, mapping) for key, mapping in cache.items() if key not in seeded]
    return result, stats, fresh


class CampaignRunner:
    """Execute a campaign, sharing one penalty cache across all workers.

    Parameters
    ----------
    spec:
        The campaign to run.
    cache:
        Shared :class:`PenaltyCache` (pass a
        :class:`~repro.campaign.persistence.PersistentPenaltyCache` to stay
        warm across repeated campaigns).  ``None`` creates a private
        in-memory cache.
    max_workers:
        Worker-pool width; ``<= 1`` runs inline regardless of ``backend``.
    backend:
        ``"thread"`` (default), ``"process"`` or ``"serial"``.
    trace_dir:
        Per-scenario trace directory (overrides ``spec.trace_dir``); every
        application scenario writes ``<trace_dir>/<scenario_id>.jsonl``.
        ``None`` falls back to the spec's toggle; tracing off is the
        bit-exact default.
    metrics_every:
        When > 0 (and tracing is on), attach a per-scenario metrics
        registry and emit a ``metrics.sample`` record every that many
        engine steps — what ``repro campaign --progress`` tails.  Default
        0 keeps the traces byte-identical across backends and runs (the
        samples carry wall-clock timings).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache: Optional[PenaltyCache] = None,
        max_workers: int = 1,
        backend: str = "thread",
        trace_dir: Optional[str] = None,
        metrics_every: int = 0,
    ) -> None:
        if backend not in BACKENDS:
            raise WorkloadError(
                f"unknown campaign backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        self.spec = spec
        self.cache = cache if cache is not None else PenaltyCache(max_entries=65536)
        self.max_workers = int(max_workers)
        self.backend = "serial" if self.max_workers <= 1 else backend
        self.trace_dir = trace_dir if trace_dir is not None else spec.trace_dir
        self.metrics_every = int(metrics_every)
        self.stats = EngineStats()

    def trace_paths(self) -> List[Path]:
        """Trace files this campaign would write (application scenarios only)."""
        if self.trace_dir is None:
            return []
        return [
            _scenario_trace_path(self.trace_dir, scenario)
            for scenario in self.spec.scenarios()
            if scenario.is_application
        ]

    # ------------------------------------------------------------------ run
    def run(self) -> CampaignResultStore:
        scenarios = self.spec.scenarios()
        if self.backend == "serial":
            results = self._run_serial(scenarios)
        else:
            results = self._run_parallel(scenarios)
        return CampaignResultStore(
            campaign=self.spec.name,
            results=results,
            stats=self.stats.snapshot(),
        )

    # ----------------------------------------------------------- serial path
    def _run_serial(self, scenarios: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        results: List[ScenarioResult] = []
        for scenario in scenarios:
            if scenario.is_application:
                result, snapshot = _execute_app_scenario(
                    scenario, self.spec.cores_per_node, self.cache,
                    trace_dir=self.trace_dir,
                    metrics_every=self.metrics_every,
                )
                _merge_stats(self.stats, snapshot)
            else:
                result = _execute_graph_scenario(scenario, self.cache, self.stats)
            results.append(result)
        return results

    # --------------------------------------------------------- parallel path
    def _run_parallel(self, scenarios: Sequence[ScenarioSpec]) -> List[ScenarioResult]:
        executor_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
        graph_indices = [i for i, s in enumerate(scenarios) if not s.is_application]
        app_indices = [i for i, s in enumerate(scenarios) if s.is_application]
        built = {
            index: (
                scenarios[index].build_graph(),
                resolve_model(scenarios[index].model, scenarios[index].network),
            )
            for index in graph_indices
        }
        with executor_cls(max_workers=self.max_workers) as executor:
            stored, stored_comms = self._price_graph_components(
                [(scenarios[i], *built[i]) for i in graph_indices], executor
            )
            self.stats.cache_misses += stored
            self.stats.component_evaluations += stored
            self.stats.comm_evaluations += stored_comms
            hits_before = self.stats.cache_hits
            for index in graph_indices:
                # every component is warm now: assembly is pure cache transport
                graph, model = built[index]
                results[index] = _execute_graph_scenario(
                    scenarios[index], self.cache, self.stats,
                    graph=graph, model=model,
                )
            # a pre-priced component is a first-encounter miss in the serial
            # run but a hit during assembly: shift the counters so the totals
            # line up with a cold serial execution.  Under LRU eviction
            # pressure some pre-priced entries never get hit (they are
            # genuinely re-evaluated), hence the bound on the shift.
            assembly_hits = self.stats.cache_hits - hits_before
            self.stats.cache_hits -= min(stored, assembly_hits)
            if app_indices:
                if self.backend == "thread":
                    outcomes = executor.map(
                        lambda s: _execute_app_scenario(
                            s, self.spec.cores_per_node, self.cache,
                            trace_dir=self.trace_dir,
                            metrics_every=self.metrics_every,
                        ),
                        [scenarios[i] for i in app_indices],
                    )
                    for index, (result, snapshot) in zip(app_indices, outcomes):
                        results[index] = result
                        _merge_stats(self.stats, snapshot)
                else:
                    snapshot = _cache_snapshot(self.cache)
                    payloads = [
                        (scenarios[i], self.spec.cores_per_node, snapshot,
                         self.trace_dir, self.metrics_every)
                        for i in app_indices
                    ]
                    for index, (result, stats, entries) in zip(
                        app_indices, executor.map(_app_scenario_job, payloads)
                    ):
                        results[index] = result
                        _merge_stats(self.stats, stats)
                        for key, mapping in entries:
                            PenaltyCache.put(self.cache, key, mapping)
        return [r for r in results if r is not None]

    def _price_graph_components(
        self, graph_scenarios: Sequence[Tuple[ScenarioSpec, Any, ContentionModel]],
        executor,
    ) -> Tuple[int, int]:
        """Evaluate the distinct cache-miss components of every graph scenario.

        Takes ``(scenario, graph, model)`` triples (graphs/models are built
        once by the caller and reused for assembly).  Components are
        deduplicated campaign-wide by their cache key, then fanned out over
        the pool; afterwards the per-scenario assembly in the caller is
        (almost) pure cache transport.  Returns the number of components
        stored and their communication count, which the caller folds into
        the work counters.
        """
        jobs: "OrderedDict[Hashable, Tuple[ContentionModel, Any, Tuple[str, ...], Dict[str, Tuple[int, int]]]]" = OrderedDict()
        for scenario, graph, model in graph_scenarios:
            rule = model.component_rule
            if rule is None or not model.structural_penalties:
                continue  # priced whole during assembly, exactly like serial
            model_key = model.memo_key()
            for names in graph.conflict_components(rule):
                component_key, endpoint_ranks = graph.canonical_component(names)
                key = (model_key, component_key)
                if key in jobs or self.cache.get(key) is not None:
                    continue
                jobs[key] = (model, graph.subgraph(names), tuple(names), endpoint_ranks)
        if not jobs:
            return 0, 0
        job_list = list(jobs.items())
        evaluations = executor.map(
            _evaluate_component, [(m, g, n) for _, (m, g, n, _) in job_list]
        )
        stored = 0
        stored_comms = 0
        for (key, (_, _, names, endpoint_ranks)), evaluated in zip(job_list, evaluations):
            self.cache.store(key, endpoint_ranks, evaluated)
            if self.cache.get(key) is not None:
                stored += 1
                stored_comms += len(names)
        return stored, stored_comms
