"""Live campaign progress from the per-scenario trace files.

A traced campaign writes one JSONL file per application scenario
(``<trace_dir>/<scenario_id>.jsonl``) *while the scenarios run*.
:class:`CampaignProgress` tails every file with a
:class:`~repro.trace.StreamingTraceReader` and folds what it sees into a
per-scenario :class:`ScenarioProgress`: records seen, task completion
(``task.state`` records with status ``"done"`` against the task count the
``run.meta`` header announces), and the latest ``metrics.sample`` payload
when the runner was started with ``metrics_every > 0``.  ``repro campaign
--progress`` polls this from a watcher thread and prints
:meth:`~CampaignProgress.format_line` between poll intervals.

Purely observational: the readers only ever *read* the trace files the
campaign is writing, so polling cannot perturb the runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..exceptions import TraceError
from ..trace.records import TraceRecord
from ..trace.stream import StreamingTraceReader

__all__ = ["ScenarioProgress", "CampaignProgress"]


@dataclass
class ScenarioProgress:
    """What the trace of one scenario has revealed so far."""

    scenario: str
    records: int = 0
    #: task count announced by the run.meta header (None until seen)
    tasks_total: Optional[int] = None
    #: ranks whose latest task.state is "done"
    tasks_done: int = 0
    started: bool = False
    #: payload of the most recent metrics.sample record (empty = none yet)
    sample: Dict[str, Any] = field(default_factory=dict)
    _done_ranks: set = field(default_factory=set, repr=False)

    @property
    def complete(self) -> bool:
        """Every announced task has reached the ``done`` state."""
        return (self.tasks_total is not None and self.tasks_total > 0
                and self.tasks_done >= self.tasks_total)

    def feed(self, records: Sequence[TraceRecord]) -> None:
        for record in records:
            self.records += 1
            self.started = True
            if record.kind == "task.state":
                if record.data.get("status") == "done":
                    self._done_ranks.add(record.subject)
                    self.tasks_done = len(self._done_ranks)
            elif record.kind == "run.meta":
                tasks = record.data.get("tasks")
                if tasks is not None:
                    self.tasks_total = int(tasks)
            elif record.kind == "metrics.sample":
                self.sample = dict(record.data)


class CampaignProgress:
    """Tail every per-scenario trace of a running campaign.

    Construct with the runner's :meth:`~repro.campaign.CampaignRunner.
    trace_paths` *before* starting the campaign (the files need not exist
    yet), then :meth:`poll` periodically.
    """

    def __init__(self, trace_paths: Sequence[Union[str, Path]]) -> None:
        self.scenarios: List[ScenarioProgress] = []
        self._readers: List[StreamingTraceReader] = []
        for path in trace_paths:
            path = Path(path)
            self._readers.append(StreamingTraceReader(path))
            self.scenarios.append(ScenarioProgress(scenario=path.stem))

    def poll(self) -> int:
        """Drain every reader; returns how many new records were absorbed.

        A scenario whose trace turns unreadable mid-campaign (rotated,
        truncated) stops advancing but never kills the watcher — progress
        reporting must not take the campaign down.
        """
        absorbed = 0
        for reader, progress in zip(self._readers, self.scenarios):
            try:
                records = reader.poll()
            except TraceError:
                continue
            if records:
                progress.feed(records)
                absorbed += len(records)
        return absorbed

    # ------------------------------------------------------------------ views
    @property
    def total_records(self) -> int:
        return sum(progress.records for progress in self.scenarios)

    @property
    def completed(self) -> int:
        return sum(1 for progress in self.scenarios if progress.complete)

    def rollup(self) -> Dict[str, Any]:
        """One flat summary dict (the ``--progress`` machine view)."""
        tasks_done = sum(progress.tasks_done for progress in self.scenarios)
        tasks_total = sum(progress.tasks_total or 0 for progress in self.scenarios)
        return {
            "scenarios": len(self.scenarios),
            "started": sum(1 for p in self.scenarios if p.started),
            "completed": self.completed,
            "records": self.total_records,
            "tasks_done": tasks_done,
            "tasks_total": tasks_total,
        }

    def format_line(self) -> str:
        """The one-line progress report ``repro campaign --progress`` prints."""
        rollup = self.rollup()
        line = (
            f"progress: {rollup['completed']}/{rollup['scenarios']} scenarios "
            f"complete | records: {rollup['records']} | "
            f"tasks: {rollup['tasks_done']}/{rollup['tasks_total']}"
        )
        samples = [p.sample for p in self.scenarios if p.sample]
        if samples:
            flushes = sum(s.get("calendar.flushes", 0) for s in samples)
            flush_s = sum(s.get("calendar.flush_s.total", 0.0) for s in samples)
            line += (f" | flushes: {int(flushes)}"
                     f" | flush time: {flush_s * 1000.0:.1f}ms")
        return line
