"""Campaign result records and exports.

Every scenario produces one :class:`ScenarioResult` — the sweep coordinates
plus the priced outcome (per-communication penalties and predicted times for
graph scenarios, per-task communication times and the makespan for simulated
applications).  :class:`CampaignResultStore` collects them in scenario order
(independent of which worker finished first, so serial and parallel runs
produce identical stores) and exports JSON / CSV rows for
:mod:`repro.analysis` and external tooling.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from ..analysis import render_table

__all__ = ["ScenarioResult", "CampaignResultStore"]

#: fixed CSV/table columns (metrics beyond these stay in the JSON export)
_ROW_COLUMNS = (
    "scenario_id", "kind", "workload", "network", "model", "num_hosts",
    "placement", "seed", "interference", "num_communications", "mean_penalty",
    "max_penalty", "total_time",
)


@dataclass
class ScenarioResult:
    """Outcome of one scenario."""

    #: the sweep coordinates (:meth:`ScenarioSpec.axes`)
    axes: Dict[str, Any]
    #: summary metrics; always includes mean_penalty / max_penalty / total_time
    metrics: Dict[str, float]
    #: per-communication penalties (graph scenarios) — the bit-exactness witness
    penalties: Dict[str, float] = field(default_factory=dict)
    #: per-communication predicted times (graph) or per-task comm times (apps)
    times: Dict[str, float] = field(default_factory=dict)

    @property
    def scenario_id(self) -> str:
        return str(self.axes["scenario_id"])

    def row(self) -> Dict[str, Any]:
        """Flat row with the fixed :data:`_ROW_COLUMNS` entries."""
        row: Dict[str, Any] = dict(self.axes)
        row["num_communications"] = len(self.penalties) or len(self.times)
        for column in ("mean_penalty", "max_penalty", "total_time"):
            row[column] = self.metrics.get(column)
        return {column: row.get(column) for column in _ROW_COLUMNS}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axes": dict(self.axes),
            "metrics": dict(self.metrics),
            "penalties": dict(self.penalties),
            "times": dict(self.times),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioResult":
        return cls(
            axes=dict(data["axes"]),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            penalties={k: float(v) for k, v in data.get("penalties", {}).items()},
            times={k: float(v) for k, v in data.get("times", {}).items()},
        )


@dataclass
class CampaignResultStore:
    """All scenario results of one campaign run, in scenario order."""

    campaign: str
    results: List[ScenarioResult] = field(default_factory=list)
    #: aggregate engine work counters (EngineStats.snapshot() shape)
    stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def by_id(self, scenario_id: str) -> ScenarioResult:
        for result in self.results:
            if result.scenario_id == scenario_id:
                return result
        raise KeyError(f"no scenario {scenario_id!r} in campaign {self.campaign!r}")

    # -------------------------------------------------------------- exports
    def rows(self) -> List[Dict[str, Any]]:
        return [result.row() for result in self.results]

    def summary_table(self) -> str:
        """Paper-style table of every scenario (feeds the CLI output)."""
        rows = []
        for result in self.results:
            row = result.row()
            rows.append([
                row["scenario_id"], row["network"], row["model"],
                row["placement"] or "-", row["interference"] or "-",
                row["num_communications"],
                row["mean_penalty"], row["max_penalty"], row["total_time"],
            ])
        return render_table(
            ["scenario", "network", "model", "placement", "interference",
             "comms", "mean P", "max P", "total T [s]"],
            rows,
            title=f"campaign {self.campaign!r}: {len(self.results)} scenarios",
            float_format="{:.4f}",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "stats": dict(self.stats),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                              encoding="utf-8")

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CampaignResultStore":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            campaign=str(data["campaign"]),
            results=[ScenarioResult.from_dict(r) for r in data["results"]],
            stats={k: int(v) for k, v in data.get("stats", {}).items()},
        )

    def to_csv(self, path: Union[str, Path]) -> None:
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(_ROW_COLUMNS))
            writer.writeheader()
            writer.writerows(self.rows())
