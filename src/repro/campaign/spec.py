"""Declarative campaign specifications.

A *campaign* prices many scenarios — workloads × networks × models × host
counts × placement policies — in one orchestrated run.  The spec layer is
purely declarative: :class:`CampaignSpec` holds the sweep axes (loadable from
a plain dict or a JSON file, so campaigns can live next to the experiment
they document), and :meth:`CampaignSpec.scenarios` expands the cartesian
product into concrete, self-describing :class:`ScenarioSpec` rows that the
runner executes.

Two families of workloads are supported:

* **graph workloads** (``kind="scheme"`` library schemes, ``kind="synthetic"``
  generated graphs) produce a static :class:`~repro.core.graph.CommunicationGraph`
  that is priced by a contention model — the post-barrier "every
  communication starts together" situation of the paper's penalty tool;
* **application workloads** (``kind="collective"``, ``kind="linpack"``)
  produce an :class:`~repro.simulator.application.Application` that is run
  through the predictive simulator on a cluster of ``num_hosts`` nodes under
  a placement policy.

Spec dict / JSON format::

    {
      "name": "ladder-sweep",
      "workloads": [
        {"kind": "scheme",    "name": "fig2-s4"},
        {"kind": "synthetic", "name": "random-tree", "params": {"size": "4M"}},
        {"kind": "collective","name": "broadcast",  "params": {"size": "1M"}},
        {"kind": "linpack",   "name": "hpl",
         "params": {"problem_size": 4000, "block_size": 200, "num_tasks": 8}}
      ],
      "networks": ["ethernet", "myrinet"],
      "models": ["auto"],
      "host_counts": [8, 16],
      "placements": ["RRP", "RRN"],
      "seeds": [0],
      "interference": [
        "none",
        {"name": "loaded",
         "background": {"rate": 200, "size": "4M", "max_flows": 64},
         "link_degradation": {"factor": 0.5, "start": 0.0, "until": 0.2}}
      ]
    }

``"auto"`` selects the paper's model for the scenario's network.  Axes that a
workload does not consume are collapsed (library schemes ignore the host
count, graph workloads ignore placements, and only application workloads —
which run through the execution engine — sweep the ``interference`` axis) so
the expansion never produces duplicate scenarios.

The ``interference`` axis sweeps clean vs. loaded fabrics: each entry is
either the string ``"none"`` or a mapping with a ``name`` plus any of the
``background`` / ``link_degradation`` / ``node_slowdown`` sections, whose
keyword parameters feed the injector constructors of
:mod:`repro.simulator.interference` (the scenario seed offsets the
background injector's seed, so repetitions decorrelate the interference).

A ``"trace_dir"`` entry turns on per-scenario tracing: every application
scenario writes its structured :mod:`repro.trace` record stream to
``<trace_dir>/<scenario_id>.jsonl``, and ``repro campaign`` prints a
trace-summary table next to the results.  Omitted (the default), tracing is
off and every run is bit-exact with the untraced path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.placement import PLACEMENT_POLICIES
from ..core.graph import CommunicationGraph
from ..exceptions import ReproError, WorkloadError
from ..scheme.library import get_scheme
from ..simulator.application import Application
from ..simulator.interference import Injector, build_injectors
from ..units import MB, parse_size
from ..workloads import (
    bipartite_fan_scheme,
    broadcast_application,
    complete_graph_scheme,
    flat_gather,
    generate_linpack,
    hotspot_scheme,
    pairwise_exchange_alltoall,
    random_graph_scheme,
    random_tree_scheme,
    ring_allgather,
)

__all__ = ["WorkloadSpec", "InterferenceSpec", "ScenarioSpec", "CampaignSpec"]


GRAPH_KINDS = ("scheme", "synthetic")
APPLICATION_KINDS = ("collective", "linpack")

SYNTHETIC_GENERATORS = ("random-tree", "complete", "random", "bipartite-fan", "hotspot")
COLLECTIVE_PATTERNS = ("broadcast", "ring-allgather", "flat-gather", "alltoall")


def _size_param(params: Dict[str, Any], default: int) -> int:
    value = params.get("size", default)
    if isinstance(value, str):
        return parse_size(value)
    return int(value)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload axis entry of a campaign."""

    kind: str
    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in GRAPH_KINDS + APPLICATION_KINDS:
            raise WorkloadError(
                f"unknown workload kind {self.kind!r}; known: "
                f"{', '.join(GRAPH_KINDS + APPLICATION_KINDS)}"
            )
        if self.kind == "synthetic" and self.name not in SYNTHETIC_GENERATORS:
            raise WorkloadError(
                f"unknown synthetic generator {self.name!r}; known: "
                f"{', '.join(SYNTHETIC_GENERATORS)}"
            )
        if self.kind == "collective" and self.name not in COLLECTIVE_PATTERNS:
            raise WorkloadError(
                f"unknown collective {self.name!r}; known: "
                f"{', '.join(COLLECTIVE_PATTERNS)}"
            )

    @property
    def is_application(self) -> bool:
        return self.kind in APPLICATION_KINDS

    @property
    def uses_hosts(self) -> bool:
        """Library schemes carry their own node set; everything else scales with hosts."""
        return self.kind != "scheme"

    @property
    def uses_seed(self) -> bool:
        return self.kind == "synthetic" or self.is_application

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.params:
            data["params"] = self.param_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        if "kind" not in data or "name" not in data:
            raise WorkloadError(f"workload entry {data!r} needs 'kind' and 'name'")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise WorkloadError(f"workload params must be a mapping, got {params!r}")
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            params=tuple(sorted(params.items())),
        )


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class InterferenceSpec:
    """One interference-axis entry: a named injector configuration.

    Pure data (picklable, like every spec): the sections hold the keyword
    parameters of the matching injector constructors in
    :mod:`repro.simulator.interference`, stored as sorted item tuples.  The
    default instance is the clean fabric (``name="none"``, no sections).
    """

    name: str = "none"
    background: Tuple[Tuple[str, Any], ...] = ()
    link_degradation: Tuple[Tuple[str, Any], ...] = ()
    node_slowdown: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        try:
            self.build_injectors(seed=0)
        except ReproError:
            raise
        except TypeError as exc:
            raise WorkloadError(f"bad interference spec {self.name!r}: {exc}") from exc

    @property
    def is_clean(self) -> bool:
        """True when the configuration provably injects nothing."""
        return not self.build_injectors(seed=0)

    def _section(self, field_name: str) -> Optional[Dict[str, Any]]:
        items = getattr(self, field_name)
        if not items:
            return None
        params = {key: _thaw(value) for key, value in items}
        if isinstance(params.get("size"), str):
            params["size"] = parse_size(params["size"])
        return params

    def build_injectors(self, seed: Optional[int] = None) -> Tuple[Injector, ...]:
        """Materialize the injectors (``seed`` offsets the background seed)."""
        return build_injectors(
            background=self._section("background"),
            link_degradation=self._section("link_degradation"),
            node_slowdown=self._section("node_slowdown"),
            seed=seed,
        )

    # ------------------------------------------------------------- loaders
    def to_dict(self) -> Union[str, Dict[str, Any]]:
        # only the canonical clean entry collapses to the "none" shorthand;
        # any other name must round-trip as a mapping (from_dict rejects
        # unknown bare strings)
        if self.name == "none" and not (
            self.background or self.link_degradation or self.node_slowdown
        ):
            return self.name
        data: Dict[str, Any] = {"name": self.name}
        for field_name in ("background", "link_degradation", "node_slowdown"):
            items = getattr(self, field_name)
            if items:
                data[field_name] = {key: _thaw(value) for key, value in items}
        return data

    @classmethod
    def from_dict(cls, data: Union[str, Dict[str, Any]]) -> "InterferenceSpec":
        if isinstance(data, str):
            if data != "none":
                raise WorkloadError(
                    f"unknown interference shorthand {data!r} (only 'none')"
                )
            return cls()
        if not isinstance(data, dict):
            raise WorkloadError(f"interference entry must be 'none' or a mapping, "
                                f"got {data!r}")
        unknown = set(data) - {"name", "background", "link_degradation",
                               "node_slowdown"}
        if unknown:
            raise WorkloadError(f"unknown interference spec keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for field_name in ("background", "link_degradation", "node_slowdown"):
            section = data.get(field_name)
            if section is None:
                continue
            if not isinstance(section, dict):
                raise WorkloadError(
                    f"interference section {field_name!r} must be a mapping"
                )
            kwargs[field_name] = tuple(sorted(
                (str(key), _freeze(value)) for key, value in section.items()
            ))
        return cls(name=str(data.get("name", "interference")), **kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved point of the sweep (pure data, picklable)."""

    scenario_id: str
    workload: WorkloadSpec
    network: str
    model: str
    num_hosts: Optional[int]
    placement: Optional[str]
    seed: Optional[int]
    #: interference configuration; ``None`` for workloads that cannot be
    #: loaded (static graph pricing has no time dimension)
    interference: Optional[InterferenceSpec] = None

    @property
    def is_application(self) -> bool:
        return self.workload.is_application

    def axes(self) -> Dict[str, Any]:
        """The identifying coordinates, for result rows and exports.

        ``workload_params`` is a canonical string of the workload's
        parameters: two same-name workload entries differing only in params
        (e.g. a 1 MB and a 4 MB broadcast) stay distinguishable in result
        rows — the interference analysis keys its clean-twin pairing on it.
        """
        return {
            "scenario_id": self.scenario_id,
            "kind": self.workload.kind,
            "workload": self.workload.name,
            "workload_params": repr(tuple(sorted(self.workload.params))),
            "network": self.network,
            "model": self.model,
            "num_hosts": self.num_hosts,
            "placement": self.placement,
            "seed": self.seed,
            "interference": self.interference.name if self.interference else None,
        }

    def build_injectors(self) -> Tuple[Injector, ...]:
        """Injectors of this scenario (empty for clean/graph scenarios)."""
        if self.interference is None:
            return ()
        return self.interference.build_injectors(seed=self.seed)

    # ------------------------------------------------------------- builders
    def build_graph(self) -> CommunicationGraph:
        """Materialize a graph workload (deterministic given the spec)."""
        workload = self.workload
        params = workload.param_dict()
        seed = 0 if self.seed is None else int(self.seed)
        if workload.kind == "scheme":
            size = params.get("size")
            if isinstance(size, str):
                size = parse_size(size)
            return get_scheme(workload.name, size=size)
        hosts = int(self.num_hosts or 0)
        size = _size_param(params, 4 * MB)
        if workload.name == "random-tree":
            return random_tree_scheme(hosts, seed=seed, size=size)
        if workload.name == "complete":
            return complete_graph_scheme(hosts, seed=seed, size=size)
        if workload.name == "random":
            num_comms = int(params.get("num_communications", 2 * hosts))
            return random_graph_scheme(hosts, num_comms, seed=seed, size=size)
        if workload.name == "bipartite-fan":
            senders = int(params.get("num_senders", hosts // 2))
            receivers = int(params.get("num_receivers", hosts - hosts // 2))
            density = float(params.get("density", 1.0))
            return bipartite_fan_scheme(senders, receivers, seed=seed, size=size,
                                        density=density)
        if workload.name == "hotspot":
            return hotspot_scheme(max(1, hosts - 1), size=size)
        raise WorkloadError(f"unhandled synthetic generator {workload.name!r}")

    def build_application(self) -> Application:
        """Materialize an application workload."""
        workload = self.workload
        params = workload.param_dict()
        num_tasks = int(params.get("num_tasks", self.num_hosts or 2))
        if workload.kind == "linpack":
            return generate_linpack(
                problem_size=int(params.get("problem_size", 4000)),
                block_size=int(params.get("block_size", 200)),
                num_tasks=num_tasks,
                panel_fraction=float(params.get("panel_fraction", 1.0)),
            )
        size = _size_param(params, 1 * MB)
        if workload.name == "broadcast":
            return broadcast_application(num_tasks, size,
                                         root=int(params.get("root", 0)))
        app = Application(num_tasks=num_tasks,
                          name=f"{workload.name}-{num_tasks}")
        if workload.name == "ring-allgather":
            return ring_allgather(app, size)
        if workload.name == "flat-gather":
            return flat_gather(app, root=int(params.get("root", 0)), size=size)
        if workload.name == "alltoall":
            return pairwise_exchange_alltoall(app, size)
        raise WorkloadError(f"unhandled collective {workload.name!r}")


@dataclass
class CampaignSpec:
    """The sweep axes of a campaign."""

    name: str
    workloads: List[WorkloadSpec]
    networks: List[str] = field(default_factory=lambda: ["ethernet"])
    models: List[str] = field(default_factory=lambda: ["auto"])
    host_counts: List[int] = field(default_factory=lambda: [16])
    placements: List[str] = field(default_factory=lambda: ["RRP"])
    seeds: List[int] = field(default_factory=lambda: [0])
    interference: List[InterferenceSpec] = field(
        default_factory=lambda: [InterferenceSpec()]
    )
    cores_per_node: int = 2
    #: directory for per-scenario JSONL trace files (``<scenario_id>.jsonl``,
    #: application scenarios only — graph pricing has no time dimension);
    #: ``None`` disables tracing (the bit-exact default)
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.workloads:
            raise WorkloadError(f"campaign {self.name!r} has no workloads")
        for axis_name in ("networks", "models", "host_counts", "placements",
                          "seeds", "interference"):
            if not getattr(self, axis_name):
                raise WorkloadError(f"campaign {self.name!r} has an empty {axis_name} axis")
        for placement in self.placements:
            if placement.lower() not in PLACEMENT_POLICIES:
                raise WorkloadError(
                    f"unknown placement policy {placement!r}; known: "
                    f"{', '.join(sorted(PLACEMENT_POLICIES))}"
                )
        if self.cores_per_node < 1:
            raise WorkloadError(f"cores_per_node must be >= 1, got {self.cores_per_node}")

    # ----------------------------------------------------------- expansion
    def scenarios(self) -> List[ScenarioSpec]:
        """Deterministic cartesian expansion of the sweep axes.

        Axes a workload does not consume are collapsed to a single ``None``
        value so the expansion stays duplicate-free.
        """
        scenarios: List[ScenarioSpec] = []
        for workload in self.workloads:
            hosts_axis: Sequence[Optional[int]] = (
                self.host_counts if workload.uses_hosts else [None]
            )
            placement_axis: Sequence[Optional[str]] = (
                self.placements if workload.is_application else [None]
            )
            seed_axis: Sequence[Optional[int]] = (
                self.seeds if workload.uses_seed else [None]
            )
            # only application workloads run through the execution engine,
            # so only they can be loaded with interference
            interference_axis: Sequence[Optional[InterferenceSpec]] = (
                self.interference if workload.is_application else [None]
            )
            for network in self.networks:
                for model in self.models:
                    for hosts in hosts_axis:
                        for placement in placement_axis:
                            for seed in seed_axis:
                                for interference in interference_axis:
                                    parts = [f"{len(scenarios):03d}", workload.name,
                                             network, model]
                                    if hosts is not None:
                                        parts.append(f"h{hosts}")
                                    if placement is not None:
                                        parts.append(placement)
                                    if seed is not None:
                                        parts.append(f"s{seed}")
                                    if interference is not None and \
                                            interference.name != "none":
                                        parts.append(interference.name)
                                    scenarios.append(ScenarioSpec(
                                        scenario_id="-".join(parts),
                                        workload=workload,
                                        network=network,
                                        model=model,
                                        num_hosts=hosts,
                                        placement=placement,
                                        seed=seed,
                                        interference=interference,
                                    ))
        return scenarios

    def __len__(self) -> int:
        return len(self.scenarios())

    # ------------------------------------------------------------- loaders
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workloads": [w.to_dict() for w in self.workloads],
            "networks": list(self.networks),
            "models": list(self.models),
            "host_counts": list(self.host_counts),
            "placements": list(self.placements),
            "seeds": list(self.seeds),
            "interference": [i.to_dict() for i in self.interference],
            "cores_per_node": self.cores_per_node,
            **({"trace_dir": self.trace_dir} if self.trace_dir else {}),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise WorkloadError(f"campaign spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {
            "name", "workloads", "networks", "models", "host_counts",
            "placements", "seeds", "interference", "cores_per_node",
            "trace_dir",
        }
        if unknown:
            raise WorkloadError(f"unknown campaign spec keys: {sorted(unknown)}")
        workloads = [WorkloadSpec.from_dict(w) for w in data.get("workloads", [])]
        kwargs: Dict[str, Any] = {}
        for axis in ("networks", "models", "placements"):
            if axis in data:
                kwargs[axis] = [str(v) for v in data[axis]]
        if "host_counts" in data:
            kwargs["host_counts"] = [int(v) for v in data["host_counts"]]
        if "seeds" in data:
            kwargs["seeds"] = [int(v) for v in data["seeds"]]
        if "interference" in data:
            kwargs["interference"] = [
                InterferenceSpec.from_dict(entry) for entry in data["interference"]
            ]
        if "cores_per_node" in data:
            kwargs["cores_per_node"] = int(data["cores_per_node"])
        if data.get("trace_dir") is not None:
            kwargs["trace_dir"] = str(data["trace_dir"])
        return cls(name=str(data.get("name", "campaign")), workloads=workloads, **kwargs)

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a JSON file (the ``repro campaign --spec`` input)."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise WorkloadError(f"cannot read campaign spec {str(path)!r}: {exc}") from exc
        return cls.from_dict(data)

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
