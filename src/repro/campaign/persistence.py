"""Cross-run persistence for the penalty cache.

:class:`~repro.core.incremental.PenaltyCache` keys pair a model's
``memo_key()`` with a canonical structural component snapshot — both are
process-independent by construction, so memoized contention situations can
outlive the process that computed them.  :class:`PersistentPenaltyCache`
serialises the LRU to a JSON file so that repeated campaigns (and repeated
simulations of the same application) skip the warm-up misses entirely.

Keys are arbitrary nested tuples of scalars and frozen parameter dataclasses;
they are flattened into a canonical, type-tagged JSON string
(:func:`canonical_key`) that serves as the stored cache key.  Lookups encode
the live key the same way, so equality of encodings is what matters and the
original Python objects never need to be reconstructed.  Penalty values are
written as JSON numbers (Python serialises floats via ``repr``, which
round-trips exactly), keeping a reloaded cache bit-exact with the one that
was saved.

A corrupted or truncated cache file is tolerated: loading falls back to an
empty cache (a cache is an accelerator, never a correctness dependency) and
records the failure in :attr:`PersistentPenaltyCache.load_error`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Hashable, Optional, Tuple, Union

from ..core.incremental import PenaltyCache
from ..exceptions import GraphError

__all__ = ["canonical_key", "PersistentPenaltyCache"]

_FORMAT_VERSION = 1


def _canonical(value: Any) -> Any:
    """Recursively encode a cache-key value into a type-tagged JSON structure."""
    if value is None:
        return ["z"]
    if isinstance(value, bool):  # before int: bool is an int subclass
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value.hex()]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, (tuple, list)):
        return ["t", [_canonical(item) for item in value]]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [_canonical(getattr(value, f.name)) for f in dataclasses.fields(value)]
        return ["d", f"{type(value).__module__}.{type(value).__qualname__}", fields]
    raise GraphError(
        f"cache key component {value!r} of type {type(value).__name__} is not "
        "serialisable; persistent caches accept scalars, tuples and parameter "
        "dataclasses"
    )


def canonical_key(key: Hashable) -> str:
    """Stable textual form of a :class:`PenaltyCache` key (process-independent)."""
    return json.dumps(_canonical(key), separators=(",", ":"))


class PersistentPenaltyCache(PenaltyCache):
    """A :class:`PenaltyCache` that can be saved to and reloaded from disk.

    Entries are keyed internally by :func:`canonical_key`, so a reloaded
    cache serves exactly the same hits as the instance that was saved — the
    roundtrip property the campaign tests assert.

    Parameters
    ----------
    path:
        Default file used by :meth:`save`; also recorded for reporting.
    max_entries:
        LRU capacity.  Larger than the in-memory default because a
        persistent cache typically accumulates several campaigns.
    """

    def __init__(self, path: Union[str, Path, None] = None,
                 max_entries: int = 65536) -> None:
        super().__init__(max_entries=max_entries)
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.load_error: Optional[str] = None
        self.loaded_entries = 0
        # raw key -> canonical string, so the live lookup path pays the
        # recursive encoding once per distinct key instead of per access
        self._encoded: Dict[Hashable, str] = {}

    # ------------------------------------------------------- key translation
    def _canonical_cached(self, key: Hashable) -> str:
        encoded = self._encoded.get(key)
        if encoded is None:
            encoded = canonical_key(key)
            if len(self._encoded) >= 4 * max(1, self.max_entries):
                self._encoded.clear()  # crude bound; re-encoding is only a slowdown
            self._encoded[key] = encoded
        return encoded

    def get(self, key: Hashable) -> Optional[Dict[Tuple[int, int], float]]:
        return super().get(self._canonical_cached(key))

    def put(self, key: Hashable, mapping: Dict[Tuple[int, int], float]) -> None:
        super().put(self._canonical_cached(key), mapping)

    def stats(self) -> Dict[str, float]:
        """Cache-traffic summary (see :meth:`PenaltyCache.stats`) plus
        persistence details — how many entries were served from disk and
        whether a load failure was swallowed.  A campaign sizes
        ``max_entries`` from these numbers: evictions with
        ``evicted_entry_hits`` mean the bound is discarding still-useful
        situations; a large ``entries_never_hit`` share (relative to
        ``loaded_entries``) means the file carries dead weight."""
        summary = super().stats()
        summary["loaded_entries"] = self.loaded_entries
        summary["load_failed"] = 1.0 if self.load_error else 0.0
        return summary

    # ----------------------------------------------------------- persistence
    @classmethod
    def load(cls, path: Union[str, Path],
             max_entries: int = 65536) -> "PersistentPenaltyCache":
        """Open a cache file; a missing or corrupted file yields an empty cache."""
        cache = cls(path=path, max_entries=max_entries)
        target = Path(path)
        if not target.exists():
            return cache
        try:
            data = json.loads(target.read_text(encoding="utf-8"))
            if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
                raise ValueError(f"unsupported cache format: {data.get('version')!r}"
                                 if isinstance(data, dict) else "not a mapping")
            for entry in data["entries"]:
                key = entry["key"]
                if not isinstance(key, str):
                    raise ValueError("cache entry key is not a string")
                mapping = {
                    (int(src), int(dst)): float(value)
                    for src, dst, value in entry["penalties"]
                }
                # keys in the file are already canonical: bypass re-encoding
                PenaltyCache.put(cache, key, mapping)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            cache.clear()
            cache.load_error = f"{type(exc).__name__}: {exc}"
            return cache
        cache.loaded_entries = len(cache)
        return cache

    def save(self, path: Union[str, Path, None] = None) -> int:
        """Atomically write every entry to ``path`` (default: :attr:`path`).

        Returns the number of entries written.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise GraphError("no path given and the cache was created without one")
        entries = []
        for key, mapping in self.items():
            entries.append({
                "key": key,
                "penalties": [[src, dst, value]
                              for (src, dst), value in sorted(mapping.items())],
            })
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(target.parent),
                                        prefix=target.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.write("\n")
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(entries)
