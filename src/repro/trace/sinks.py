"""Trace sinks: null (zero overhead), bounded in-memory, JSONL file.

See the package docstring for the sink contract.  The JSONL container is the
on-disk interchange format of the whole pipeline — simulation traces
(``repro trace record``, ``repro simulate --trace``, campaign per-scenario
files) and MPE-style application containers
(:mod:`repro.workloads.traces`) share it.
"""

from __future__ import annotations

import atexit
import json
import weakref
from collections import deque
from pathlib import Path
from typing import (
    Deque,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    TextIO,
    Union,
    cast,
)

from ..exceptions import TraceError
from .records import TRACE_FORMAT, TRACE_VERSION, TraceLog, TraceRecord

__all__ = [
    "TraceSink",
    "NullTraceSink",
    "MemoryTraceSink",
    "JsonlTraceSink",
    "active_sink",
    "read_trace_log",
    "iter_trace_records",
]


class TraceSink(Protocol):
    """What the simulation stack emits through (see :mod:`repro.trace`)."""

    #: ``False`` lets emission sites skip record construction entirely
    enabled: bool

    def emit(self, record: TraceRecord) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover


def active_sink(trace: Optional[TraceSink]) -> Optional[TraceSink]:
    """Normalise a sink argument: ``None`` or a disabled sink become ``None``.

    Every tracing-aware constructor funnels its ``trace`` argument through
    this, so the hot emission sites need exactly one ``is not None`` test —
    the disabled path never builds a record, never calls a method, and is
    therefore bit-exact with the pre-trace code.
    """
    if trace is None or not getattr(trace, "enabled", True):
        return None
    return trace


class NullTraceSink:
    """The do-nothing sink: ``enabled`` is ``False``.

    :func:`active_sink` turns it into ``None`` before it reaches any loop, so
    passing it is exactly as cheap as passing no sink at all.
    """

    enabled = False

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - never wired
        pass

    def close(self) -> None:
        pass


class MemoryTraceSink:
    """Bounded in-memory sink (ring buffer of the last ``maxlen`` records)."""

    enabled = True

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen < 0:
            raise TraceError(f"maxlen must be non-negative, got {maxlen}")
        self._records: Deque[TraceRecord] = deque(maxlen=maxlen)
        #: total records emitted (>= len(records) once the ring wraps)
        self.emitted = 0

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def emit(self, record: TraceRecord) -> None:
        self._records.append(record)
        self.emitted += 1

    def close(self) -> None:
        pass

    def log(self) -> TraceLog:
        """The retained records as a :class:`TraceLog`."""
        return TraceLog(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.emitted = 0


class _ClosedSinkBuffer:
    """Sentinel standing in for a closed sink's buffer: appending raises."""

    def __init__(self, path: Path) -> None:
        self._path = path

    def append(self, record: TraceRecord) -> None:
        raise TraceError(f"trace file {str(self._path)!r} is already closed")

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return False


#: every open JsonlTraceSink, so buffered records can be flushed if the
#: process exits without close() running (sys.exit deep in a run, an
#: unhandled exception above the sink's owner, ...).  Weak references: a
#: sink that is closed or garbage-collected drops out on its own.
_OPEN_JSONL_SINKS: "weakref.WeakSet[JsonlTraceSink]" = weakref.WeakSet()


@atexit.register
def _flush_open_sinks() -> None:
    for sink in list(_OPEN_JSONL_SINKS):
        try:
            sink.close()
        except Exception:  # noqa: BLE001 - interpreter teardown must not raise
            pass


class JsonlTraceSink:
    """File sink: header line plus one JSON object per record.

    Emission is buffered MPE-style: :meth:`emit` only appends the record to
    an in-memory buffer (sub-microsecond, so the simulation is barely
    perturbed — the same reason the paper's MPE instrumentation costs
    ~0.7 %) and serialisation happens at :meth:`close` / every
    ``flush_every`` records.  The file is opened eagerly so a bad path
    fails at construction, not at the first event deep inside a run;
    :meth:`close` is idempotent and also runs on context-manager exit.

    Buffered records are not lost on abnormal exit: an ``atexit`` hook
    closes every still-open sink, and garbage collection of an unclosed
    sink triggers a best-effort close — so a trace written by a run that
    died between flushes still ends on a complete record boundary.
    """

    enabled = True

    #: serialise-and-write the buffer whenever it reaches this many records
    #: (bounds memory on unboundedly long runs)
    FLUSH_EVERY = 65536

    def __init__(self, path: Union[str, Path],
                 flush_every: Optional[int] = None) -> None:
        self.path = Path(path)
        self.flush_every = self.FLUSH_EVERY if flush_every is None else int(flush_every)
        self._handle: Optional[TextIO]
        try:
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError as exc:
            raise TraceError(f"cannot open trace file {str(self.path)!r}: {exc}") from exc
        self._handle.write(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION}) + "\n"
        )
        self._buffer: List[TraceRecord] = []
        self._written = 0
        _OPEN_JSONL_SINKS.add(self)

    @property
    def emitted(self) -> int:
        """Total records emitted (written plus still buffered)."""
        return self._written + len(self._buffer)

    def emit(self, record: TraceRecord) -> None:
        # hot path: one append plus a length test (a closed sink's buffer is
        # swapped for a raising sentinel, so no open-check is paid per event)
        buffer = self._buffer
        buffer.append(record)
        if len(buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Serialise and write the buffered records (through to the OS).

        The handle flush makes every flushed batch visible to live tailers
        (:class:`~repro.trace.StreamingTraceReader`, ``repro trace tail``)
        at record-boundary granularity — one syscall per ``flush_every``
        records, not per record.
        """
        if self._handle is None or not self._buffer:
            return
        dumps = json.dumps
        self._handle.write(
            "\n".join(dumps(record.to_dict()) for record in self._buffer) + "\n"
        )
        self._handle.flush()
        self._written += len(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None
            # the sentinel only has to support append() (which raises); the
            # cast keeps the declared hot-path type a plain list
            self._buffer = cast(List[TraceRecord], _ClosedSinkBuffer(self.path))
            _OPEN_JSONL_SINKS.discard(self)

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # noqa: BLE001 - never raise from a finalizer
            pass


def iter_trace_records(source: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream the records of a JSONL trace file (header validated first).

    Genuinely streaming: the file is read line by line, so a multi-gigabyte
    trace (the reason :attr:`JsonlTraceSink.FLUSH_EVERY` exists) never has
    to fit in memory.  The handle is closed when the iterator is exhausted
    or garbage-collected.
    """
    path = Path(source)
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"cannot read trace file {str(path)!r}: {exc}") from exc

    def lines() -> Iterator[str]:
        with handle:
            yield from handle

    return _iter_lines(lines(), origin=str(path))


def _iter_lines(lines: Iterable[str], origin: str = "<trace>") -> Iterator[TraceRecord]:
    header = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{origin}: malformed JSON on line {lineno}: {exc}") from exc
        if header is None:
            header = raw
            if not isinstance(raw, dict) or raw.get("format") != TRACE_FORMAT:
                raise TraceError(
                    f"{origin}: not a {TRACE_FORMAT} file (bad or missing header)"
                )
            version = raw.get("version")
            if version != TRACE_VERSION:
                raise TraceError(
                    f"{origin}: unsupported trace version {version!r} "
                    f"(this build reads version {TRACE_VERSION})"
                )
            continue
        yield TraceRecord.from_dict(raw)
    if header is None:
        raise TraceError(f"{origin}: empty trace file (missing header line)")


def read_trace_log(source: Union[str, Path]) -> TraceLog:
    """Read a JSONL trace file into a :class:`TraceLog`.

    A header-only file is a valid zero-event trace and yields an empty log.
    """
    return TraceLog(iter_trace_records(source))
