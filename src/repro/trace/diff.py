"""Structural diff of two traces: locate the first diverging record.

Two traces of the same scenario are supposed to be identical record for
record (tracing is deterministic, and replay / backend-parity properties
assert it).  When they are not, dumping both files helps nobody — what the
developer needs is *where* they fork.  :func:`trace_diff` walks both record
sequences in lockstep and reports the first index at which they differ,
with the differing fields named and a few records of aligned context;
:func:`format_trace_diff` renders that as the localized report ``repro
trace diff`` prints, and :func:`assert_traces_equal` raises it as an
``AssertionError`` so the bit-exactness property suites fail with the
divergence, not with two opaque record lists.

Record index ``k`` (0-based over records) lives on line ``k + 2`` of the
JSONL file — line 1 is the container header.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from .records import TraceRecord
from .sinks import read_trace_log

__all__ = [
    "TraceDiff",
    "trace_diff",
    "diff_trace_files",
    "format_trace_diff",
    "assert_traces_equal",
]

_MISSING = object()


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of comparing two record sequences.

    ``index`` is the first diverging record position (``None`` when the
    traces are identical).  ``reason`` is ``"identical"``, ``"record"`` (a
    record at ``index`` differs field-wise) or ``"length"`` (one trace is a
    strict prefix of the other and ends at ``index``).
    """

    index: Optional[int]
    reason: str
    counts: Tuple[int, int]
    #: differing top-level fields at the divergence ("t", "kind", "subject",
    #: "data.<key>"); empty for length divergences
    fields: Tuple[str, ...] = ()
    left: Optional[TraceRecord] = None
    right: Optional[TraceRecord] = None
    #: shared prefix records immediately before the divergence
    common: Tuple[TraceRecord, ...] = ()
    #: records following the divergence on each side
    after_left: Tuple[TraceRecord, ...] = ()
    after_right: Tuple[TraceRecord, ...] = ()

    @property
    def identical(self) -> bool:
        return self.index is None

    @property
    def line(self) -> Optional[int]:
        """1-based JSONL line number of the divergence (header is line 1)."""
        return None if self.index is None else self.index + 2


def _as_records(trace: Iterable[TraceRecord]) -> List[TraceRecord]:
    return trace if isinstance(trace, list) else list(trace)


def _diff_fields(a: TraceRecord, b: TraceRecord) -> Tuple[str, ...]:
    out: List[str] = []
    if a.time != b.time:
        out.append("t")
    if a.kind != b.kind:
        out.append("kind")
    if a.subject != b.subject:
        out.append("subject")
    if a.data != b.data:
        for key in sorted(set(a.data) | set(b.data)):
            if a.data.get(key, _MISSING) != b.data.get(key, _MISSING):
                out.append(f"data.{key}")
    return tuple(out)


def trace_diff(a: Iterable[TraceRecord], b: Iterable[TraceRecord],
               context: int = 3) -> TraceDiff:
    """Compare two record sequences; report the first divergence.

    Accepts :class:`~repro.trace.TraceLog` objects or any record iterables.
    ``context`` bounds the records kept around the divergence for the
    report.
    """
    left = _as_records(a)
    right = _as_records(b)
    counts = (len(left), len(right))
    shared = min(counts)
    for index in range(shared):
        if left[index] != right[index]:
            return TraceDiff(
                index=index,
                reason="record",
                counts=counts,
                fields=_diff_fields(left[index], right[index]),
                left=left[index],
                right=right[index],
                common=tuple(left[max(0, index - context):index]),
                after_left=tuple(left[index + 1:index + 1 + context]),
                after_right=tuple(right[index + 1:index + 1 + context]),
            )
    if counts[0] != counts[1]:
        index = shared
        return TraceDiff(
            index=index,
            reason="length",
            counts=counts,
            left=left[index] if index < counts[0] else None,
            right=right[index] if index < counts[1] else None,
            common=tuple(left[max(0, index - context):index]),
            after_left=tuple(left[index + 1:index + 1 + context]),
            after_right=tuple(right[index + 1:index + 1 + context]),
        )
    return TraceDiff(index=None, reason="identical", counts=counts)


def diff_trace_files(path_a: Union[str, Path], path_b: Union[str, Path],
                     context: int = 3) -> TraceDiff:
    """:func:`trace_diff` over two JSONL trace files (headers validated)."""
    return trace_diff(read_trace_log(path_a), read_trace_log(path_b),
                      context=context)


def _render(record: Optional[TraceRecord]) -> str:
    if record is None:
        return "<end of trace>"
    return json.dumps(record.to_dict(), sort_keys=True)


def format_trace_diff(diff: TraceDiff, label_a: str = "a",
                      label_b: str = "b") -> str:
    """Human-readable localized report of a :class:`TraceDiff`."""
    if diff.identical:
        return f"traces identical: {diff.counts[0]} records"
    lines = [
        f"first divergence at record {diff.index} (line {diff.line})",
        f"  a: {label_a} ({diff.counts[0]} records)",
        f"  b: {label_b} ({diff.counts[1]} records)",
    ]
    if diff.reason == "length":
        shorter = "a" if diff.counts[0] < diff.counts[1] else "b"
        lines.append(
            f"  trace {shorter} ends here; the other continues"
        )
    elif diff.fields:
        lines.append(f"  differing fields: {', '.join(diff.fields)}")
    start = diff.index - len(diff.common)
    for offset, record in enumerate(diff.common):
        lines.append(f"      record {start + offset}  {_render(record)}")
    lines.append(f"  a-> record {diff.index}  {_render(diff.left)}")
    lines.append(f"  b-> record {diff.index}  {_render(diff.right)}")
    for offset, record in enumerate(diff.after_left, start=diff.index + 1):
        lines.append(f"  a:  record {offset}  {_render(record)}")
    for offset, record in enumerate(diff.after_right, start=diff.index + 1):
        lines.append(f"  b:  record {offset}  {_render(record)}")
    return "\n".join(lines)


def assert_traces_equal(a: Iterable[TraceRecord], b: Iterable[TraceRecord],
                        label_a: str = "a", label_b: str = "b",
                        context: int = 3) -> None:
    """Raise an ``AssertionError`` carrying the localized diff report.

    The property-test harness hook: comparing two traces through this turns
    a bit-exactness failure into "first divergence at record k" instead of
    two multi-thousand-record reprs.
    """
    diff = trace_diff(a, b, context=context)
    if not diff.identical:
        raise AssertionError(format_trace_diff(diff, label_a=label_a,
                                               label_b=label_b))
