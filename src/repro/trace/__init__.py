"""Unified trace pipeline — structured per-event records from calendar to analysis.

The paper's own methodology is trace-based: Linpack event sequences are
captured via MPE instrumentation (~0.7 % overhead, §VI.D) and replayed
through the contention model.  This package gives the reproduction the same
spine.  Every layer of the simulation stack — the
:class:`~repro.network.fluid.TransferCalendar`, the
:class:`~repro.simulator.engine.ExecutionEngine` and
:class:`~repro.network.fluid.FluidTransferSimulator` loops, and the
interference injectors — emits structured :class:`TraceRecord` events
through one pluggable :class:`TraceSink`, replacing the historical pile of
end-of-run aggregates as the *only* way to answer "what happened at t=X".

Trace schema (version 1)
------------------------
A trace is an ordered sequence of records.  Each record is::

    TraceRecord(time: float, kind: str, subject: str|int|None, data: dict)

* ``time`` — the simulation clock at which the event happened (seconds);
* ``kind`` — a dotted event-kind tag from :data:`KNOWN_KINDS` (below);
* ``subject`` — what the event is about: a transfer id, a task rank, an
  injector name, or ``None`` for run-scoped events;
* ``data`` — kind-specific payload of JSON-scalar values (nested lists
  allowed, no nested records).

Record kinds, by emitting layer:

========================== ====================================================
kind                       meaning / payload
========================== ====================================================
``run.meta``               run header: workload, hosts, network, mode, seed …
``calendar.activate``      a transfer entered the calendar; ``{src, dst, size}``
``calendar.complete``      a transfer completed; ``{}``
``calendar.cancel``        a transfer left before completing; ``{remaining}``
``calendar.retime``        a completion entry was recomputed;
                           ``{rate, remaining, completion}``
``calendar.flush``         a provider delta query; ``{added, removed, changed,
                           active}``
``calendar.reprice``       full re-rate (provider reset + re-add); ``{active,
                           changed}``
``calendar.compaction``    in-place heap rebuild; ``{dropped, kept}``
``calendar.stall``         a flight's applied rate dropped to zero; ``{rate}``
``calendar.stall_retry``   zero-rated flights forced back through the delta
                           API; ``{ids}``
``step``                   a loop horizon advance; subject ``"engine"`` or
                           ``"fluid"``; ``{step}``
``task.state``             a task changed status; ``{status, event?}``
``task.event``             a task finished an event (the trace twin of
                           :class:`~repro.simulator.report.EventRecord`);
                           ``{kind, start, end, size, peer, label, penalty}``
``inject.apply``           an injector fired; subject = injector name;
                           ``{index}``
``inject.flow_start``      a background flow started; subject = flow id;
                           ``{src, dst, size, owner}``
``inject.flow_end``        a background flow was deactivated early
``inject.rate_scale_on``   a rate-scale window opened; subject = handle;
                           ``{factor, hosts}`` (replay payload)
``inject.rate_scale_off``  the window closed; subject = handle
``inject.compute_scale_on``  compute-rate window opened; subject = handle;
                           ``{factor, hosts}``
``inject.compute_scale_off`` the window closed; subject = handle
``inject.reprice``         an injector forced a full re-rate
``app.meta``               application container header; ``{num_tasks, name}``
``app.compute``            application event stream (the MPE-style container
``app.send``               of :mod:`repro.workloads.traces`): one record per
``app.recv``               program event, subject = rank (``"*"`` for global
``app.barrier``            barriers), payloads mirror the event fields
``metrics.sample``         periodic :class:`repro.obs.MetricsRegistry`
                           snapshot; payload = flat ``{name: number}`` dict
========================== ====================================================

The full payload schemas are tabulated in ``docs/trace-format.md``.

Sink contract
-------------
A sink is anything with::

    enabled: bool          # False => callers may skip record construction
    emit(record) -> None   # called in simulation order, may buffer
    close() -> None        # flush and release resources (idempotent)

Three sinks ship:

* :class:`NullTraceSink` — ``enabled`` is ``False``.  Every emission site in
  the simulation stack normalises a disabled sink to ``None`` and guards the
  record construction with ``if trace is not None``, so tracing disabled
  costs one pointer test per site — the runs are **bit-exact** with the
  pre-trace code (property-tested in
  ``tests/property/test_trace_properties.py``).
* :class:`MemoryTraceSink` — bounded in-memory ring (``maxlen`` records, or
  unbounded), for tests and interactive analysis.
* :class:`JsonlTraceSink` — one JSON object per line, header line first
  (``{"format": "repro-trace", "version": 1}``); the file format consumed by
  :func:`read_trace_log`, :mod:`repro.analysis.timeline` and
  ``repro trace summarize``.

Closing the loop
----------------
:class:`TraceReplayInjector` replays the ``inject.*`` records of a recorded
trace through the standard ``InjectionState`` surface
(:mod:`repro.simulator.interference`), so a measured background-traffic or
degradation schedule can be re-imposed on any workload — and replaying a
loaded run's own trace reproduces it bit-exactly (the ROADMAP's
"trace-driven interference").  :mod:`repro.analysis.timeline` and
:mod:`repro.analysis.placement` consume the same records for timeline and
placement-robustness reports.

Live observability sits on the same pipeline: :class:`StreamingTraceReader`
tails a growing JSONL file incrementally (``repro trace tail``, ``repro
campaign --progress``), and :func:`trace_diff` /
:func:`assert_traces_equal` localise the first diverging record when two
traces that should be identical are not (``repro trace diff``).
"""

from .records import (
    KNOWN_KINDS,
    TRACE_FORMAT,
    TRACE_VERSION,
    SnapshotBase,
    TraceLog,
    TraceRecord,
)
from .sinks import (
    JsonlTraceSink,
    MemoryTraceSink,
    NullTraceSink,
    TraceSink,
    active_sink,
    read_trace_log,
)
from .replay import TraceReplayInjector, replay_events
from .stream import StreamingTraceReader
from .diff import (
    TraceDiff,
    assert_traces_equal,
    diff_trace_files,
    format_trace_diff,
    trace_diff,
)

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "KNOWN_KINDS",
    "TraceRecord",
    "TraceLog",
    "SnapshotBase",
    "TraceSink",
    "NullTraceSink",
    "MemoryTraceSink",
    "JsonlTraceSink",
    "active_sink",
    "read_trace_log",
    "TraceReplayInjector",
    "replay_events",
    "StreamingTraceReader",
    "TraceDiff",
    "trace_diff",
    "diff_trace_files",
    "format_trace_diff",
    "assert_traces_equal",
]
