"""Trace records, the in-memory trace log and the stats-snapshot base.

See the package docstring (:mod:`repro.trace`) for the schema.  This module
is deliberately dependency-free (no simulator imports) so every layer of the
stack can import it without cycles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterable,
    ItemsView,
    Iterator,
    KeysView,
    List,
    Optional,
    Tuple,
    Union,
    ValuesView,
    overload,
)

if TYPE_CHECKING:
    from .sinks import TraceSink

from ..exceptions import TraceError

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "KNOWN_KINDS",
    "TraceRecord",
    "TraceLog",
    "SnapshotBase",
    "emit_inject_apply",
]

#: the container format tag written to JSONL headers
TRACE_FORMAT = "repro-trace"
#: schema version of the record vocabulary below
TRACE_VERSION = 1

#: every record kind of schema version 1 (the round-trip tests iterate this)
KNOWN_KINDS: Tuple[str, ...] = (
    "run.meta",
    "calendar.activate",
    "calendar.complete",
    "calendar.cancel",
    "calendar.retime",
    "calendar.flush",
    "calendar.reprice",
    "calendar.compaction",
    "calendar.stall",
    "calendar.stall_retry",
    "step",
    "task.state",
    "task.event",
    "inject.apply",
    "inject.flow_start",
    "inject.flow_end",
    "inject.rate_scale_on",
    "inject.rate_scale_off",
    "inject.compute_scale_on",
    "inject.compute_scale_off",
    "inject.reprice",
    "app.meta",
    "app.compute",
    "app.send",
    "app.recv",
    "app.barrier",
    "metrics.sample",
)


@dataclass(slots=True)
class TraceRecord:
    """One structured trace event: time / kind / subject / payload.

    Slotted and *not* frozen: record construction sits on the simulation
    hot path (one record per calendar state change), and a frozen dataclass
    costs about 2× per instantiation (``object.__setattr__``).  Treat
    records as immutable by convention — sinks and logs never mutate them.
    """

    time: float
    kind: str
    subject: Optional[Hashable] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the JSONL line shape, minus the newline)."""
        out: Dict[str, Any] = {"t": self.time, "kind": self.kind}
        if self.subject is not None:
            out["subject"] = self.subject
        if self.data:
            out["data"] = dict(self.data)
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "TraceRecord":
        if not isinstance(raw, dict) or "kind" not in raw:
            raise TraceError(f"malformed trace record {raw!r}")
        try:
            time = float(raw.get("t", 0.0))
        except (TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace record time in {raw!r}") from exc
        data = raw.get("data", {})
        if not isinstance(data, dict):
            raise TraceError(f"trace record data must be a mapping, got {data!r}")
        return cls(time=time, kind=str(raw["kind"]), subject=raw.get("subject"),
                   data=data)


def emit_inject_apply(trace: "TraceSink", now: float, injector: object,
                      index: int) -> None:
    """Emit the ``inject.apply`` record for a firing injector.

    The one emission shape shared by the engine pre-loop, the engine main
    loop and the fluid loop — callers guard with ``if trace is not None``.
    """
    trace.emit(TraceRecord(now, "inject.apply",
                           getattr(injector, "name", type(injector).__name__),
                           {"index": index}))


class TraceLog:
    """An ordered collection of trace records with filtering helpers.

    The in-memory twin of a JSONL trace file: what
    :func:`repro.trace.read_trace_log` returns and what the analysis layer
    (:mod:`repro.analysis.timeline`) consumes.
    """

    def __init__(self, records: Iterable[TraceRecord] = (),
                 version: int = TRACE_VERSION) -> None:
        self.records: List[TraceRecord] = list(records)
        self.version = int(version)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @overload
    def __getitem__(self, index: int) -> TraceRecord: ...

    @overload
    def __getitem__(self, index: slice) -> List[TraceRecord]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[TraceRecord, List[TraceRecord]]:
        return self.records[index]

    # --------------------------------------------------------------- queries
    def kinds(self) -> "Counter[str]":
        """Record count per kind."""
        return Counter(record.kind for record in self.records)

    def records_of(self, *kinds: str) -> List[TraceRecord]:
        """Records whose kind is in ``kinds`` (or has one as a dotted prefix).

        ``records_of("calendar")`` returns every ``calendar.*`` record;
        ``records_of("calendar.flush")`` only the flushes.
        """
        wanted = tuple(kinds)
        return [
            record for record in self.records
            if any(record.kind == kind or record.kind.startswith(kind + ".")
                   for kind in wanted)
        ]

    def subjects(self, kind: Optional[str] = None) -> List[Hashable]:
        """Distinct subjects, in first-appearance order."""
        seen: Dict[Hashable, None] = {}
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if record.subject is not None and record.subject not in seen:
                seen[record.subject] = None
        return list(seen)

    def between(self, start: float, end: float) -> "TraceLog":
        """Records with ``start <= time < end`` (the "what happened at t=X" cut)."""
        return TraceLog(
            (r for r in self.records if start <= r.time < end),
            version=self.version,
        )

    @property
    def duration(self) -> float:
        """Time span covered by the records (0.0 for an empty trace)."""
        if not self.records:
            return 0.0
        times = [record.time for record in self.records]
        return max(times) - min(times)

    def meta(self) -> Dict[str, Any]:
        """Payload of the first ``run.meta`` record (empty dict when absent)."""
        for record in self.records:
            if record.kind == "run.meta":
                return dict(record.data)
        return {}


class SnapshotBase:
    """Mapping-style access over a frozen stats dataclass.

    The typed snapshots (:class:`~repro.network.fluid.CalendarStatsSnapshot`,
    :class:`~repro.simulator.engine.EngineStatsSnapshot`) replace the untyped
    ``last_engine_stats`` / ``last_calendar_stats`` dicts while keeping the
    historical dict access working: ``snapshot["rate_updates"]``,
    ``dict(**snapshot)`` and ``snapshot.as_dict()`` all see one *flat* view
    in which nested snapshots (the engine's embedded calendar counters) are
    merged in — the exact shape of the dicts they replace, so stats and
    trace summaries share one counter vocabulary.
    """

    def _flat(self) -> Dict[str, Any]:
        # built once per (frozen, hence never stale) instance: dict-style
        # access is O(1) instead of re-walking fields() per lookup
        cached = getattr(self, "_flat_cache", None)
        if cached is not None:
            return cached
        out: Dict[str, Any] = {}
        for spec in fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            if isinstance(value, SnapshotBase):
                out.update(value._flat())
            else:
                out[spec.name] = value
        object.__setattr__(self, "_flat_cache", out)
        return out

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict view; nested snapshots are merged into the top level.

        Returns a fresh dict (callers may mutate it freely, like the plain
        dicts these snapshots replaced).
        """
        return dict(self._flat())

    # ------------------------------------------------- dict-style compatibility
    def keys(self) -> KeysView[str]:
        return self._flat().keys()

    def items(self) -> ItemsView[str, Any]:
        return self._flat().items()

    def values(self) -> ValuesView[Any]:
        return self._flat().values()

    def __getitem__(self, key: str) -> Any:
        try:
            return self._flat()[key]
        except KeyError:
            raise KeyError(f"{type(self).__name__} has no counter {key!r}") from None

    def get(self, key: str, default: Any = None) -> Any:
        return self._flat().get(key, default)

    def __contains__(self, key: object) -> bool:
        return key in self._flat()

    def __iter__(self) -> Iterator[str]:
        return iter(self._flat())

    def __len__(self) -> int:
        return len(self._flat())
