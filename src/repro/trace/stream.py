"""Streaming (incremental) reading of live JSONL trace files.

:func:`repro.trace.iter_trace_records` assumes a *finished* file: a partial
trailing line — exactly what a live :class:`~repro.trace.JsonlTraceSink`
leaves between flushes, or what a killed run leaves behind — is malformed
JSON and raises.  :class:`StreamingTraceReader` is the tailer: each
:meth:`~StreamingTraceReader.poll` reads whatever bytes were appended since
the previous poll, parses every *complete* line, and buffers the incomplete
tail until a later poll completes it.  A not-yet-created file, an empty
file and a header-only file are all valid "nothing yet" states, so a
consumer can start tailing before the producer has opened the file.

``repro trace tail`` and ``repro campaign --progress`` sit on top of this,
feeding :class:`repro.analysis.timeline.StreamingTimeline` — whose bins are
identical to the batch reader's on the same records
(``tests/trace/test_stream.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..exceptions import TraceError
from .records import TRACE_FORMAT, TRACE_VERSION, TraceRecord

__all__ = ["StreamingTraceReader"]


class StreamingTraceReader:
    """Incremental reader of one (possibly still growing) JSONL trace file.

    Stateful across :meth:`poll` calls: the byte offset, the buffered
    partial line and the parsed header survive between polls, so each poll
    costs one ``open``/``seek``/``read`` of only the new bytes.  Records
    split across a sink flush boundary (or across a crash) parse exactly as
    they would in a batch read — a record only surfaces once its trailing
    newline exists.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._offset = 0
        self._partial = b""
        self._lineno = 0
        #: parsed header line (``None`` until its newline has been written)
        self.header: Optional[Dict[str, Any]] = None
        #: total records returned across all polls
        self.records_read = 0

    @property
    def header_seen(self) -> bool:
        return self.header is not None

    def poll(self) -> List[TraceRecord]:
        """Parse and return every record completed since the previous poll.

        Returns ``[]`` when the file does not exist yet or nothing complete
        was appended.  Raises :class:`~repro.exceptions.TraceError` on a
        malformed *complete* line, a bad header, or a file that shrank
        (truncation/rotation mid-tail is not recoverable).
        """
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise TraceError(
                f"cannot read trace file {str(self.path)!r}: {exc}"
            ) from exc
        with handle:
            if os.fstat(handle.fileno()).st_size < self._offset:
                raise TraceError(
                    f"trace file {str(self.path)!r} shrank while being tailed"
                )
            handle.seek(self._offset)
            chunk = handle.read()
        if not chunk:
            return []
        self._offset += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        # the final element has no newline yet: keep it for the next poll
        # (b"" when the chunk ended exactly on a record boundary)
        self._partial = lines.pop()
        records: List[TraceRecord] = []
        for raw_line in lines:
            self._lineno += 1
            text = raw_line.decode("utf-8").strip()
            if not text:
                continue
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{self.path}: malformed JSON on line {self._lineno}: {exc}"
                ) from exc
            if self.header is None:
                self._accept_header(raw)
                continue
            records.append(TraceRecord.from_dict(raw))
        self.records_read += len(records)
        return records

    def _accept_header(self, raw: Any) -> None:
        if not isinstance(raw, dict) or raw.get("format") != TRACE_FORMAT:
            raise TraceError(
                f"{self.path}: not a {TRACE_FORMAT} file (bad or missing header)"
            )
        version = raw.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"{self.path}: unsupported trace version {version!r} "
                f"(this build reads version {TRACE_VERSION})"
            )
        self.header = raw
