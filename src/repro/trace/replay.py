"""Trace-driven interference: replay recorded ``inject.*`` events.

:class:`TraceReplayInjector` is an injector (duck-typed against the
``reset()`` / ``next_event(now)`` / ``apply(state)`` contract of
:mod:`repro.simulator.interference`) whose event source is a recorded trace
instead of a stochastic process.  It replays, at their recorded times and in
their recorded order:

* ``inject.flow_start`` / ``inject.flow_end`` — background flows, re-started
  through ``state.start_flow`` with the recorded endpoints/size/owner;
* ``inject.rate_scale_on`` / ``inject.rate_scale_off`` — link-degradation
  windows, rebuilt from the recorded ``{factor, hosts}`` payload and
  followed by a ``state.reprice()`` exactly like
  :class:`~repro.simulator.interference.LinkDegradationInjector`;
* ``inject.compute_scale_on`` / ``inject.compute_scale_off`` — node-slowdown
  windows, rebuilt the same way.

``inject.apply`` and ``inject.reprice`` records are bookkeeping of the
*original* run (the replayed operations re-emit their own) and are skipped.

Because the replayed operations hit the same ``InjectionState`` surface at
the same simulation times with the same payloads, replaying a loaded run's
own trace reproduces that run **bit-exactly** — per-rank event streams,
completion times and all (``tests/trace/test_replay.py``).  This is the
ROADMAP's "trace-driven interference": any measured background-flow or
degradation schedule in the trace container can be imposed on any workload.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Hashable, Iterable, List, Optional, Union

from ..exceptions import TraceError
from .records import TraceLog, TraceRecord

if TYPE_CHECKING:
    from ..simulator.interference import InjectionState

__all__ = ["TraceReplayInjector", "replay_events", "REPLAYABLE_KINDS"]

#: the record kinds a replay run re-executes (everything else is skipped)
REPLAYABLE_KINDS = (
    "inject.flow_start",
    "inject.flow_end",
    "inject.rate_scale_on",
    "inject.rate_scale_off",
    "inject.compute_scale_on",
    "inject.compute_scale_off",
)


def replay_events(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Filter a record stream down to the replayable injector events.

    Order is preserved (traces are emitted in simulation order); payloads
    are validated here so a malformed trace fails at construction, not deep
    inside a run.
    """
    events: List[TraceRecord] = []
    for record in records:
        if record.kind not in REPLAYABLE_KINDS:
            continue
        if record.kind == "inject.flow_start":
            for key in ("src", "dst", "size"):
                if key not in record.data:
                    raise TraceError(
                        f"flow_start record at t={record.time} lacks {key!r}"
                    )
        elif record.kind in ("inject.rate_scale_on", "inject.compute_scale_on"):
            if "factor" not in record.data:
                raise TraceError(
                    f"{record.kind} record at t={record.time} lacks 'factor' "
                    "(the trace was recorded by an injector that did not "
                    "describe its scale)"
                )
        events.append(record)
    return events


class TraceReplayInjector:
    """Replays the injector events of a recorded trace (see module docstring).

    Parameters
    ----------
    records:
        Any iterable of :class:`TraceRecord` — a :class:`TraceLog`, a
        memory sink's records, or a pre-filtered list.  Non-replayable kinds
        are filtered out; recorded order is kept.
    name:
        Label used in diagnostics and ``describe()``.
    """

    def __init__(self, records: Iterable[TraceRecord],
                 name: str = "trace-replay") -> None:
        self.name = name
        self.events = replay_events(records)
        self.reset()

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_log(cls, log: TraceLog, name: str = "trace-replay") -> "TraceReplayInjector":
        return cls(log.records, name=name)

    @classmethod
    def from_jsonl(cls, path: Union[str, Path],
                   name: str = "trace-replay") -> "TraceReplayInjector":
        from .sinks import read_trace_log

        return cls.from_log(read_trace_log(path), name=name)

    # --------------------------------------------------------------- contract
    def reset(self) -> None:
        self._cursor = 0
        #: recorded flow id -> live flow id handed out by this run's state
        self._flows: Dict[Hashable, Hashable] = {}
        #: recorded scale handle -> live handle of this run's state
        self._rate_handles: Dict[Hashable, Optional[int]] = {}
        self._compute_handles: Dict[Hashable, Optional[int]] = {}

    def next_event(self, now: float) -> Optional[float]:
        if self._cursor >= len(self.events):
            return None
        return self.events[self._cursor].time

    def apply(self, state: "InjectionState") -> None:
        """Re-execute every recorded event sharing the next record's time.

        Same-time records are batched into one firing: the original run may
        have produced them through *several* injectors applied back-to-back
        at one clock value (e.g. two windows opening at t=0, which the
        engine fires in its pre-loop before the first task sweep), and a
        single replay injector only gets one calendar slot per distinct
        time.  Same-time operations are order-preserved and take zero
        simulated time, so batching is observationally identical.
        """
        if self._cursor >= len(self.events):  # pragma: no cover - defensive
            return
        batch_time = self.events[self._cursor].time
        while (self._cursor < len(self.events)
               and self.events[self._cursor].time == batch_time):
            record = self.events[self._cursor]
            self._cursor += 1
            self._dispatch(record, state)

    def _dispatch(self, record: TraceRecord, state: "InjectionState") -> None:
        kind, data = record.kind, record.data
        if kind == "inject.flow_start":
            tid = state.start_flow(
                int(data["src"]), int(data["dst"]), float(data["size"]),
                owner=str(data.get("owner", self.name)),
            )
            if record.subject is not None:
                self._flows[record.subject] = tid
        elif kind == "inject.flow_end":
            # only end flows this replay itself started: a flow_end whose
            # start fell outside the record window (sliced trace) has no
            # live twin, and the raw recorded id could alias an unrelated
            # replayed flow
            tid = self._flows.pop(record.subject, None)
            if tid is not None:
                state.end_flow(tid)
        elif kind == "inject.rate_scale_on":
            from ..simulator.interference import make_rate_scale

            scale = make_rate_scale(float(data["factor"]), data.get("hosts"))
            handle = state.add_rate_scale(scale, info=dict(data))
            self._rate_handles[record.subject] = handle
            state.reprice()
        elif kind == "inject.rate_scale_off":
            handle = self._rate_handles.pop(record.subject, None)
            state.remove_rate_scale(handle)
            state.reprice()
        elif kind == "inject.compute_scale_on":
            from ..simulator.interference import make_compute_scale

            scale = make_compute_scale(float(data["factor"]), data.get("hosts"))
            handle = state.add_compute_scale(scale, info=dict(data))
            self._compute_handles[record.subject] = handle
        elif kind == "inject.compute_scale_off":
            handle = self._compute_handles.pop(record.subject, None)
            state.remove_compute_scale(handle)

    # -------------------------------------------------------------- reporting
    def describe(self) -> Dict[str, Any]:
        return {
            "injector": type(self).__name__,
            "name": self.name,
            "events": len(self.events),
            "start": self.events[0].time if self.events else None,
            "until": self.events[-1].time if self.events else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceReplayInjector(name={self.name!r}, "
                f"events={len(self.events)})")
