"""Library of the paper's communication schemes.

Every scheme the paper uses in its figures is reconstructed here:

* the Figure 2 ladder (six schemes of growing contention, 20 MB messages),
* the β-estimation outgoing ladders,
* the Figure 4 parameter-verification scheme (4 MB messages),
* the Figure 5 example graph of the Myrinet state-set analysis,
* the Figure 7 synthetic graphs MK1 (tree) and MK2 (complete graph).

The original PDF renders these graphs as (partially garbled) diagrams; the
reconstructions below satisfy every numeric constraint stated in the text —
the degree counts used by the γ derivation for Figure 4, the state-set sums
and minima of Figure 6 for Figure 5, tree/complete structure for Figure 7 —
and the residual ambiguity is documented per experiment in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict

from ..core.graph import CommunicationGraph
from ..exceptions import WorkloadError
from ..units import MB

__all__ = [
    "single_communication_scheme",
    "outgoing_conflict_scheme",
    "incoming_conflict_scheme",
    "figure2_schemes",
    "figure4_scheme",
    "figure5_graph",
    "mk1_tree",
    "mk2_complete",
    "SCHEME_BUILDERS",
    "get_scheme",
]


def single_communication_scheme(size: int = 20 * MB) -> CommunicationGraph:
    """Figure 2, scheme 1: a single communication (the reference measurement)."""
    return CommunicationGraph.from_edges([(0, 1)], size=size, name="fig2-s1", names=["a"])


def outgoing_conflict_scheme(fanout: int, size: int = 20 * MB) -> CommunicationGraph:
    """Node 0 sends the same message to ``fanout`` distinct nodes (C←X→ conflict).

    This is the ladder used to estimate β (§V.A): every communication is
    penalised by ``fanout × β`` on Gigabit Ethernet.
    """
    if fanout < 1:
        raise WorkloadError(f"fanout must be >= 1, got {fanout}")
    edges = [(0, i + 1) for i in range(fanout)]
    return CommunicationGraph.from_edges(edges, size=size, name=f"outgoing-{fanout}")


def incoming_conflict_scheme(fanin: int, size: int = 20 * MB) -> CommunicationGraph:
    """``fanin`` nodes send to node 0 simultaneously (C→X← conflict)."""
    if fanin < 1:
        raise WorkloadError(f"fanin must be >= 1, got {fanin}")
    edges = [(i + 1, 0) for i in range(fanin)]
    return CommunicationGraph.from_edges(edges, size=size, name=f"incoming-{fanin}")


def figure2_schemes(size: int = 20 * MB) -> Dict[str, CommunicationGraph]:
    """The six schemes of Figure 2, keyed ``"S1"`` … ``"S6"``.

    * S1: a single communication 0→1;
    * S2: node 0 sends to nodes 1 and 2;
    * S3: node 0 sends to nodes 1, 2 and 3;
    * S4: S3 plus node 4 sending to node 0 (income/outgo conflict);
    * S5: S4 plus node 5 sending to node 0;
    * S6: S5 plus node 6 sending to node 4.
    """
    schemes: Dict[str, CommunicationGraph] = {}
    schemes["S1"] = single_communication_scheme(size)
    schemes["S2"] = CommunicationGraph.from_edges(
        [(0, 1), (0, 2)], size=size, name="fig2-s2", names=["a", "b"])
    schemes["S3"] = CommunicationGraph.from_edges(
        [(0, 1), (0, 2), (0, 3)], size=size, name="fig2-s3", names=["a", "b", "c"])
    schemes["S4"] = CommunicationGraph.from_edges(
        [(0, 1), (0, 2), (0, 3), (4, 0)], size=size, name="fig2-s4",
        names=["a", "b", "c", "d"])
    schemes["S5"] = CommunicationGraph.from_edges(
        [(0, 1), (0, 2), (0, 3), (4, 0), (5, 0)], size=size, name="fig2-s5",
        names=["a", "b", "c", "d", "e"])
    schemes["S6"] = CommunicationGraph.from_edges(
        [(0, 1), (0, 2), (0, 3), (4, 0), (5, 0), (6, 4)], size=size, name="fig2-s6",
        names=["a", "b", "c", "d", "e", "f"])
    return schemes


def figure4_scheme(size: int = 4 * MB) -> CommunicationGraph:
    """The parameter-verification scheme of Figure 4 (4 MB messages).

    Reconstruction constraints taken from the text:

    * node 0 sends three communications ``a``, ``b``, ``c`` (γ_o is derived
      from ``t_a`` with a factor 3·β);
    * communication ``f`` arrives at a node that receives three
      communications and its source sends nothing else (γ_i is derived from
      ``t_f`` with the same 3·β factor, and ``p_o(f) = 1``);
    * ``a`` and ``b`` are *not* strongly slowed outgoing communications
      (their predicted time equals ``3·β·(1-γ_o)·t_ref``), so the unique
      most-contended destination among node 0's targets belongs to ``c``;
    * ``d`` arrives at a node with in-degree 2 shared with ``b``; ``e``
      arrives at the same 3-receiver node as ``c`` and ``f``.
    """
    graph = CommunicationGraph(name="fig4-verification")
    graph.add_edge(0, 1, size=size, name="a")
    graph.add_edge(0, 2, size=size, name="b")
    graph.add_edge(0, 3, size=size, name="c")
    graph.add_edge(1, 2, size=size, name="d")
    graph.add_edge(1, 3, size=size, name="e")
    graph.add_edge(4, 3, size=size, name="f")
    return graph


def figure5_graph(size: int = 20 * MB) -> CommunicationGraph:
    """The example graph of the Myrinet state-set analysis (Figures 5 and 6).

    Reconstructed so that the state-set table of Figure 6 is reproduced
    exactly: 5 state sets, emission sums (1, 2, 2, 2, 2, 3) for
    (a, b, c, d, e, f), per-source minima (1, 1, 1, 2, 2, 2) and penalties
    (5, 5, 5, 2.5, 2.5, 2.5).
    """
    graph = CommunicationGraph(name="fig5-myrinet-example")
    graph.add_edge(0, 2, size=size, name="a")   # into the doubly-contended node
    graph.add_edge(0, 1, size=size, name="b")
    graph.add_edge(0, 3, size=size, name="c")
    graph.add_edge(4, 2, size=size, name="d")
    graph.add_edge(3, 2, size=size, name="e")
    graph.add_edge(3, 5, size=size, name="f")
    return graph


def mk1_tree(size: int = 4 * MB) -> CommunicationGraph:
    """MK1: the tree-shaped synthetic graph of Figure 7 (best-effort reconstruction).

    Eight nodes, seven communications forming a tree, mixing outgoing,
    incoming and income/outgo conflicts so that the Myrinet and Ethernet
    models can be compared against the emulator exactly as in the paper.
    """
    graph = CommunicationGraph(name="mk1-tree")
    graph.add_edge(0, 1, size=size, name="a")
    graph.add_edge(0, 2, size=size, name="b")
    graph.add_edge(3, 0, size=size, name="c")
    graph.add_edge(4, 1, size=size, name="d")
    graph.add_edge(1, 5, size=size, name="e")
    graph.add_edge(6, 3, size=size, name="f")
    graph.add_edge(3, 7, size=size, name="g")
    return graph


def mk2_complete(size: int = 4 * MB) -> CommunicationGraph:
    """MK2: the complete-graph synthetic benchmark of Figure 7.

    Five nodes, one communication per unordered pair (10 communications
    ``a`` … ``j``), oriented so that node 0 sends to everyone — the densest
    conflict situation of the paper's synthetic evaluation.
    """
    graph = CommunicationGraph(name="mk2-complete")
    graph.add_edge(0, 1, size=size, name="a")
    graph.add_edge(0, 2, size=size, name="b")
    graph.add_edge(0, 3, size=size, name="c")
    graph.add_edge(0, 4, size=size, name="d")
    graph.add_edge(2, 1, size=size, name="e")
    graph.add_edge(1, 4, size=size, name="f")
    graph.add_edge(1, 3, size=size, name="g")
    graph.add_edge(4, 3, size=size, name="h")
    graph.add_edge(3, 2, size=size, name="i")
    graph.add_edge(4, 2, size=size, name="j")
    return graph


SCHEME_BUILDERS = {
    "fig2-s1": lambda size=20 * MB: figure2_schemes(size)["S1"],
    "fig2-s2": lambda size=20 * MB: figure2_schemes(size)["S2"],
    "fig2-s3": lambda size=20 * MB: figure2_schemes(size)["S3"],
    "fig2-s4": lambda size=20 * MB: figure2_schemes(size)["S4"],
    "fig2-s5": lambda size=20 * MB: figure2_schemes(size)["S5"],
    "fig2-s6": lambda size=20 * MB: figure2_schemes(size)["S6"],
    "fig4": figure4_scheme,
    "fig5": figure5_graph,
    "mk1": mk1_tree,
    "mk2": mk2_complete,
}


def get_scheme(name: str, size: int | None = None) -> CommunicationGraph:
    """Build one of the paper's schemes by name (see :data:`SCHEME_BUILDERS`)."""
    key = name.lower()
    if key not in SCHEME_BUILDERS:
        raise WorkloadError(
            f"unknown scheme {name!r}; known: {', '.join(sorted(SCHEME_BUILDERS))}"
        )
    builder = SCHEME_BUILDERS[key]
    return builder(size) if size is not None else builder()
