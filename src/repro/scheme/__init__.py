"""Communication schemes: description language and the paper's scheme library."""

from .language import format_scheme, parse_edge_line, parse_scheme
from .library import (
    SCHEME_BUILDERS,
    figure2_schemes,
    figure4_scheme,
    figure5_graph,
    get_scheme,
    incoming_conflict_scheme,
    mk1_tree,
    mk2_complete,
    outgoing_conflict_scheme,
    single_communication_scheme,
)

__all__ = [
    "parse_scheme",
    "format_scheme",
    "parse_edge_line",
    "figure2_schemes",
    "figure4_scheme",
    "figure5_graph",
    "mk1_tree",
    "mk2_complete",
    "outgoing_conflict_scheme",
    "incoming_conflict_scheme",
    "single_communication_scheme",
    "get_scheme",
    "SCHEME_BUILDERS",
]
