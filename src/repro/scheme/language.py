"""Communication-scheme description language.

The paper's measurement software takes a "description of the communication
task scheme using a specific description language" (§IV.B).  This module
provides an equivalent small text language plus its parser and serialiser.

Grammar (line oriented, ``#`` starts a comment)::

    scheme <name>          # optional, names the graph
    size <default-size>    # optional, default message size (e.g. 20M, 4MB)
    <src> -> <dst> [: <name>] [<size>]

Examples::

    # Figure 2, second scheme: node 0 sends to nodes 1 and 2
    scheme fig2-s2
    size 20M
    0 -> 1 : a
    0 -> 2 : b

    # anonymous communications with per-edge sizes
    0 -> 1 4MB
    1 -> 2 512k

:func:`parse_scheme` returns a :class:`~repro.core.graph.CommunicationGraph`;
:func:`format_scheme` is the inverse (round-trip safe up to whitespace).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..core.graph import CommunicationGraph
from ..exceptions import SchemeParseError
from ..units import MB, parse_size

__all__ = ["parse_scheme", "format_scheme", "parse_edge_line"]


_EDGE_RE = re.compile(
    r"""^\s*
        (?P<src>\d+)\s*->\s*(?P<dst>\d+)          # 0 -> 1
        (?:\s*:\s*(?P<name>[A-Za-z_][\w-]*))?      # : a
        (?:\s+(?P<size>[\d.]+\s*[A-Za-z]*))?       # 4MB
        \s*$""",
    re.VERBOSE,
)

_DIRECTIVE_RE = re.compile(r"^\s*(?P<key>scheme|name|size)\s+(?P<value>\S.*?)\s*$", re.IGNORECASE)


def parse_edge_line(line: str) -> Optional[Tuple[int, int, Optional[str], Optional[int]]]:
    """Parse a single edge line, returning ``(src, dst, name, size)`` or None.

    Returns ``None`` when the line does not look like an edge at all (so the
    caller can try directives); raises :class:`SchemeParseError` when it looks
    like an edge but is malformed.
    """
    if "->" not in line:
        return None
    match = _EDGE_RE.match(line)
    if not match:
        raise SchemeParseError(f"malformed edge line: {line.strip()!r}")
    src = int(match.group("src"))
    dst = int(match.group("dst"))
    name = match.group("name")
    size_text = match.group("size")
    size = None
    if size_text is not None:
        try:
            size = parse_size(size_text)
        except ValueError as exc:
            raise SchemeParseError(str(exc)) from exc
    return src, dst, name, size


def parse_scheme(text: str, default_size: int = 20 * MB, name: str = "") -> CommunicationGraph:
    """Parse a scheme description into a :class:`CommunicationGraph`.

    >>> g = parse_scheme('''
    ... scheme demo
    ... size 4M
    ... 0 -> 1 : a
    ... 0 -> 2
    ... ''')
    >>> (g.name, len(g), g['a'].size)
    ('demo', 2, 4000000)
    """
    graph_name = name
    size = default_size
    edges: List[Tuple[int, int, Optional[str], Optional[int]]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            edge = parse_edge_line(line)
        except SchemeParseError as exc:
            raise SchemeParseError(str(exc), line=lineno) from None
        if edge is not None:
            edges.append(edge)
            continue
        directive = _DIRECTIVE_RE.match(line)
        if directive is None:
            raise SchemeParseError(f"cannot parse line {line!r}", line=lineno)
        key = directive.group("key").lower()
        value = directive.group("value")
        if key in ("scheme", "name"):
            graph_name = value
        elif key == "size":
            try:
                size = parse_size(value)
            except ValueError as exc:
                raise SchemeParseError(str(exc), line=lineno) from None

    graph = CommunicationGraph(name=graph_name)
    for src, dst, comm_name, comm_size in edges:
        graph.add_edge(src, dst, size=comm_size if comm_size is not None else size,
                       name=comm_name)
    return graph


def format_scheme(graph: CommunicationGraph, include_sizes: bool = True) -> str:
    """Serialise a graph back into the description language."""
    lines: List[str] = []
    if graph.name:
        lines.append(f"scheme {graph.name}")
    sizes = {comm.size for comm in graph}
    default_size: Optional[int] = None
    if len(sizes) == 1 and include_sizes:
        default_size = next(iter(sizes))
        lines.append(f"size {default_size}")
    for comm in graph:
        line = f"{comm.src} -> {comm.dst} : {comm.name}"
        if include_sizes and default_size is None:
            line += f" {comm.size}"
        lines.append(line)
    return "\n".join(lines) + "\n"
