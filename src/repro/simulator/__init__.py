"""Predictive simulator (§VI.A of the paper).

Applications are per-task sequences of compute and communication events; the
execution engine advances them above a fluid transfer layer whose rates come
either from a contention model (prediction) or from the calibrated cluster
emulator (measurement).
"""

from .application import Application, TaskTrace
from .engine import EngineConfig, EngineStatsSnapshot, ExecutionEngine
from .events import ANY_SOURCE, BarrierEvent, ComputeEvent, Event, RecvEvent, SendEvent
from .interference import (
    BackgroundTrafficInjector,
    Injector,
    LinkDegradationInjector,
    NodeSlowdownInjector,
    build_injectors,
)
from .providers import EmulatorRateProvider, ModelRateProvider
from .report import EventRecord, SimulationReport
from .scheduling import PAPER_POLICIES, make_placement
from .simulator import Simulator

__all__ = [
    "Application",
    "TaskTrace",
    "EngineConfig",
    "EngineStatsSnapshot",
    "ExecutionEngine",
    "Injector",
    "BackgroundTrafficInjector",
    "LinkDegradationInjector",
    "NodeSlowdownInjector",
    "build_injectors",
    "ANY_SOURCE",
    "ComputeEvent",
    "SendEvent",
    "RecvEvent",
    "BarrierEvent",
    "Event",
    "ModelRateProvider",
    "EmulatorRateProvider",
    "EventRecord",
    "SimulationReport",
    "Simulator",
    "make_placement",
    "PAPER_POLICIES",
]
