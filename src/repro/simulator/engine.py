"""Execution engine.

The engine executes an application (one event stream per MPI task placed on
cluster nodes) above a fluid transfer layer whose instantaneous rates come
from a pluggable *rate provider* — either a contention model (prediction) or
the calibrated cluster emulator (measurement).  It implements the MPI timing
semantics the paper relies on:

* blocking sends measured at the source, "starting before the MPI send and
  ending when the MPI send method terminates";
* an eager protocol for small messages and a rendezvous protocol for large
  ones (a rendezvous send cannot transfer data before the matching receive is
  posted);
* ``MPI_ANY_SOURCE`` receives;
* global synchronisation barriers;
* compute events expressed either in seconds or in floating point operations.

The engine is a fluid discrete-event simulation: time only advances to the
next compute completion, transfer completion or transfer readiness, and the
rates of all in-flight transfers are refreshed whenever that set changes.

Rate refreshes follow the incremental recomputation contract of
:mod:`repro.network.fluid`: the engine passes the full set of progressing
transfers to the provider at every step, and the provider diffs it against
the previous step — with the default incremental
:class:`~repro.simulator.providers.ModelRateProvider`, an arrival or
departure only re-prices the conflict components it dirtied, and repeated
contention situations of iterative applications (LINPACK iterations,
collective phases) hit the memoized snapshot cache instead of re-running
the contention model.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..cluster.placement import Placement
from ..exceptions import DeadlockError, SimulationError, TraceError
from ..network.fluid import Transfer
from ..network.technologies import NetworkTechnology, get_technology
from ..units import KiB
from .application import Application
from .events import ANY_SOURCE, BarrierEvent, ComputeEvent, Event, RecvEvent, SendEvent
from .report import EventRecord, SimulationReport

__all__ = ["EngineConfig", "ExecutionEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Tunable knobs of the execution engine."""

    #: messages up to this size use the eager protocol (bytes)
    eager_threshold: int = 64 * KiB
    #: fraction of peak FLOP/s actually achieved by compute events given in flops
    compute_efficiency: float = 0.80
    #: peak FLOP/s per core used when the placement has no cluster attached
    default_flops_per_core: float = 4.0e9
    #: hard cap on engine iterations per simulated event (safety net)
    iteration_factor: int = 50

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise SimulationError("eager_threshold must be non-negative")
        if not (0 < self.compute_efficiency <= 1):
            raise SimulationError("compute_efficiency must be in (0, 1]")
        if self.default_flops_per_core <= 0:
            raise SimulationError("default_flops_per_core must be positive")


class _Status(Enum):
    READY = "ready"
    COMPUTING = "computing"
    SENDING = "sending"
    RECEIVING = "receiving"
    BARRIER = "barrier"
    DONE = "done"


@dataclass
class _TaskState:
    rank: int
    program: Iterator
    status: _Status = _Status.READY
    resume_value: object = None
    #: end time of the current compute event
    compute_until: float = 0.0
    #: record fields of the event currently being executed
    current_start: float = 0.0
    current_event: Optional[Event] = None
    event_index: int = 0
    finish_time: float = 0.0


@dataclass
class _SendRequest:
    rank: int
    dst: int
    tag: int
    size: int
    posted: float
    label: str = ""
    transfer_id: Optional[int] = None


@dataclass
class _RecvRequest:
    rank: int
    src: int
    tag: int
    posted: float
    label: str = ""


@dataclass
class _InFlight:
    transfer: Transfer
    remaining: float
    ready_time: float
    send: _SendRequest
    recv: Optional[_RecvRequest] = None


class ExecutionEngine:
    """Executes task programs over a fluid transfer layer."""

    EPSILON = 1e-12

    def __init__(
        self,
        programs: Union[Application, Sequence[Iterator], Sequence[Iterable]],
        placement: Placement,
        rate_provider,
        technology: NetworkTechnology | str,
        config: EngineConfig | None = None,
        application_name: str = "",
        model_name: str = "",
    ) -> None:
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.technology = technology
        self.rate_provider = rate_provider
        self.config = config or EngineConfig()
        self.placement = placement

        if isinstance(programs, Application):
            application_name = application_name or programs.name
            iterators: List[Iterator] = [iter(list(trace.events)) for trace in programs]
            self._num_events_hint = sum(len(trace) for trace in programs)
        else:
            iterators = [iter(p) for p in programs]
            self._num_events_hint = 100 * max(1, len(iterators))
        if len(iterators) != placement.num_tasks:
            raise SimulationError(
                f"{len(iterators)} task programs but the placement has "
                f"{placement.num_tasks} tasks"
            )
        self.num_tasks = len(iterators)
        self.tasks = [_TaskState(rank=r, program=it) for r, it in enumerate(iterators)]

        self.application_name = application_name
        self.model_name = model_name

        # runtime state
        self.now = 0.0
        self._transfer_counter = itertools.count()
        self.in_flight: Dict[int, _InFlight] = {}
        self.pending_sends: List[_SendRequest] = []     # rendezvous sends waiting for a recv
        self.pending_recvs: List[_RecvRequest] = []     # posted recvs waiting for a send
        self.arrived: List[Tuple[_SendRequest, float]] = []  # eager messages waiting for a recv
        self.barrier_waiting: Dict[int, float] = {}      # rank -> time it reached the barrier
        self.records: List[EventRecord] = []

    # -------------------------------------------------------------- utilities
    def _flops_per_core(self) -> float:
        cluster = self.placement.cluster
        if cluster is not None:
            return cluster.node.flops_per_core
        return self.config.default_flops_per_core

    def _compute_duration(self, event: ComputeEvent) -> float:
        if event.duration is not None:
            return float(event.duration)
        assert event.flops is not None
        return float(event.flops) / (self._flops_per_core() * self.config.compute_efficiency)

    def _base_transfer_time(self, size: int, intra_node: bool) -> float:
        if intra_node:
            return size / self.technology.memory_bandwidth
        return self.technology.latency + size / self.technology.single_stream_bandwidth

    def _node_of(self, rank: int) -> int:
        return self.placement.node(rank)

    # -------------------------------------------------------- program control
    def _advance_program(self, task: _TaskState) -> Optional[Event]:
        """Pull the next event of a task program, passing back resume values."""
        try:
            if task.resume_value is not None and hasattr(task.program, "send"):
                event = task.program.send(task.resume_value)
            else:
                event = next(task.program)
        except StopIteration:
            return None
        finally:
            task.resume_value = None
        return event

    def _finish_task(self, task: _TaskState) -> None:
        task.status = _Status.DONE
        task.finish_time = self.now

    # ------------------------------------------------------------ event start
    def _start_event(self, task: _TaskState, event: Event) -> None:
        task.current_event = event
        task.current_start = self.now
        if isinstance(event, ComputeEvent):
            duration = self._compute_duration(event)
            task.status = _Status.COMPUTING
            task.compute_until = self.now + duration
        elif isinstance(event, SendEvent):
            if event.dst == task.rank:
                raise TraceError(f"rank {task.rank} sends to itself")
            if event.dst >= self.num_tasks:
                raise TraceError(f"rank {task.rank} sends to unknown rank {event.dst}")
            task.status = _Status.SENDING
            self._post_send(task, event)
        elif isinstance(event, RecvEvent):
            if event.src == task.rank:
                raise TraceError(f"rank {task.rank} receives from itself")
            task.status = _Status.RECEIVING
            self._post_recv(task, event)
        elif isinstance(event, BarrierEvent):
            task.status = _Status.BARRIER
            self.barrier_waiting[task.rank] = self.now
            self._maybe_release_barrier()
        else:  # pragma: no cover - defensive
            raise TraceError(f"unknown event type {type(event).__name__}")

    # ------------------------------------------------------------- messaging
    def _matches(self, send: _SendRequest, recv: _RecvRequest) -> bool:
        if send.dst != recv.rank or send.tag != recv.tag:
            return False
        return recv.src == ANY_SOURCE or recv.src == send.rank

    def _start_transfer(self, send: _SendRequest, recv: Optional[_RecvRequest]) -> None:
        src_node = self._node_of(send.rank)
        dst_node = self._node_of(send.dst)
        size = send.size + self.technology.mpi_envelope
        tid = next(self._transfer_counter)
        send.transfer_id = tid
        transfer = Transfer(transfer_id=tid, src=src_node, dst=dst_node,
                            size=size, start_time=self.now)
        latency = 0.0 if src_node == dst_node else self.technology.latency
        self.in_flight[tid] = _InFlight(
            transfer=transfer,
            remaining=float(size),
            ready_time=self.now + latency,
            send=send,
            recv=recv,
        )

    def _post_send(self, task: _TaskState, event: SendEvent) -> None:
        request = _SendRequest(
            rank=task.rank, dst=event.dst, tag=event.tag,
            size=event.size, posted=self.now, label=event.label,
        )
        eager = event.size <= self.config.eager_threshold
        if eager:
            # eager: data leaves immediately whether or not the recv is posted
            recv = self._pop_matching_recv(request)
            self._start_transfer(request, recv)
            return
        recv = self._pop_matching_recv(request)
        if recv is not None:
            self._start_transfer(request, recv)
        else:
            self.pending_sends.append(request)

    def _pop_matching_recv(self, send: _SendRequest) -> Optional[_RecvRequest]:
        for index, recv in enumerate(self.pending_recvs):
            if self._matches(send, recv):
                return self.pending_recvs.pop(index)
        return None

    def _post_recv(self, task: _TaskState, event: RecvEvent) -> None:
        request = _RecvRequest(
            rank=task.rank,
            src=event.src,
            tag=event.tag,
            posted=self.now,
            label=event.label,
        )
        # 1. a matching eager message already arrived
        for index, (send, arrival) in enumerate(self.arrived):
            if self._matches(send, request):
                self.arrived.pop(index)
                self._complete_recv(task, request, send, completion=self.now)
                return
        # 2. a matching transfer is already in flight without an attached recv
        candidates = [
            flight for flight in self.in_flight.values()
            if flight.recv is None and self._matches(flight.send, request)
        ]
        if candidates:
            flight = min(candidates, key=lambda f: f.send.posted)
            flight.recv = request
            return
        # 3. a matching rendezvous send is waiting: start the transfer now
        for index, send in enumerate(self.pending_sends):
            if self._matches(send, request):
                self.pending_sends.pop(index)
                self._start_transfer(send, request)
                return
        # 4. nothing yet: wait
        self.pending_recvs.append(request)

    # ----------------------------------------------------------- completions
    def _record(self, rank: int, kind: str, start: float, end: float, size: int = 0,
                peer: Optional[int] = None, label: str = "",
                penalty: Optional[float] = None) -> None:
        task = self.tasks[rank]
        self.records.append(EventRecord(
            rank=rank, index=task.event_index, kind=kind, start=start, end=end,
            size=size, peer=peer, label=label, penalty=penalty,
        ))
        task.event_index += 1

    def _complete_send(self, send: _SendRequest, completion: float) -> None:
        task = self.tasks[send.rank]
        intra = self._node_of(send.rank) == self._node_of(send.dst)
        base = self._base_transfer_time(send.size + self.technology.mpi_envelope, intra)
        duration = completion - send.posted
        penalty = duration / base if base > 0 else 1.0
        self._record(send.rank, "send", send.posted, completion, size=send.size,
                     peer=send.dst, label=send.label, penalty=max(penalty, 0.0))
        task.status = _Status.READY
        task.resume_value = {"kind": "send", "dst": send.dst, "duration": duration}

    def _complete_recv(self, task: _TaskState, recv: _RecvRequest, send: _SendRequest,
                       completion: float) -> None:
        self._record(recv.rank, "recv", recv.posted, completion, size=send.size,
                     peer=send.rank, label=recv.label)
        task.status = _Status.READY
        task.resume_value = {"kind": "recv", "source": send.rank, "size": send.size,
                             "duration": completion - recv.posted}

    def _complete_transfer(self, tid: int) -> None:
        flight = self.in_flight.pop(tid)
        self._complete_send(flight.send, self.now)
        if flight.recv is not None:
            receiver = self.tasks[flight.recv.rank]
            self._complete_recv(receiver, flight.recv, flight.send, self.now)
        else:
            self.arrived.append((flight.send, self.now))

    def _maybe_release_barrier(self) -> None:
        alive = [t for t in self.tasks if t.status is not _Status.DONE]
        if alive and all(t.status is _Status.BARRIER for t in alive):
            for task in alive:
                start = self.barrier_waiting.pop(task.rank)
                label = ""
                if isinstance(task.current_event, BarrierEvent):
                    label = task.current_event.label
                self._record(task.rank, "barrier", start, self.now, label=label)
                task.status = _Status.READY
                task.resume_value = {"kind": "barrier"}

    # ------------------------------------------------------------------- run
    def _process_ready_tasks(self) -> bool:
        """Advance every READY task until all are blocked; True if anything ran."""
        progressed = False
        made_progress = True
        while made_progress:
            made_progress = False
            for task in self.tasks:
                if task.status is not _Status.READY:
                    continue
                event = self._advance_program(task)
                if event is None:
                    self._finish_task(task)
                    self._maybe_release_barrier()
                else:
                    self._start_event(task, event)
                progressed = True
                made_progress = True
        return progressed

    def _progressing_transfers(self) -> List[Transfer]:
        return [
            flight.transfer for flight in self.in_flight.values()
            if flight.ready_time <= self.now + self.EPSILON
        ]

    def run(self) -> SimulationReport:
        """Execute the application to completion and return the report."""
        max_iterations = self.config.iteration_factor * (self._num_events_hint + self.num_tasks) + 100
        iterations = 0

        while True:
            iterations += 1
            if iterations > max_iterations:
                raise SimulationError("execution engine exceeded its iteration budget")

            self._process_ready_tasks()

            if all(task.status is _Status.DONE for task in self.tasks):
                break

            # candidate times of the next state change
            candidates: List[float] = []
            for task in self.tasks:
                if task.status is _Status.COMPUTING:
                    candidates.append(task.compute_until)
            for flight in self.in_flight.values():
                if flight.ready_time > self.now + self.EPSILON:
                    candidates.append(flight.ready_time)

            progressing = self._progressing_transfers()
            rates: Dict[Hashable, float] = {}
            if progressing:
                rates = dict(self.rate_provider.rates(progressing))
                for transfer in progressing:
                    rate = rates.get(transfer.transfer_id, 0.0)
                    if rate < 0:
                        raise SimulationError(
                            f"negative rate for transfer {transfer.transfer_id!r}"
                        )
                    if rate > 0:
                        flight = self.in_flight[transfer.transfer_id]
                        candidates.append(self.now + flight.remaining / rate)

            if not candidates:
                blocked = [
                    (task.rank, task.status.value) for task in self.tasks
                    if task.status is not _Status.DONE
                ]
                raise DeadlockError(
                    f"no task can make progress at t={self.now:.6f}s; "
                    f"blocked tasks: {blocked}",
                    blocked_tasks=[rank for rank, _ in blocked],
                )

            horizon = min(candidates)
            horizon = max(horizon, self.now)
            dt = horizon - self.now

            # advance in-flight transfers
            for transfer in progressing:
                flight = self.in_flight[transfer.transfer_id]
                flight.remaining -= rates.get(transfer.transfer_id, 0.0) * dt
            self.now = horizon

            # complete computes
            for task in self.tasks:
                if task.status is _Status.COMPUTING and task.compute_until <= self.now + self.EPSILON:
                    event = task.current_event
                    label = event.label if isinstance(event, ComputeEvent) else ""
                    self._record(task.rank, "compute", task.current_start, self.now, label=label)
                    task.status = _Status.READY
                    task.resume_value = {"kind": "compute"}

            # complete transfers.  A transfer is finished when its remaining
            # byte count is negligible, or when the time still needed at its
            # current rate is below the floating point resolution of the
            # simulation clock (otherwise the main loop could spin on a
            # zero-length time step without ever advancing `now`).
            clock_resolution = max(abs(self.now), 1.0) * 1e-12
            finished = []
            for tid, flight in self.in_flight.items():
                if flight.ready_time > self.now + self.EPSILON:
                    continue
                rate = rates.get(tid, 0.0)
                negligible_bytes = flight.remaining <= max(self.EPSILON, 1e-6)
                negligible_time = rate > 0 and flight.remaining / rate <= clock_resolution
                if negligible_bytes or negligible_time:
                    finished.append(tid)
            for tid in sorted(finished):
                self._complete_transfer(tid)

        report = SimulationReport(
            application_name=self.application_name,
            model_name=self.model_name,
            placement_policy=self.placement.policy,
            num_tasks=self.num_tasks,
            records=self.records,
            finish_time_per_task={task.rank: task.finish_time for task in self.tasks},
        )
        return report
