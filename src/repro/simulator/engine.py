"""Execution engine.

The engine executes an application (one event stream per MPI task placed on
cluster nodes) above a fluid transfer layer whose instantaneous rates come
from a pluggable *rate provider* — either a contention model (prediction) or
the calibrated cluster emulator (measurement).  It implements the MPI timing
semantics the paper relies on:

* blocking sends measured at the source, "starting before the MPI send and
  ending when the MPI send method terminates";
* an eager protocol for small messages and a rendezvous protocol for large
  ones (a rendezvous send cannot transfer data before the matching receive is
  posted);
* ``MPI_ANY_SOURCE`` receives;
* global synchronisation barriers;
* compute events expressed either in seconds or in floating point operations.

The engine is an **event-calendar** fluid discrete-event simulation: compute
completions and transfer-readiness times live in a timeline heap, predicted
transfer completions live in the shared
:class:`~repro.network.fluid.TransferCalendar`, and every step advances the
clock to the earliest calendar entry.  Rate refreshes follow the delta
contract of :mod:`repro.network.fluid`: the engine hands the provider only
the flow arrivals and departures since the previous step, the provider
returns the rates of exactly the transfers it re-priced (with the default
:class:`~repro.simulator.providers.ModelRateProvider`, the membership of
the conflict components the delta dirtied), and only transfers whose rate
*value* changed have their remaining bytes integrated and their completion
re-timed.  Per-step work therefore scales with the state change, not with
the number of in-flight transfers.  Setting
:attr:`EngineConfig.delta_rates` to ``False`` re-queries the full active
set each step instead (bit-exact with the delta path — property-tested in
``tests/property/test_calendar_engine.py``).

Message matching — pending sends, posted receives, parked eager arrivals
and unclaimed in-flight transfers — is indexed by ``(src, dst, tag)`` with
``MPI_ANY_SOURCE`` wildcard buckets, preserving the posted-order
tie-breaking of the historical linear scans.

Interference injection: :attr:`EngineConfig.injectors` carries
:mod:`repro.simulator.interference` injectors whose events ride the same
timeline heap as computes and readiness transitions.  Injected background
flows join the calendar (and therefore the provider's delta path) like
foreground transfers — they contend for bandwidth in the model and in the
emulator — but are excluded from message matching, task completion and the
report; compute-rate and link-capacity scaling windows are applied through
the injection state (``_EngineInjectionState``).  With no injectors
configured every code path is bit-exact with the pre-injection engine
(property-tested in ``tests/property/test_interference_properties.py``).

Tracing: :attr:`EngineConfig.trace` attaches a :mod:`repro.trace` sink; the
engine emits ``step`` boundaries, ``task.state`` / ``task.event`` records and
``inject.*`` events, and hands the sink to its calendar for the
``calendar.*`` stream.  ``trace=None`` (the default) is bit-exact with the
untraced engine (``tests/property/test_trace_properties.py``).
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..cluster.placement import Placement
from ..exceptions import DeadlockError, SimulationError, TraceError
from ..network.fluid import (
    CalendarStatsSnapshot,
    RateScaleRegistry,
    Transfer,
    TransferCalendar,
)
from ..network.technologies import NetworkTechnology, get_technology
from ..trace.records import SnapshotBase, TraceRecord, emit_inject_apply
from ..trace.sinks import TraceSink, active_sink
from ..units import KiB
from .application import Application
from .events import ANY_SOURCE, BarrierEvent, ComputeEvent, Event, RecvEvent, SendEvent
from .report import EventRecord, SimulationReport

__all__ = [
    "EngineConfig",
    "EngineLoopStats",
    "EngineStatsSnapshot",
    "ExecutionEngine",
]


@dataclass(frozen=True)
class EngineConfig:
    """Tunable knobs of the execution engine."""

    #: messages up to this size use the eager protocol (bytes)
    eager_threshold: int = 64 * KiB
    #: fraction of peak FLOP/s actually achieved by compute events given in flops
    compute_efficiency: float = 0.80
    #: peak FLOP/s per core used when the placement has no cluster attached
    default_flops_per_core: float = 4.0e9
    #: hard cap on engine iterations per simulated event (safety net)
    iteration_factor: int = 50
    #: use the provider's delta ``update`` API (when available); ``False``
    #: re-queries the full active set every step — same results, O(active)
    #: per-step work (kept for verification and benchmarking)
    delta_rates: bool = True
    #: structure-of-arrays calendar bookkeeping (see
    #: :class:`~repro.network.fluid.TransferCalendar`'s ``vectorized``);
    #: ``False`` keeps the scalar per-flight path — bit-exact either way
    vectorized_calendar: bool = True
    #: interference injectors (:mod:`repro.simulator.interference`) whose
    #: events ride the timeline heap; empty = bit-exact clean-fabric run
    injectors: Tuple = ()
    #: optional :class:`repro.trace.TraceSink` the engine (and its calendar)
    #: emits structured per-event records through; ``None`` = untraced,
    #: bit-exact with the pre-trace engine
    trace: Optional[TraceSink] = field(default=None, compare=False, repr=False)
    #: optional :class:`repro.obs.MetricsRegistry`; attaching one registers
    #: the engine/calendar/provider stats as live sources and times the hot
    #: phases (calendar flush, dirty pricing, water-fill).  ``None`` =
    #: unmetered, bit-exact (one pointer test per site, like ``trace``)
    metrics: Optional[object] = field(default=None, compare=False, repr=False)
    #: emit one ``metrics.sample`` trace record every this many steps (needs
    #: both ``metrics`` and ``trace`` attached); 0 disables sampling.  The
    #: samples carry wall-clock timer values, so a sampled trace is not
    #: byte-reproducible across runs — the simulated results still are
    metrics_sample_every: int = 256

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise SimulationError("eager_threshold must be non-negative")
        if not (0 < self.compute_efficiency <= 1):
            raise SimulationError("compute_efficiency must be in (0, 1]")
        if self.default_flops_per_core <= 0:
            raise SimulationError("default_flops_per_core must be positive")
        if self.metrics_sample_every < 0:
            raise SimulationError("metrics_sample_every must be non-negative")
        object.__setattr__(self, "injectors", tuple(self.injectors))


@dataclass(frozen=True)
class EngineStatsSnapshot(SnapshotBase):
    """Immutable, typed view of one engine run's loop + calendar counters.

    Replaces the untyped ``last_engine_stats`` dict.  The embedded
    :class:`~repro.network.fluid.CalendarStatsSnapshot` is merged into the
    flat dict view (``snapshot["rate_updates"]`` and
    :meth:`~repro.trace.SnapshotBase.as_dict` keep the historical shape),
    so loop stats, calendar stats and trace summaries share one counter
    vocabulary.
    """

    iterations: int = 0
    steps: int = 0
    injected_events: int = 0
    background_flows: int = 0
    timeline_bulk_merges: int = 0
    timeline_bulk_drains: int = 0
    timeline_bulk_drained: int = 0
    calendar: CalendarStatsSnapshot = field(default_factory=CalendarStatsSnapshot)


@dataclass
class EngineLoopStats:
    """Work counters of one :meth:`ExecutionEngine.run` (see the benchmark)."""

    #: main-loop iterations (ready-task sweeps)
    iterations: int = 0
    #: horizon advances (simulation steps)
    steps: int = 0
    #: injector events fired (0 on a clean-fabric run)
    injected_events: int = 0
    #: background flows started by injectors
    background_flows: int = 0
    #: timeline entries merged with one bulk heapify instead of per-entry
    #: pushes (a per-step sweep's computes/readiness transitions coalesced)
    timeline_bulk_merges: int = 0
    #: due-event sweeps that switched from per-entry heappops to one
    #: partition + heapify of the remainder (large same-horizon batches)
    timeline_bulk_drains: int = 0
    #: timeline entries extracted through bulk drains (⊆ all drained)
    timeline_bulk_drained: int = 0
    #: calendar counters (rate_updates, retimed, stale_entries, ...) of the run
    calendar: Dict[str, int] = field(default_factory=dict)

    def freeze(self) -> EngineStatsSnapshot:
        """Typed immutable snapshot (the :attr:`Simulator.last_engine_stats` type)."""
        return EngineStatsSnapshot(
            iterations=self.iterations,
            steps=self.steps,
            injected_events=self.injected_events,
            background_flows=self.background_flows,
            timeline_bulk_merges=self.timeline_bulk_merges,
            timeline_bulk_drains=self.timeline_bulk_drains,
            timeline_bulk_drained=self.timeline_bulk_drained,
            calendar=CalendarStatsSnapshot(**self.calendar),
        )

    def snapshot(self) -> Dict[str, int]:
        """Flat dict view (compatibility shim over :meth:`freeze`)."""
        return self.freeze().as_dict()


class _Status(Enum):
    READY = "ready"
    COMPUTING = "computing"
    SENDING = "sending"
    RECEIVING = "receiving"
    BARRIER = "barrier"
    DONE = "done"


@dataclass
class _TaskState:
    rank: int
    program: Iterator
    status: _Status = _Status.READY
    resume_value: object = None
    #: end time of the current compute event
    compute_until: float = 0.0
    #: record fields of the event currently being executed
    current_start: float = 0.0
    current_event: Optional[Event] = None
    event_index: int = 0
    finish_time: float = 0.0


@dataclass
class _SendRequest:
    rank: int
    dst: int
    tag: int
    size: int
    posted: float
    label: str = ""
    transfer_id: Optional[int] = None


@dataclass
class _RecvRequest:
    rank: int
    src: int
    tag: int
    posted: float
    label: str = ""


@dataclass
class _InFlight:
    transfer: Transfer
    ready_time: float
    send: _SendRequest
    recv: Optional[_RecvRequest] = None
    #: token of this flight in the unclaimed-transfer index while recv is None
    claim_token: Optional[int] = None


class _MatchQueue:
    """``(src, dst, tag)``-keyed message-matching buckets.

    Replaces the historical linear scans over ``pending_sends`` /
    ``pending_recvs`` / ``arrived`` lists.  Items are stored under their
    channel coordinates; ``src`` may be :data:`ANY_SOURCE` on the stored
    side (a wildcard receive) or on the query side (a receive matching any
    sender).  :meth:`pop_best` returns the match with the smallest order
    key — insertion order by default, so the FIFO posted-order tie-breaking
    of the scans it replaces is preserved exactly, including across the
    specific and wildcard buckets of one channel.
    """

    def __init__(self) -> None:
        #: (src, dst, tag) -> {token: (order, item)} for specific-source items
        self._specific: Dict[Tuple[int, int, int], Dict[int, Tuple[tuple, object]]] = {}
        #: (dst, tag) -> {token: (order, item)} for stored ANY_SOURCE items
        self._any_src: Dict[Tuple[int, int], Dict[int, Tuple[tuple, object]]] = {}
        #: (dst, tag) -> {token: (order, item)} mirror of every specific item,
        #: consulted by ANY_SOURCE queries
        self._mirror: Dict[Tuple[int, int], Dict[int, Tuple[tuple, object]]] = {}
        self._where: Dict[int, Tuple[int, int, int]] = {}
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._where)

    def add(self, src: int, dst: int, tag: int, item: object,
            order: Optional[float] = None) -> int:
        """Store ``item`` under its channel; returns a token for :meth:`discard`.

        ``order`` defaults to the insertion rank (the token), giving FIFO;
        an explicit order (e.g. posted time) sorts before it, with the token
        breaking ties — one key shape either way, so a queue mixing both
        styles still compares consistently.
        """
        token = next(self._seq)
        entry = ((token if order is None else order, token), item)
        self._where[token] = (src, dst, tag)
        if src == ANY_SOURCE:
            self._any_src.setdefault((dst, tag), {})[token] = entry
        else:
            self._specific.setdefault((src, dst, tag), {})[token] = entry
            self._mirror.setdefault((dst, tag), {})[token] = entry
        return token

    def discard(self, token: Optional[int]) -> Optional[object]:
        """Remove a stored item by token (no-op when already matched)."""
        if token is None:
            return None
        where = self._where.pop(token, None)
        if where is None:
            return None
        src, dst, tag = where
        if src == ANY_SOURCE:
            bucket = self._any_src[(dst, tag)]
            entry = bucket.pop(token)
            if not bucket:
                del self._any_src[(dst, tag)]
        else:
            bucket = self._specific[(src, dst, tag)]
            entry = bucket.pop(token)
            if not bucket:
                del self._specific[(src, dst, tag)]
            mirror = self._mirror[(dst, tag)]
            mirror.pop(token, None)
            if not mirror:
                del self._mirror[(dst, tag)]
        return entry[1]

    def pop_best(self, src: int, dst: int, tag: int) -> Optional[object]:
        """Pop the oldest stored item matching ``(src, dst, tag)``."""
        if src == ANY_SOURCE:
            buckets = (self._mirror.get((dst, tag)), self._any_src.get((dst, tag)))
        else:
            buckets = (self._specific.get((src, dst, tag)), self._any_src.get((dst, tag)))
        best_token = None
        best_order = None
        for bucket in buckets:
            if not bucket:
                continue
            token = min(bucket, key=lambda t: bucket[t][0])
            order = bucket[token][0]
            if best_order is None or order < best_order:
                best_token, best_order = token, order
        if best_token is None:
            return None
        return self.discard(best_token)


#: timeline entry kinds (computes before readiness on equal timestamps is
#: irrelevant — due entries are drained together and re-ordered explicitly)
_COMPUTE = 0
_READY = 1
_INJECT = 2


class _EngineInjectionState:
    """Injection surface of one :meth:`ExecutionEngine.run`.

    Implements the informal ``InjectionState`` protocol of
    :mod:`repro.simulator.interference` over the engine's calendar and task
    set: background flows enter the shared :class:`TransferCalendar` (and
    thus the provider's delta path) but never touch the match queues or the
    task programs.
    """

    def __init__(self, engine: "ExecutionEngine") -> None:
        self._engine = engine
        self._flow_seq = itertools.count()
        self._scale_seq = itertools.count()
        self._rate_scales = RateScaleRegistry(engine._calendar)
        cluster = engine.placement.cluster
        if cluster is not None:
            self.hosts: Tuple[int, ...] = tuple(range(cluster.num_nodes))
        else:
            self.hosts = tuple(sorted(
                {engine.placement.node(rank) for rank in range(engine.num_tasks)}
            ))

    @property
    def now(self) -> float:
        return self._engine.now

    # ------------------------------------------------------------- flows
    def start_flow(self, src: int, dst: int, size: float,
                   owner: str = "background") -> int:
        engine = self._engine
        tid = f"{owner}#{next(self._flow_seq)}"
        if engine._trace is not None:
            engine._trace.emit(TraceRecord(engine.now, "inject.flow_start", tid, {
                "src": src, "dst": dst, "size": float(size), "owner": owner,
            }))
        transfer = Transfer(transfer_id=tid, src=src, dst=dst, size=float(size),
                            start_time=engine.now)
        engine._calendar.activate(transfer, engine.now)
        engine._background[tid] = transfer
        engine.stats.background_flows += 1
        return tid

    def end_flow(self, tid) -> None:
        engine = self._engine
        if tid in engine._background and engine._calendar.is_active(tid):
            if engine._trace is not None:
                engine._trace.emit(
                    TraceRecord(engine.now, "inject.flow_end", tid, {})
                )
            engine._calendar.cancel(tid, engine.now)
        engine._background.pop(tid, None)

    # ------------------------------------------------------------- scaling
    def add_rate_scale(self, scale, info=None) -> int:
        handle = self._rate_scales.add(scale)
        engine = self._engine
        if engine._trace is not None:
            engine._trace.emit(TraceRecord(engine.now, "inject.rate_scale_on",
                                           handle, dict(info or {})))
        return handle

    def remove_rate_scale(self, handle) -> None:
        engine = self._engine
        if engine._trace is not None and handle is not None:
            engine._trace.emit(TraceRecord(engine.now, "inject.rate_scale_off",
                                           handle, {}))
        self._rate_scales.remove(handle)

    def add_compute_scale(self, scale, info=None) -> int:
        handle = next(self._scale_seq)
        engine = self._engine
        if engine._trace is not None:
            engine._trace.emit(TraceRecord(engine.now, "inject.compute_scale_on",
                                           handle, dict(info or {})))
        engine._compute_scales[handle] = scale
        return handle

    def remove_compute_scale(self, handle) -> None:
        engine = self._engine
        if engine._trace is not None and handle is not None:
            engine._trace.emit(TraceRecord(engine.now, "inject.compute_scale_off",
                                           handle, {}))
        engine._compute_scales.pop(handle, None)

    def reprice(self) -> None:
        engine = self._engine
        if engine._trace is not None:
            engine._trace.emit(TraceRecord(engine.now, "inject.reprice", None, {}))
        engine._calendar.reprice(engine.now)


class ExecutionEngine:
    """Executes task programs over a fluid transfer layer."""

    EPSILON = 1e-12
    #: sweeps buffering at least this many timeline entries (and at least a
    #: quarter of the heap) merge with one heapify instead of per-entry pushes
    TIMELINE_BULK_MIN = 8

    def __init__(
        self,
        programs: Union[Application, Sequence[Iterator], Sequence[Iterable]],
        placement: Placement,
        rate_provider,
        technology: NetworkTechnology | str,
        config: EngineConfig | None = None,
        application_name: str = "",
        model_name: str = "",
    ) -> None:
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.technology = technology
        self.rate_provider = rate_provider
        self.config = config or EngineConfig()
        self.placement = placement

        if isinstance(programs, Application):
            application_name = application_name or programs.name
            iterators: List[Iterator] = [iter(list(trace.events)) for trace in programs]
            self._num_events_hint = sum(len(trace) for trace in programs)
        else:
            iterators = [iter(p) for p in programs]
            self._num_events_hint = 100 * max(1, len(iterators))
        if len(iterators) != placement.num_tasks:
            raise SimulationError(
                f"{len(iterators)} task programs but the placement has "
                f"{placement.num_tasks} tasks"
            )
        self.num_tasks = len(iterators)
        self.tasks = [_TaskState(rank=r, program=it) for r, it in enumerate(iterators)]

        self.application_name = application_name
        self.model_name = model_name

        # runtime state
        self.now = 0.0
        self._transfer_counter = itertools.count()
        self.in_flight: Dict[int, _InFlight] = {}
        #: injected background flows currently alive (excluded from matching)
        self._background: Dict[object, Transfer] = {}
        #: active compute-rate scales (handle -> node -> factor), injector-owned
        self._compute_scales: Dict[int, object] = {}
        self._injection_state: Optional[_EngineInjectionState] = None
        self._sends = _MatchQueue()      # rendezvous sends waiting for a recv
        self._recvs = _MatchQueue()      # posted recvs waiting for a send
        self._arrived = _MatchQueue()    # eager messages waiting for a recv
        self._unclaimed = _MatchQueue()  # in-flight transfers without a recv
        self.barrier_waiting: Dict[int, float] = {}  # rank -> time it reached the barrier
        self.records: List[EventRecord] = []
        # event calendar: computes + transfer readiness in the timeline heap,
        # predicted transfer completions in the shared TransferCalendar
        self._timeline: List[Tuple[float, int, int, int]] = []
        # entries buffered during a ready-task sweep, merged into the heap in
        # one pass at the next horizon computation (see _merge_timeline)
        self._timeline_pending: List[Tuple[float, int, int, int]] = []
        self._timeline_seq = itertools.count()
        self._calendar: Optional[TransferCalendar] = None
        self._trace = active_sink(self.config.trace)
        self._metrics = self.config.metrics
        #: repro.obs phase timer around the due-event drain sweep; one
        #: pointer test per sweep when unmetered, PhaseTimer.due()-sampled
        #: when metered (same contract as the calendar's flush timer)
        self._drain_timer = (self._metrics.timer("timeline.drain_s")
                             if self._metrics is not None else None)
        # sampling needs both a sink (to emit through) and a registry (to
        # snapshot); the untraced/unmetered paths keep a single falsy test
        self._sample_every = (
            self.config.metrics_sample_every
            if self._trace is not None and self._metrics is not None else 0
        )
        self.stats = EngineLoopStats()

    # -------------------------------------------------------------- utilities
    def _flops_per_core(self) -> float:
        cluster = self.placement.cluster
        if cluster is not None:
            return cluster.node.flops_per_core
        return self.config.default_flops_per_core

    def _compute_duration(self, event: ComputeEvent) -> float:
        if event.duration is not None:
            return float(event.duration)
        assert event.flops is not None
        return float(event.flops) / (self._flops_per_core() * self.config.compute_efficiency)

    def _compute_scale(self, rank: int) -> float:
        """Product of the active injector compute-rate scales at this node."""
        node = self._node_of(rank)
        factor = 1.0
        for scale in self._compute_scales.values():
            factor *= scale(node)
        if factor <= 0.0:
            raise SimulationError(
                f"compute-rate scale at node {node} is not positive ({factor})"
            )
        return factor

    def _base_transfer_time(self, size: int, intra_node: bool) -> float:
        if intra_node:
            return size / self.technology.memory_bandwidth
        return self.technology.latency + size / self.technology.single_stream_bandwidth

    def _node_of(self, rank: int) -> int:
        return self.placement.node(rank)

    # -------------------------------------------------------- program control
    def _advance_program(self, task: _TaskState) -> Optional[Event]:
        """Pull the next event of a task program, passing back resume values."""
        try:
            if task.resume_value is not None and hasattr(task.program, "send"):
                event = task.program.send(task.resume_value)
            else:
                event = next(task.program)
        except StopIteration:
            return None
        finally:
            task.resume_value = None
        return event

    def _finish_task(self, task: _TaskState) -> None:
        task.status = _Status.DONE
        task.finish_time = self.now
        if self._trace is not None:
            self._trace.emit(TraceRecord(self.now, "task.state", task.rank,
                                         {"status": "done"}))

    # ------------------------------------------------------------ event start
    def _start_event(self, task: _TaskState, event: Event) -> None:
        task.current_event = event
        task.current_start = self.now
        if self._trace is not None:
            self._trace.emit(TraceRecord(self.now, "task.state", task.rank, {
                "status": type(event).__name__.replace("Event", "").lower(),
                "label": getattr(event, "label", ""),
            }))
        if isinstance(event, ComputeEvent):
            duration = self._compute_duration(event)
            if self._compute_scales:
                # slowdown windows scale the compute *rate* of events that
                # start while the window is open (see NodeSlowdownInjector)
                duration = duration / self._compute_scale(task.rank)
            task.status = _Status.COMPUTING
            task.compute_until = self.now + duration
            self._timeline_pending.append(
                (task.compute_until, next(self._timeline_seq), _COMPUTE, task.rank)
            )
        elif isinstance(event, SendEvent):
            if event.dst == task.rank:
                raise TraceError(f"rank {task.rank} sends to itself")
            if event.dst >= self.num_tasks:
                raise TraceError(f"rank {task.rank} sends to unknown rank {event.dst}")
            task.status = _Status.SENDING
            self._post_send(task, event)
        elif isinstance(event, RecvEvent):
            if event.src == task.rank:
                raise TraceError(f"rank {task.rank} receives from itself")
            task.status = _Status.RECEIVING
            self._post_recv(task, event)
        elif isinstance(event, BarrierEvent):
            task.status = _Status.BARRIER
            self.barrier_waiting[task.rank] = self.now
            self._maybe_release_barrier()
        else:  # pragma: no cover - defensive
            raise TraceError(f"unknown event type {type(event).__name__}")

    # ------------------------------------------------------------- messaging
    def _start_transfer(self, send: _SendRequest, recv: Optional[_RecvRequest]) -> None:
        src_node = self._node_of(send.rank)
        dst_node = self._node_of(send.dst)
        size = send.size + self.technology.mpi_envelope
        tid = next(self._transfer_counter)
        send.transfer_id = tid
        transfer = Transfer(transfer_id=tid, src=src_node, dst=dst_node,
                            size=size, start_time=self.now)
        latency = 0.0 if src_node == dst_node else self.technology.latency
        flight = _InFlight(
            transfer=transfer,
            ready_time=self.now + latency,
            send=send,
            recv=recv,
        )
        self.in_flight[tid] = flight
        if recv is None:
            flight.claim_token = self._unclaimed.add(
                send.rank, send.dst, send.tag, flight, order=send.posted
            )
        if flight.ready_time <= self.now + self.EPSILON:
            self._calendar.activate(transfer, self.now)
        else:
            self._timeline_pending.append(
                (flight.ready_time, next(self._timeline_seq), _READY, tid)
            )

    def _post_send(self, task: _TaskState, event: SendEvent) -> None:
        request = _SendRequest(
            rank=task.rank, dst=event.dst, tag=event.tag,
            size=event.size, posted=self.now, label=event.label,
        )
        recv = self._recvs.pop_best(task.rank, event.dst, event.tag)
        eager = event.size <= self.config.eager_threshold
        if eager or recv is not None:
            # eager: data leaves immediately whether or not the recv is posted
            self._start_transfer(request, recv)
        else:
            self._sends.add(task.rank, event.dst, event.tag, request)

    def _post_recv(self, task: _TaskState, event: RecvEvent) -> None:
        request = _RecvRequest(
            rank=task.rank,
            src=event.src,
            tag=event.tag,
            posted=self.now,
            label=event.label,
        )
        # 1. a matching eager message already arrived (earliest arrival first)
        send = self._arrived.pop_best(event.src, task.rank, event.tag)
        if send is not None:
            self._complete_recv(task, request, send, completion=self.now)
            return
        # 2. a matching transfer is already in flight without an attached recv
        #    (earliest posted first)
        flight = self._unclaimed.pop_best(event.src, task.rank, event.tag)
        if flight is not None:
            flight.recv = request
            flight.claim_token = None
            return
        # 3. a matching rendezvous send is waiting: start the transfer now
        send = self._sends.pop_best(event.src, task.rank, event.tag)
        if send is not None:
            self._start_transfer(send, request)
            return
        # 4. nothing yet: wait
        self._recvs.add(event.src, task.rank, event.tag, request)

    # ----------------------------------------------------------- completions
    def _record(self, rank: int, kind: str, start: float, end: float, size: int = 0,
                peer: Optional[int] = None, label: str = "",
                penalty: Optional[float] = None) -> None:
        task = self.tasks[rank]
        self.records.append(EventRecord(
            rank=rank, index=task.event_index, kind=kind, start=start, end=end,
            size=size, peer=peer, label=label, penalty=penalty,
        ))
        if self._trace is not None:
            self._trace.emit(TraceRecord(end, "task.event", rank, {
                "kind": kind, "start": start, "end": end, "size": size,
                "peer": peer, "label": label, "penalty": penalty,
                "index": task.event_index,
            }))
        task.event_index += 1

    def _complete_send(self, send: _SendRequest, completion: float) -> None:
        task = self.tasks[send.rank]
        intra = self._node_of(send.rank) == self._node_of(send.dst)
        base = self._base_transfer_time(send.size + self.technology.mpi_envelope, intra)
        duration = completion - send.posted
        penalty = duration / base if base > 0 else 1.0
        self._record(send.rank, "send", send.posted, completion, size=send.size,
                     peer=send.dst, label=send.label, penalty=max(penalty, 0.0))
        task.status = _Status.READY
        task.resume_value = {"kind": "send", "dst": send.dst, "duration": duration}

    def _complete_recv(self, task: _TaskState, recv: _RecvRequest, send: _SendRequest,
                       completion: float) -> None:
        self._record(recv.rank, "recv", recv.posted, completion, size=send.size,
                     peer=send.rank, label=recv.label)
        task.status = _Status.READY
        task.resume_value = {"kind": "recv", "source": send.rank, "size": send.size,
                             "duration": completion - recv.posted}

    def _complete_transfer(self, tid: int) -> None:
        flight = self.in_flight.pop(tid)
        self._complete_send(flight.send, self.now)
        if flight.recv is not None:
            receiver = self.tasks[flight.recv.rank]
            self._complete_recv(receiver, flight.recv, flight.send, self.now)
        else:
            self._unclaimed.discard(flight.claim_token)
            self._arrived.add(flight.send.rank, flight.send.dst, flight.send.tag,
                              flight.send)

    def _maybe_release_barrier(self) -> None:
        alive = [t for t in self.tasks if t.status is not _Status.DONE]
        if alive and all(t.status is _Status.BARRIER for t in alive):
            for task in alive:
                start = self.barrier_waiting.pop(task.rank)
                label = ""
                if isinstance(task.current_event, BarrierEvent):
                    label = task.current_event.label
                self._record(task.rank, "barrier", start, self.now, label=label)
                task.status = _Status.READY
                task.resume_value = {"kind": "barrier"}

    # ------------------------------------------------------------------- run
    def _process_ready_tasks(self) -> bool:
        """Advance every READY task until all are blocked; True if anything ran."""
        progressed = False
        made_progress = True
        while made_progress:
            made_progress = False
            for task in self.tasks:
                if task.status is not _Status.READY:
                    continue
                event = self._advance_program(task)
                if event is None:
                    self._finish_task(task)
                    self._maybe_release_barrier()
                else:
                    self._start_event(task, event)
                progressed = True
                made_progress = True
        return progressed

    def _merge_timeline(self) -> None:
        """Fold the sweep's buffered entries into the timeline heap.

        ``_start_event`` / ``_start_transfer`` buffer their pushes during a
        ready-task sweep; merging them here replaces one ``heappush`` per
        started event with either per-entry pushes (small sweeps) or a
        single list-extend + ``heapify`` rebuild (bulk sweeps, e.g. every
        rank starting a compute at a barrier exit).  Entries carry unique
        ``(time, seq)`` keys, so the pop stream — and therefore the
        simulation — is identical either way.
        """
        pending = self._timeline_pending
        if not pending:
            return
        timeline = self._timeline
        if (len(pending) >= self.TIMELINE_BULK_MIN
                and 4 * len(pending) >= len(timeline)):
            timeline.extend(pending)
            heapq.heapify(timeline)
            self.stats.timeline_bulk_merges += 1
        else:
            push = heapq.heappush
            for entry in pending:
                push(timeline, entry)
        pending.clear()

    def _next_horizon(self) -> float:
        """Earliest calendar entry (timeline or predicted completion)."""
        self._merge_timeline()
        if self.config.injectors and not self.in_flight:
            # only injector runs need this extra check: _INJECT/background
            # entries keep the timeline non-empty, yet with no transfer in
            # flight and nobody computing they can never unblock a task.
            # (Injector-free runs reach the empty-`times` branch below
            # instead, so their hot loop pays nothing here.)
            alive = [task for task in self.tasks
                     if task.status is not _Status.DONE]
            if alive and not any(
                task.status is _Status.COMPUTING for task in alive
            ):
                blocked = [(task.rank, task.status.value) for task in alive]
                raise DeadlockError(
                    f"no task can make progress at t={self.now:.6f}s; "
                    f"blocked tasks: {blocked}",
                    blocked_tasks=[rank for rank, _ in blocked],
                )
        times: List[float] = []
        if self._timeline:
            times.append(self._timeline[0][0])
        completion = self._calendar.next_time()
        if completion is not None:
            times.append(completion)
        if not times:
            stalled = self._calendar.stalled_ids()
            if stalled:
                # distinguishes a zero-rate starvation (a provider that never
                # re-reported these transfers) from a true MPI deadlock
                raise SimulationError(
                    f"simulation stalled at t={self.now:.6f}s: transfers "
                    f"{list(stalled)!r} have zero rate and no pending event "
                    f"can re-rate them"
                )
            blocked = [(task.rank, task.status.value) for task in self.tasks
                       if task.status is not _Status.DONE]
            raise DeadlockError(
                f"no task can make progress at t={self.now:.6f}s; "
                f"blocked tasks: {blocked}",
                blocked_tasks=[rank for rank, _ in blocked],
            )
        return min(times)

    def _complete_due_events(self) -> None:
        # hot path: one attribute read and a None test when unmetered; when
        # metered, two local perf_counter calls, optionally 1-in-N sampled
        # through PhaseTimer.due() (same shape as TransferCalendar.flush)
        timer = self._drain_timer
        if timer is None or not timer.due():
            return self._complete_due_events_impl()
        counter = perf_counter
        start = counter()
        self._complete_due_events_impl()
        timer.observe(counter() - start)

    def _complete_due_events_impl(self) -> None:
        """Fire every calendar entry due at the current time.

        Ordering mirrors the historical loop: compute completions first (in
        rank order), then foreground transfer completions (in transfer
        order), then injector events; newly ready transfers join the rate
        set for the *next* step's flush.  Background-flow completions only
        update the injection bookkeeping — their departure reaches the
        provider through the calendar's pending delta like any other.

        Large same-horizon batches (a barrier releasing every rank, a bulk
        readiness wave) are drained with one partition pass plus a heapify
        of the remainder instead of per-entry ``heappop`` sifts, mirroring
        the :attr:`TIMELINE_BULK_MIN` merge strategy: entries are popped
        one at a time until the drained count reaches the bulk threshold
        *and* a partition scan is amortized by the pops already done, then
        the remaining due entries are extracted in one sweep.  ``(time,
        seq)`` heap keys are unique, so sorting the swept-out batch yields
        exactly the historical pop order — the classification below is
        bit-exact either way.
        """
        compute_ranks: List[int] = []
        ready_tids: List[int] = []
        inject_indices: List[int] = []
        horizon = self.now + self.EPSILON
        timeline = self._timeline
        drained = 0
        while timeline and timeline[0][0] <= horizon:
            if (drained >= self.TIMELINE_BULK_MIN
                    and 4 * drained >= len(timeline)):
                due: List[Tuple[float, int, int, int]] = []
                keep: List[Tuple[float, int, int, int]] = []
                for entry in timeline:
                    (due if entry[0] <= horizon else keep).append(entry)
                due.sort()
                heapq.heapify(keep)
                self._timeline = timeline = keep
                for _, _, kind, payload in due:
                    if kind == _COMPUTE:
                        compute_ranks.append(payload)
                    elif kind == _READY:
                        ready_tids.append(payload)
                    else:
                        inject_indices.append(payload)
                self.stats.timeline_bulk_drains += 1
                self.stats.timeline_bulk_drained += len(due)
                break
            _, _, kind, payload = heapq.heappop(timeline)
            drained += 1
            if kind == _COMPUTE:
                compute_ranks.append(payload)
            elif kind == _READY:
                ready_tids.append(payload)
            else:
                inject_indices.append(payload)
        finished = self._calendar.pop_due(self.now)

        for rank in sorted(compute_ranks):
            task = self.tasks[rank]
            if task.status is not _Status.COMPUTING:  # pragma: no cover - defensive
                continue
            event = task.current_event
            label = event.label if isinstance(event, ComputeEvent) else ""
            self._record(rank, "compute", task.current_start, self.now, label=label)
            task.status = _Status.READY
            task.resume_value = {"kind": "compute"}

        foreground: List[Transfer] = []
        for transfer in finished:
            if transfer.transfer_id in self._background:
                del self._background[transfer.transfer_id]
            else:
                foreground.append(transfer)
        for transfer in sorted(foreground, key=lambda t: t.transfer_id):
            self._complete_transfer(transfer.transfer_id)

        for index in inject_indices:
            injector = self.config.injectors[index]
            if self._trace is not None:
                emit_inject_apply(self._trace, self.now, injector, index)
            injector.apply(self._injection_state)
            self.stats.injected_events += 1
            when = injector.next_event(self.now)
            if when is not None:
                heapq.heappush(
                    self._timeline,
                    (max(when, self.now), next(self._timeline_seq), _INJECT, index),
                )

        for tid in ready_tids:
            self._calendar.activate(self.in_flight[tid].transfer, self.now)

    def _budget_diagnostics(self, max_iterations: int) -> str:
        counts = Counter(task.status.value for task in self.tasks)
        by_status = ", ".join(f"{status}={count}" for status, count in sorted(counts.items()))
        stalled = self._calendar.stalled_ids() if self._calendar else ()
        stall_note = f"; zero-rated transfers: {list(stalled)!r}" if stalled else ""
        background_note = (
            f"; background flows: {len(self._background)}" if self._background else ""
        )
        return (
            f"execution engine exceeded its iteration budget "
            f"({max_iterations} iterations) at t={self.now:.6f}s; "
            f"tasks by status: {{{by_status}}}; "
            f"in-flight transfers: {len(self.in_flight)} "
            f"({self._calendar.active_count if self._calendar else 0} progressing); "
            f"waiting sends/recvs/arrived: "
            f"{len(self._sends)}/{len(self._recvs)}/{len(self._arrived)}"
            f"{stall_note}{background_note}"
        )

    def run(self) -> SimulationReport:
        """Execute the application to completion and return the report."""
        reset = getattr(self.rate_provider, "reset", None)
        if callable(reset):
            reset()
        self._calendar = TransferCalendar(
            self.rate_provider,
            delta=None if self.config.delta_rates else False,
            missing_rate="zero",
            trace=self._trace,
            metrics=self._metrics,
            vectorized=self.config.vectorized_calendar,
        )
        if self._metrics is not None:
            metrics = self._metrics
            stats = self.stats
            metrics.register_source("engine", lambda: {
                "iterations": stats.iterations,
                "steps": stats.steps,
                "injected_events": stats.injected_events,
                "background_flows": stats.background_flows,
            })
            metrics.register_source("calendar", self._calendar.stats.snapshot)
            register = getattr(self.rate_provider, "register_metrics", None)
            if callable(register):
                register(metrics)
        self._background.clear()
        self._compute_scales.clear()
        if self.config.injectors:
            self._injection_state = _EngineInjectionState(self)
            for index, injector in enumerate(self.config.injectors):
                injector.reset()
                when = injector.next_event(0.0)
                if when is not None:
                    heapq.heappush(
                        self._timeline,
                        (max(0.0, when), next(self._timeline_seq), _INJECT, index),
                    )
            # events scheduled at t=0 (e.g. windows opening at the origin)
            # take effect before the first ready-task sweep, so computes and
            # sends starting at t=0 already see the installed scales
            while self._timeline and self._timeline[0][0] <= self.EPSILON:
                _, _, _, index = heapq.heappop(self._timeline)
                injector = self.config.injectors[index]
                if self._trace is not None:
                    emit_inject_apply(self._trace, self.now, injector, index)
                injector.apply(self._injection_state)
                self.stats.injected_events += 1
                when = injector.next_event(0.0)
                if when is not None:
                    # clamp follow-ups just past the origin so this pre-loop
                    # terminates; they fire on the first regular step
                    heapq.heappush(
                        self._timeline,
                        (max(when, 2 * self.EPSILON),
                         next(self._timeline_seq), _INJECT, index),
                    )
        max_iterations = self.config.iteration_factor * (self._num_events_hint + self.num_tasks) + 100
        iterations = 0

        while True:
            iterations += 1
            self.stats.iterations = iterations
            # injector events consume iterations too: grow the budget with
            # the injected work so loaded runs keep the same safety margin
            allowed = max_iterations + 20 * self.stats.injected_events
            if iterations > allowed:
                raise SimulationError(self._budget_diagnostics(allowed))

            self._process_ready_tasks()

            if all(task.status is _Status.DONE for task in self.tasks):
                break

            # push the flow delta of this step (new sends, completed
            # transfers, readiness transitions) to the rate provider; only
            # re-priced transfers whose rate changed get re-timed
            self._calendar.flush(self.now)

            self.now = max(self._next_horizon(), self.now)
            self.stats.steps += 1
            if self._trace is not None:
                self._trace.emit(TraceRecord(self.now, "step", "engine",
                                             {"step": self.stats.steps}))
                if (self._metrics is not None and self._sample_every
                        and self.stats.steps % self._sample_every == 0):
                    self._trace.emit(self._metrics.sample_record(self.now))
            self._complete_due_events()

        self.stats.calendar = self._calendar.stats.snapshot()
        report = SimulationReport(
            application_name=self.application_name,
            model_name=self.model_name,
            placement_policy=self.placement.policy,
            num_tasks=self.num_tasks,
            records=self.records,
            finish_time_per_task={task.rank: task.finish_time for task in self.tasks},
        )
        return report
