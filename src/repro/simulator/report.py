"""Simulation reports.

The paper's simulator outputs, "for each task, the duration of all events and
total time, the kind of conflicts, the average penalty, the size of
communication etc." (§VI.A).  :class:`SimulationReport` carries exactly those
quantities; :mod:`repro.analysis` turns pairs of reports (predicted vs
measured) into the error tables of Figures 7, 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .._numpy import np

from ..units import format_size, format_time

__all__ = ["EventRecord", "SimulationReport"]


@dataclass(frozen=True)
class EventRecord:
    """Timing record of one executed event."""

    rank: int
    index: int
    kind: str                      # "compute" | "send" | "recv" | "barrier"
    start: float
    end: float
    size: int = 0
    peer: Optional[int] = None     # destination (send) or source (recv) rank
    label: str = ""
    #: observed penalty of a send (duration / contention-free duration)
    penalty: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationReport:
    """Full outcome of one simulation run."""

    application_name: str
    model_name: str
    placement_policy: str
    num_tasks: int
    records: List[EventRecord] = field(default_factory=list)
    finish_time_per_task: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------ aggregates
    @property
    def total_time(self) -> float:
        """Completion time of the whole application (makespan)."""
        return max(self.finish_time_per_task.values(), default=0.0)

    def records_for(self, rank: int, kind: str | None = None) -> List[EventRecord]:
        return [
            r for r in self.records
            if r.rank == rank and (kind is None or r.kind == kind)
        ]

    def task_time(self, rank: int) -> float:
        return self.finish_time_per_task.get(rank, 0.0)

    def communication_time(self, rank: int) -> float:
        """Sum of the durations of the send events of ``rank``.

        This matches the paper's measurement methodology: "Measured time is
        done at the source task, starting before the MPI send and ending when
        the MPI send method terminates."  A rank with no send records (or a
        rank outside the task range) contributes ``0.0`` — a float, so the
        no-communication case aggregates like every other.
        """
        return sum((r.duration for r in self.records_for(rank, "send")), 0.0)

    def receive_time(self, rank: int) -> float:
        return sum((r.duration for r in self.records_for(rank, "recv")), 0.0)

    def compute_time(self, rank: int) -> float:
        return sum((r.duration for r in self.records_for(rank, "compute")), 0.0)

    def communication_times(self) -> Dict[int, float]:
        """Per-task sum of send durations (the S_m / S_p quantities of §VI.B)."""
        return {rank: self.communication_time(rank) for rank in range(self.num_tasks)}

    def bytes_sent(self, rank: int) -> int:
        return sum(r.size for r in self.records_for(rank, "send"))

    @property
    def send_records(self) -> List[EventRecord]:
        return [r for r in self.records if r.kind == "send"]

    @property
    def average_penalty(self) -> float:
        """Mean observed penalty over all sends (1.0 means no contention)."""
        penalties = [r.penalty for r in self.send_records if r.penalty is not None]
        if not penalties:
            return 1.0
        return float(np.mean(penalties))

    @property
    def max_penalty(self) -> float:
        penalties = [r.penalty for r in self.send_records if r.penalty is not None]
        return float(max(penalties)) if penalties else 1.0

    def penalty_histogram(self, bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram (counts, bin edges) of observed send penalties.

        With no penalised sends (empty report, compute-only workload, or a
        trace-backed record set without penalties) the counts are all zero
        over a nominal ``[1.0, 2.0]`` range — ``bins + 1`` edges either way,
        so downstream plotting never special-cases the empty report.
        ``bins`` must be at least 1 (validated here so the empty path and
        the numpy path reject it identically).
        """
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        penalties = np.array(
            [r.penalty for r in self.send_records if r.penalty is not None], dtype=float
        )
        if penalties.size == 0:
            return np.zeros(bins, dtype=int), np.linspace(1.0, 2.0, bins + 1)
        return np.histogram(penalties, bins=bins)

    # ------------------------------------------------------------- reporting
    def per_task_table(self) -> str:
        """Paper-style per-task summary table."""
        header = (
            f"{'task':>5s} {'total [s]':>12s} {'comm [s]':>12s} {'recv [s]':>12s} "
            f"{'compute [s]':>12s} {'sent':>10s}"
        )
        lines = [header, "-" * len(header)]
        for rank in range(self.num_tasks):
            lines.append(
                f"{rank:>5d} {self.task_time(rank):>12.4f} "
                f"{self.communication_time(rank):>12.4f} "
                f"{self.receive_time(rank):>12.4f} "
                f"{self.compute_time(rank):>12.4f} "
                f"{format_size(self.bytes_sent(rank)):>10s}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"SimulationReport[{self.application_name} | {self.model_name} | "
            f"{self.placement_policy}]: {self.num_tasks} tasks, "
            f"total time {format_time(self.total_time)}, "
            f"average penalty {self.average_penalty:.2f}, "
            f"max penalty {self.max_penalty:.2f}"
        )
