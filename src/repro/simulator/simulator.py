"""High-level simulator facade (§VI.A of the paper).

:class:`Simulator` bundles the four inputs of the paper's simulator —
application, cluster definition, task placement and model — and runs the
execution engine in either of two modes:

* **predictive** (:meth:`Simulator.predictive`): in-flight transfers progress
  at the rate dictated by a contention model (Gigabit Ethernet model, Myrinet
  model, InfiniBand extension, or a baseline);
* **emulated** (:meth:`Simulator.emulated`): transfers progress at the rate
  of the calibrated cluster emulator — this is the reproduction's stand-in
  for running the application on the real cluster and produces the
  "measured" times of Figures 7, 8 and 9.

Both providers implement the delta rate contract of
:mod:`repro.network.fluid`, so the engine below runs its event-calendar
loop: per step, only the transfers re-priced by the step's flow delta are
re-timed.  :attr:`Simulator.last_engine_stats` exposes the loop/calendar
work counters of the most recent run (steps, rate updates, re-timings) —
the quantity ``benchmarks/bench_scale_engine.py`` tracks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..cluster.placement import Placement, make_placement
from ..cluster.spec import ClusterSpec, get_cluster
from ..core.penalty import ContentionModel
from ..core.registry import model_for_network
from ..exceptions import SimulationError
from ..network.allocator import EmulatorRateProvider
from ..network.technologies import NetworkTechnology
from ..network.topology import CrossbarTopology
from ..trace.sinks import TraceSink
from .application import Application
from .engine import EngineConfig, EngineStatsSnapshot, ExecutionEngine
from .providers import ModelRateProvider
from .report import SimulationReport

__all__ = ["Simulator"]


class Simulator:
    """Runs an application on a cluster under a rate provider.

    ``trace`` attaches a :class:`repro.trace.TraceSink` to the engine
    (equivalent to building the :class:`EngineConfig` with ``trace=``); the
    same structured record stream covers the calendar, the engine loop and
    any configured injectors.
    """

    def __init__(
        self,
        cluster: ClusterSpec | str,
        rate_provider,
        technology: Optional[NetworkTechnology] = None,
        config: EngineConfig | None = None,
        mode: str = "custom",
        model_name: str = "custom",
        trace: Optional[TraceSink] = None,
    ) -> None:
        if isinstance(cluster, str):
            cluster = get_cluster(cluster)
        self.cluster = cluster
        self.technology = technology or cluster.technology
        self.rate_provider = rate_provider
        self.config = config or EngineConfig()
        if trace is not None:
            self.config = replace(self.config, trace=trace)
        self.mode = mode
        self.model_name = model_name
        #: loop/calendar work counters of the most recent run — a typed
        #: :class:`~repro.simulator.engine.EngineStatsSnapshot` (dict-style
        #: access still works)
        self.last_engine_stats: Optional[EngineStatsSnapshot] = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def predictive(
        cls,
        cluster: ClusterSpec | str,
        model: ContentionModel | str | None = None,
        config: EngineConfig | None = None,
        trace: Optional[TraceSink] = None,
    ) -> "Simulator":
        """Simulator driven by a contention model (the paper's predictor).

        When ``model`` is omitted, the model matching the cluster's
        interconnect is used (Ethernet model on the GigE cluster, Myrinet
        model on the Myrinet cluster, InfiniBand extension on the IB one).
        """
        if isinstance(cluster, str):
            cluster = get_cluster(cluster)
        if model is None:
            model = model_for_network(cluster.technology.name)
        elif isinstance(model, str):
            model = model_for_network(model)
        provider = ModelRateProvider(model, cluster.technology)
        return cls(cluster, provider, technology=cluster.technology, config=config,
                   mode="predictive", model_name=model.name, trace=trace)

    @classmethod
    def emulated(
        cls,
        cluster: ClusterSpec | str,
        config: EngineConfig | None = None,
        trace: Optional[TraceSink] = None,
    ) -> "Simulator":
        """Simulator driven by the calibrated cluster emulator ("measured" side)."""
        if isinstance(cluster, str):
            cluster = get_cluster(cluster)
        topology = CrossbarTopology(num_hosts=cluster.num_nodes, technology=cluster.technology)
        provider = EmulatorRateProvider(cluster.technology, topology)
        return cls(cluster, provider, technology=cluster.technology, config=config,
                   mode="emulated", model_name=f"emulator[{cluster.technology.name}]",
                   trace=trace)

    # ------------------------------------------------------------------- runs
    def _resolve_placement(
        self, application: Application, placement: Placement | str, seed: int = 0
    ) -> Placement:
        if isinstance(placement, Placement):
            if placement.num_tasks != application.num_tasks:
                raise SimulationError(
                    f"placement has {placement.num_tasks} tasks but the application "
                    f"has {application.num_tasks}"
                )
            return placement
        return make_placement(placement, self.cluster, application.num_tasks, seed=seed)

    def run(
        self,
        application: Application,
        placement: Placement | str = "RRP",
        seed: int = 0,
        validate: bool = True,
    ) -> SimulationReport:
        """Simulate ``application`` and return the per-task / per-event report.

        ``placement`` is either a prebuilt :class:`Placement` or a policy name
        (``"RRN"``, ``"RRP"``, ``"random"``).
        """
        if validate:
            application.validate()
        resolved = self._resolve_placement(application, placement, seed=seed)
        engine = ExecutionEngine(
            programs=application,
            placement=resolved,
            rate_provider=self.rate_provider,
            technology=self.technology,
            config=self.config,
            application_name=application.name,
            model_name=self.model_name,
        )
        report = engine.run()
        self.last_engine_stats = engine.stats.freeze()
        return report

    def run_programs(
        self,
        programs: Sequence,
        placement: Placement | str = "RRP",
        num_tasks: Optional[int] = None,
        seed: int = 0,
        name: str = "mpi-program",
    ) -> SimulationReport:
        """Run generator-based rank programs (see :mod:`repro.mpi.runtime`)."""
        count = num_tasks if num_tasks is not None else len(programs)
        if isinstance(placement, Placement):
            resolved = placement
        else:
            resolved = make_placement(placement, self.cluster, count, seed=seed)
        engine = ExecutionEngine(
            programs=programs,
            placement=resolved,
            rate_provider=self.rate_provider,
            technology=self.technology,
            config=self.config,
            application_name=name,
            model_name=self.model_name,
        )
        report = engine.run()
        self.last_engine_stats = engine.stats.freeze()
        return report
