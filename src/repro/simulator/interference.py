"""Interference injection: background traffic, link degradation, node slowdown.

The paper's contention models price *foreground* MPI traffic on an otherwise
idle fabric.  Real clusters are messier: the workload of interest shares the
interconnect with other jobs and occasionally runs over degraded links or
throttled nodes.  This module turns the event-calendar execution machinery
into a loaded-fabric simulator: **injectors** are small stateful event
sources whose entries ride the same timeline heap as compute completions and
transfer readiness, and whose effects travel through the exact same
:class:`~repro.network.fluid.TransferCalendar` / ``RateProvider.update``
delta path as foreground transfers.

Injector contract
-----------------
An injector exposes three methods (duck-typed; :class:`Injector` is the
reference base class)::

    reset()                      # fresh run: rewind all mutable state
    next_event(now) -> float|None  # absolute time of the next event, or None
    apply(state)                 # fire the events due at state.now

``next_event`` is called once after ``reset()`` (with ``now = 0.0``) and once
after every ``apply``; returning ``None`` retires the injector for the rest
of the run.  A **neutral configuration** (zero background intensity, scaling
factor 1.0, empty window) must return ``None`` from the very first
``next_event`` call so that a disabled injector provably never perturbs the
simulation — with no events fired the engine and the fluid simulator are
bit-for-bit identical to an injector-free run (property-tested in
``tests/property/test_interference_properties.py``).

``apply`` receives an **injection state** — the surface the simulation loops
expose (``_EngineInjectionState`` in :mod:`repro.simulator.engine`,
``_FluidInjectionState`` in :mod:`repro.network.fluid`):

* ``state.now`` — the simulation clock;
* ``state.hosts`` — the host/node universe of the run;
* ``state.start_flow(src, dst, size, owner)`` / ``state.end_flow(tid)`` —
  activate/deactivate a background transfer.  Background flows enter the
  calendar like foreground ones (they contend in the rate provider — model
  or emulator) but are excluded from task completion, message matching and
  the returned results;
* ``state.add_rate_scale(fn, info=None)`` / ``state.remove_rate_scale(handle)``
  — install a per-transfer rate multiplier (capacity degradation).  Every
  change must be followed by ``state.reprice()``.  ``info`` is the scale's
  replay payload (``{"factor": ..., "hosts": ...}``): the injection state
  records it in the trace (``inject.rate_scale_on``) so
  :class:`repro.trace.TraceReplayInjector` can rebuild the window via
  :func:`make_rate_scale`;
* ``state.add_compute_scale(fn, info=None)`` /
  ``state.remove_compute_scale(handle)`` — install a per-node compute-rate
  multiplier, applied to compute events that *start* while the scale is
  active (a no-op in the pure fluid simulator); ``info`` as above, rebuilt
  via :func:`make_compute_scale`;
* ``state.reprice()`` — force a full re-rate of the in-flight set through
  ``provider.reset()`` + re-add, for effects the delta contract cannot
  express.

Determinism: injectors draw randomness exclusively from their own seeded
:class:`random.Random`, so a (workload, placement, injector-config, seed)
tuple always reproduces the same loaded run.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, List, Optional, Protocol, Sequence, Tuple

from ..exceptions import SimulationError
from ..network.fluid import Transfer

__all__ = [
    "InjectionState",
    "Injector",
    "BackgroundTrafficInjector",
    "LinkDegradationInjector",
    "NodeSlowdownInjector",
    "build_injectors",
    "compose_rate_scales",
    "make_rate_scale",
    "make_compute_scale",
]


def make_rate_scale(
    factor: float, hosts: Optional[Sequence[int]] = None
) -> Callable[[Transfer], float]:
    """Per-transfer rate multiplier: ``factor`` on transfers touching ``hosts``.

    ``hosts=None`` scales every transfer.  This is the closure shape
    :class:`LinkDegradationInjector` installs; it is shared with
    :class:`repro.trace.TraceReplayInjector`, which rebuilds recorded
    windows from their ``{factor, hosts}`` trace payload.
    """
    factor = float(factor)
    if hosts is None:
        def scale(transfer: Transfer) -> float:
            return factor
    else:
        degraded = frozenset(int(h) for h in hosts)

        def scale(transfer: Transfer) -> float:
            if transfer.src in degraded or transfer.dst in degraded:
                return factor
            return 1.0

    return scale


def make_compute_scale(
    factor: float, hosts: Optional[Sequence[int]] = None
) -> Callable[[int], float]:
    """Per-node compute-rate multiplier (the :class:`NodeSlowdownInjector`
    closure shape, shared with trace replay)."""
    factor = float(factor)
    if hosts is None:
        def scale(node: int) -> float:
            return factor
    else:
        affected = frozenset(int(h) for h in hosts)

        def scale(node: int) -> float:
            return factor if node in affected else 1.0

    return scale


def compose_rate_scales(
    scales: Sequence[Callable[[Transfer], float]],
) -> Optional[Callable[[Transfer], float]]:
    """Fold per-transfer rate multipliers into one (``None`` when empty).

    The shared composition rule of every injection surface (engine and
    fluid): no scales means the bit-exact unscaled path, one scale is
    installed as-is, several multiply.
    """
    if not scales:
        return None
    if len(scales) == 1:
        return scales[0]
    frozen = tuple(scales)

    def product(transfer: Transfer) -> float:
        factor = 1.0
        for scale in frozen:
            factor *= scale(transfer)
        return factor

    return product


class InjectionState(Protocol):
    """What a simulation loop exposes to :meth:`Injector.apply` (see module doc)."""

    now: float
    hosts: Tuple[int, ...]

    def start_flow(self, src: int, dst: int, size: float,
                   owner: str = "background") -> Hashable: ...  # pragma: no cover

    def end_flow(self, tid: Hashable) -> None: ...  # pragma: no cover

    def add_rate_scale(
        self, scale: Callable[[Transfer], float], info: Optional[dict] = None
    ) -> Optional[int]: ...  # pragma: no cover

    def remove_rate_scale(self, handle: Optional[int]) -> None: ...  # pragma: no cover

    def add_compute_scale(
        self, scale: Callable[[int], float], info: Optional[dict] = None
    ) -> Optional[int]: ...  # pragma: no cover

    def remove_compute_scale(self, handle: Optional[int]) -> None: ...  # pragma: no cover

    def reprice(self) -> None: ...  # pragma: no cover


class Injector:
    """Base class with the shared window plumbing.

    Parameters
    ----------
    name:
        Label used in background-flow ids, diagnostics and reports.
    start, until:
        Active window ``[start, until)`` in simulated seconds; ``until=None``
        keeps the injector active for the whole run.
    """

    def __init__(self, name: str, start: float = 0.0,
                 until: Optional[float] = None) -> None:
        if start < 0:
            raise SimulationError(f"injector {name!r}: start must be >= 0")
        if until is not None and until <= start:
            raise SimulationError(f"injector {name!r}: empty window [{start}, {until})")
        self.name = name
        self.start = float(start)
        self.until = None if until is None else float(until)

    # -------------------------------------------------------------- contract
    def reset(self) -> None:  # pragma: no cover - trivial default
        """Rewind mutable state for a fresh run."""

    def next_event(self, now: float) -> Optional[float]:
        raise NotImplementedError

    def apply(self, state: InjectionState) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------- reporting
    def describe(self) -> dict:
        """Loggable summary of the configuration."""
        data = {"injector": type(self).__name__, "name": self.name,
                "start": self.start}
        if self.until is not None:
            data["until"] = self.until
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v!r}" for k, v in self.describe().items()
                           if k != "injector")
        return f"{type(self).__name__}({fields})"


def _pick_pair(rng: random.Random, hosts: Sequence[int]) -> Optional[Tuple[int, int]]:
    if len(set(hosts)) < 2:
        return None
    src = rng.choice(hosts)
    dst = rng.choice(hosts)
    while dst == src:
        dst = rng.choice(hosts)
    return src, dst


class BackgroundTrafficInjector(Injector):
    """Seeded stochastic background flows between host pairs.

    Flow arrivals form a Poisson process of ``rate`` flows per second inside
    the active window; each flow carries ``size`` bytes (jittered by
    ``size_jitter``) between a random ordered pair of distinct hosts and
    completes through the calendar like any transfer — so while it lives it
    contends with the foreground traffic in whichever rate provider the run
    uses.  ``pairs`` pins the endpoint universe to explicit ``(src, dst)``
    pairs; ``hosts`` restricts it to a host subset; by default the run's
    host universe is used.

    A zero ``rate``/``size``/``max_flows`` is the **neutral configuration**:
    ``next_event`` returns ``None`` immediately and the run is bit-exact
    with an injector-free one.
    """

    def __init__(
        self,
        rate: float,
        size: float,
        seed: int = 0,
        name: str = "background",
        start: float = 0.0,
        until: Optional[float] = None,
        max_flows: Optional[int] = None,
        size_jitter: float = 0.0,
        hosts: Optional[Sequence[int]] = None,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        super().__init__(name, start=start, until=until)
        if rate < 0:
            raise SimulationError(f"injector {name!r}: negative arrival rate")
        if size < 0:
            raise SimulationError(f"injector {name!r}: negative flow size")
        if not 0.0 <= size_jitter < 1.0:
            raise SimulationError(f"injector {name!r}: size_jitter must be in [0, 1)")
        self.rate = float(rate)
        self.size = float(size)
        self.seed = int(seed)
        self.max_flows = None if max_flows is None else int(max_flows)
        self.size_jitter = float(size_jitter)
        self.hosts = None if hosts is None else tuple(int(h) for h in hosts)
        self.pairs = None if pairs is None else tuple(
            (int(s), int(d)) for s, d in pairs
        )
        if self.pairs is not None:
            for src, dst in self.pairs:
                if src == dst:
                    raise SimulationError(
                        f"injector {name!r}: background pair {src}->{dst} is a loop"
                    )
        self.reset()

    @property
    def is_neutral(self) -> bool:
        return (self.rate <= 0.0 or self.size <= 0.0 or self.max_flows == 0
                or self.pairs == ())

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._started = 0
        self._next: Optional[float] = None
        if not self.is_neutral:
            self._next = self.start + self._rng.expovariate(self.rate)

    def next_event(self, now: float) -> Optional[float]:
        if self._next is None:
            return None
        if self.until is not None and self._next >= self.until:
            self._next = None
            return None
        return self._next

    def apply(self, state: InjectionState) -> None:
        if self.pairs is not None:
            pair: Optional[Tuple[int, int]] = self._rng.choice(self.pairs)
        else:
            universe = self.hosts if self.hosts is not None else state.hosts
            pair = _pick_pair(self._rng, universe)
        if pair is None:
            self._next = None  # fewer than two hosts: no flow can ever start
            return
        size = self.size
        if self.size_jitter > 0.0:
            size *= 1.0 + self.size_jitter * (2.0 * self._rng.random() - 1.0)
        state.start_flow(pair[0], pair[1], size, owner=self.name)
        self._started += 1
        if self.max_flows is not None and self._started >= self.max_flows:
            self._next = None
            return
        self._next = state.now + self._rng.expovariate(self.rate)

    def describe(self) -> dict:
        data = super().describe()
        data.update({"rate": self.rate, "size": self.size, "seed": self.seed})
        if self.max_flows is not None:
            data["max_flows"] = self.max_flows
        if self.size_jitter:
            data["size_jitter"] = self.size_jitter
        if self.hosts is not None:
            data["hosts"] = list(self.hosts)
        if self.pairs is not None:
            data["pairs"] = [list(p) for p in self.pairs]
        return data


class _WindowInjector(Injector):
    """Shared on/off plumbing of the window-scoped injectors.

    Two events per run: the window opens at ``start`` (install the effect)
    and closes at ``until`` (remove it); ``until=None`` leaves the effect
    installed until the run ends.  A ``factor`` of exactly 1.0 is the
    neutral configuration — no events are ever scheduled.
    """

    def __init__(self, name: str, factor: float, start: float = 0.0,
                 until: Optional[float] = None,
                 hosts: Optional[Sequence[int]] = None) -> None:
        super().__init__(name, start=start, until=until)
        if factor <= 0.0:
            raise SimulationError(
                f"injector {name!r}: scaling factor must be positive"
            )
        self.factor = float(factor)
        self.hosts = None if hosts is None else frozenset(int(h) for h in hosts)
        self.reset()

    @property
    def is_neutral(self) -> bool:
        return self.factor == 1.0 or self.hosts == frozenset()

    def reset(self) -> None:
        self._handle: Optional[int] = None
        self._phase = 0  # 0 = before the window, 1 = inside, 2 = done

    def next_event(self, now: float) -> Optional[float]:
        if self.is_neutral:
            return None
        if self._phase == 0:
            return self.start
        if self._phase == 1 and self.until is not None:
            return self.until
        return None

    def apply(self, state: InjectionState) -> None:
        if self._phase == 0:
            self._handle = self._install(state)
            self._phase = 1
        elif self._phase == 1:
            self._remove(state, self._handle)
            self._handle = None
            self._phase = 2

    def _applies_to(self, host: int) -> bool:
        return self.hosts is None or host in self.hosts

    def _install(self, state: InjectionState) -> Optional[int]:
        raise NotImplementedError

    def _remove(self, state: InjectionState, handle: Optional[int]) -> None:
        raise NotImplementedError

    def describe(self) -> dict:
        data = super().describe()
        data["factor"] = self.factor
        if self.hosts is not None:
            data["hosts"] = sorted(self.hosts)
        return data


class LinkDegradationInjector(_WindowInjector):
    """Time-windowed capacity scaling of a host set's links.

    While the window is open, every transfer touching a degraded host (or
    every transfer, when ``hosts`` is ``None``) progresses at ``factor`` ×
    its provider-allocated rate — the fluid equivalent of a link
    renegotiating to a lower speed or a flapping port dropping frames.  Both
    window edges force a full :meth:`~repro.network.fluid.TransferCalendar.
    reprice` (provider ``reset()`` + re-add), because a capacity change
    re-rates incumbents without any membership delta.
    """

    def __init__(self, factor: float, start: float = 0.0,
                 until: Optional[float] = None,
                 hosts: Optional[Sequence[int]] = None,
                 name: str = "link-degradation") -> None:
        super().__init__(name, factor, start=start, until=until, hosts=hosts)

    def _install(self, state: InjectionState) -> Optional[int]:
        hosts = None if self.hosts is None else sorted(self.hosts)
        handle = state.add_rate_scale(
            make_rate_scale(self.factor, hosts),
            info={"factor": self.factor, "hosts": hosts},
        )
        state.reprice()
        return handle

    def _remove(self, state: InjectionState, handle: Optional[int]) -> None:
        state.remove_rate_scale(handle)
        state.reprice()


class NodeSlowdownInjector(_WindowInjector):
    """Time-windowed compute-rate scaling of a node set.

    While the window is open, compute events *starting* on an affected node
    run at ``factor`` × their nominal rate (``factor=0.5`` doubles their
    duration) — thermal throttling, a co-scheduled CPU hog, a failing fan.
    Transfers are untouched, so no reprice is needed; the pure fluid
    simulator ignores this injector (nothing computes there).
    """

    def __init__(self, factor: float, start: float = 0.0,
                 until: Optional[float] = None,
                 hosts: Optional[Sequence[int]] = None,
                 name: str = "node-slowdown") -> None:
        super().__init__(name, factor, start=start, until=until, hosts=hosts)

    def _install(self, state: InjectionState) -> Optional[int]:
        hosts = None if self.hosts is None else sorted(self.hosts)
        return state.add_compute_scale(
            make_compute_scale(self.factor, hosts),
            info={"factor": self.factor, "hosts": hosts},
        )

    def _remove(self, state: InjectionState, handle: Optional[int]) -> None:
        state.remove_compute_scale(handle)


def build_injectors(
    background: Optional[dict] = None,
    link_degradation: Optional[dict] = None,
    node_slowdown: Optional[dict] = None,
    seed: Optional[int] = None,
) -> Tuple[Injector, ...]:
    """Assemble injectors from plain keyword dicts (campaign/CLI backend).

    Neutral or missing sections produce no injector at all, so a "clean"
    configuration yields an empty tuple and the caller can skip the
    injection machinery entirely.  ``seed`` offsets the background
    injector's own seed so campaign scenario seeds decorrelate the
    interference across repetitions.
    """
    injectors: List[Injector] = []
    if background:
        params = dict(background)
        if seed is not None:
            params["seed"] = int(params.get("seed", 0)) + int(seed)
        injector = BackgroundTrafficInjector(**params)
        if not injector.is_neutral:
            injectors.append(injector)
    if link_degradation:
        degradation = LinkDegradationInjector(**dict(link_degradation))
        if not degradation.is_neutral:
            injectors.append(degradation)
    if node_slowdown:
        slowdown = NodeSlowdownInjector(**dict(node_slowdown))
        if not slowdown.is_neutral:
            injectors.append(slowdown)
    return tuple(injectors)
