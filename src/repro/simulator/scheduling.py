"""Task scheduling policies (thin facade over :mod:`repro.cluster.placement`).

The paper names its placement policies RRN, RRP and Random (§VI.D); they are
implemented in the cluster subpackage and re-exported here so that the
simulator-facing code can import everything scheduling-related from one
place.
"""

from __future__ import annotations

from ..cluster.placement import (
    PLACEMENT_POLICIES,
    Placement,
    make_placement,
    random_placement,
    round_robin_per_node,
    round_robin_per_processor,
    user_defined_placement,
)

__all__ = [
    "Placement",
    "round_robin_per_node",
    "round_robin_per_processor",
    "random_placement",
    "user_defined_placement",
    "make_placement",
    "PLACEMENT_POLICIES",
    "PAPER_POLICIES",
]

#: the three policies evaluated in §VI.D of the paper
PAPER_POLICIES = ("RRN", "RRP", "random")
