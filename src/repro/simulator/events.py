"""Application events.

The paper's simulator (§VI.A) represents an application as, for every MPI
task, a *sequence of events*: compute events (a duration of local
computation) and communication events (source task, destination task,
message size).  This module defines those events plus the two control events
needed to reproduce the paper's measurement methodology (the synchronisation
barrier of §IV.B) and blocking receives.

Events are deliberately tiny immutable dataclasses; the execution semantics
live in :mod:`repro.simulator.engine`.

Matching semantics: a send and a receive match when they agree on the
``(source rank, destination rank, tag)`` channel, where a receive may use
:data:`ANY_SOURCE` to accept any sender.  Among several candidates the
engine always picks the *oldest posted* one — MPI's non-overtaking rule —
and a wildcard receive competes with specific ones in that same posted
order (the engine's ``(src, dst, tag)``-keyed match indices preserve this
exactly; see ``_MatchQueue``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..exceptions import TraceError

__all__ = [
    "ANY_SOURCE",
    "ComputeEvent",
    "SendEvent",
    "RecvEvent",
    "BarrierEvent",
    "Event",
    "validate_event",
]

#: wildcard source rank for receive events (MPI_ANY_SOURCE)
ANY_SOURCE = -1


@dataclass(frozen=True)
class ComputeEvent:
    """Local computation.

    Either ``duration`` (seconds) or ``flops`` (floating point operations,
    converted by the engine using the cluster's per-core peak and an
    efficiency factor) must be provided.
    """

    duration: Optional[float] = None
    flops: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration is None and self.flops is None:
            raise TraceError("ComputeEvent needs a duration or a flops count")
        if self.duration is not None and self.duration < 0:
            raise TraceError(f"negative compute duration {self.duration}")
        if self.flops is not None and self.flops < 0:
            raise TraceError(f"negative flops count {self.flops}")


@dataclass(frozen=True)
class SendEvent:
    """Blocking send (MPI_Send) of ``size`` bytes to rank ``dst``."""

    dst: int
    size: int
    tag: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.dst < 0:
            raise TraceError(f"invalid destination rank {self.dst}")
        if self.size < 0:
            raise TraceError(f"negative message size {self.size}")


@dataclass(frozen=True)
class RecvEvent:
    """Blocking receive (MPI_Recv) from rank ``src`` (or :data:`ANY_SOURCE`)."""

    src: int = ANY_SOURCE
    size: Optional[int] = None
    tag: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.src < ANY_SOURCE:
            raise TraceError(f"invalid source rank {self.src}")
        if self.size is not None and self.size < 0:
            raise TraceError(f"negative message size {self.size}")

    @property
    def is_any_source(self) -> bool:
        """True for wildcard (``MPI_ANY_SOURCE``) receives."""
        return self.src == ANY_SOURCE


@dataclass(frozen=True)
class BarrierEvent:
    """Synchronisation barrier across all tasks of the application."""

    label: str = ""


Event = Union[ComputeEvent, SendEvent, RecvEvent, BarrierEvent]


def validate_event(event: Event, num_tasks: int, rank: int) -> None:
    """Check an event against the application size; raises :class:`TraceError`."""
    if isinstance(event, SendEvent):
        if event.dst >= num_tasks:
            raise TraceError(
                f"rank {rank} sends to rank {event.dst} but the application has "
                f"only {num_tasks} tasks"
            )
        if event.dst == rank:
            raise TraceError(f"rank {rank} sends to itself")
    elif isinstance(event, RecvEvent):
        if not event.is_any_source and event.src >= num_tasks:
            raise TraceError(
                f"rank {rank} receives from rank {event.src} but the application "
                f"has only {num_tasks} tasks"
            )
        if event.src == rank:
            raise TraceError(f"rank {rank} receives from itself")
    elif isinstance(event, (ComputeEvent, BarrierEvent)):
        return
    else:  # pragma: no cover - defensive
        raise TraceError(f"unknown event type {type(event).__name__}")
