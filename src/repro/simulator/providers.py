"""Rate providers for the execution engine.

The execution engine (:mod:`repro.simulator.engine`) advances in-flight
transfers using instantaneous rates supplied by a *rate provider*.  Two
providers exist:

* :class:`ModelRateProvider` — the **predicted** side: it maintains the
  node-level communication graph of the transfers currently in flight,
  queries a contention model (§V) for their penalties and converts each
  penalty into a rate (``single_stream_bandwidth / penalty``).  Intra-node
  transfers use the memory path.
* :class:`~repro.network.allocator.EmulatorRateProvider` — the **measured**
  side (calibrated fluid emulator), re-exported here for symmetry.

Both implement the delta contract of :mod:`repro.network.fluid`:
``update(added, removed)`` applies a flow delta and returns the rates of
exactly the transfers that were re-priced, so the event-calendar loops only
re-time what actually changed.  The historical full-set ``rates(active)``
call is kept as a compatibility shim built on ``update`` — it diffs the
requested set against the tracked one, applies the delta, and returns the
stored rate of every requested transfer.

By default the model side is *incremental*: deltas dirty only the conflict
components they touch, and repeated contention situations are served from a
memoized snapshot cache (:mod:`repro.core.incremental`).  Pass
``incremental=False`` to force the historical rebuild-everything behaviour —
the two are bit-exact, which ``tests/property/test_incremental_properties.py``
asserts over random arrival/departure sequences, and the delta API is
bit-exact with cold full-set evaluation, which
``tests/property/test_delta_contract.py`` asserts.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence

from .._numpy import np
from ..core.graph import Communication, CommunicationGraph
from ..core.incremental import EngineStats, IncrementalPenaltyEngine, PenaltyCache
from ..core.penalty import ContentionModel
from ..exceptions import SimulationError
from ..network.allocator import EmulatorRateProvider
from ..network.fluid import Transfer
from ..network.technologies import NetworkTechnology, get_technology

__all__ = ["ModelRateProvider", "EmulatorRateProvider"]


class ModelRateProvider:
    """Turn a contention model into an instantaneous rate allocator.

    Parameters
    ----------
    model:
        The contention model pricing the in-flight communication graph.
    technology:
        Network technology (or its name) supplying the single-stream and
        memory-path bandwidths.
    incremental:
        When True (default), re-price only the conflict components dirtied
        by transfer arrivals/departures and memoize component evaluations
        by canonical snapshot; ``update`` then reports exactly the dirtied
        membership.  When False, rebuild the graph and re-evaluate the
        whole model on every delta (the pre-incremental behaviour, kept for
        verification and benchmarking; every active transfer is then
        re-priced — and reported — on each call).
    cache:
        Optional shared :class:`~repro.core.incremental.PenaltyCache`; lets
        several providers (e.g. one per simulated run, or every scenario of
        a :class:`~repro.campaign.runner.CampaignRunner`) reuse each other's
        memoized contention situations.
    map_fn:
        Optional ``map``-compatible callable handed to the incremental
        engine; cache-miss component evaluations of one delta are fanned
        out through it (bit-exact with serial evaluation).
    vectorized:
        Passed to the incremental engine: when True (default), cache-miss
        components of one delta are priced through the model's numpy batch
        path (:meth:`~repro.core.penalty.ContentionModel.penalties_batch`)
        instead of a Python loop per component.  Bit-exact with the scalar
        path.  Ignored in full-recompute mode, which keeps the historical
        scalar whole-graph evaluation.
    """

    def __init__(
        self,
        model: ContentionModel,
        technology: NetworkTechnology | str,
        incremental: bool = True,
        cache: PenaltyCache | None = None,
        map_fn=None,
        vectorized: bool = True,
    ) -> None:
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.model = model
        self.technology = technology
        self.incremental = bool(incremental)
        self.vectorized = bool(vectorized)
        self._engine: IncrementalPenaltyEngine | None = (
            IncrementalPenaltyEngine(model, cache=cache, map_fn=map_fn,
                                     vectorized=self.vectorized)
            if self.incremental else None
        )
        # in full-recompute mode the stats only count communication
        # evaluations, so both modes report the same work metric
        self._full_stats = EngineStats()
        # delta-contract state: the tracked active set and its current rates
        self._active: Dict[Hashable, Transfer] = {}
        self._tid_of: Dict[str, Hashable] = {}
        self._rates: Dict[Hashable, float] = {}
        self._full_penalties: Dict[str, float] = {}
        #: slot handles of the tracked set (full-recompute slot tier only;
        #: the incremental engine stores handles itself, keyed by name)
        self._slot_of: Dict[Hashable, int] = {}

    @property
    def stats(self) -> EngineStats:
        """Work counters (model evaluations, cache traffic) of this provider."""
        if self._engine is not None:
            return self._engine.stats
        return self._full_stats

    def register_metrics(self, registry, name: str = "pricing") -> None:
        """Join a :class:`repro.obs.MetricsRegistry`.

        Registers the engine work counters as a live source under ``name``
        and (in incremental mode) installs the ``pricing.dirty_s`` phase
        timer around dirty-component evaluation.  Pass ``None`` to
        uninstall the timer.
        """
        if registry is None:
            if self._engine is not None:
                self._engine.set_metrics(None)
            return
        registry.register_source(name, lambda: self.stats.snapshot())
        if self._engine is not None:
            self._engine.set_metrics(registry)
            if self._engine.cache is not None:
                registry.register_source("penalty_cache",
                                         self._engine.cache.stats)

    @staticmethod
    def _comm_size(transfer: Transfer) -> int:
        # round *up*: a sub-byte fractional remainder must not truncate to a
        # size-0 communication mid-simulation
        return int(math.ceil(transfer.size))

    def _communication(self, transfer: Transfer) -> Communication:
        return Communication(
            name=str(transfer.transfer_id),
            src=transfer.src,
            dst=transfer.dst,
            size=self._comm_size(transfer),
        )

    def _graph_from_transfers(self, active: Sequence[Transfer]) -> CommunicationGraph:
        graph = CommunicationGraph(name="in-flight")
        for transfer in active:
            graph.add(self._communication(transfer))
        return graph

    def _rate_of(self, transfer: Transfer, penalty: float) -> float:
        penalty = max(1.0, penalty)
        if transfer.is_intra_node:
            return self.technology.memory_bandwidth / penalty
        return self.technology.single_stream_bandwidth / penalty

    # ---------------------------------------------------------------- deltas
    def reset(self) -> None:
        """Forget the tracked active set (memoized situations survive)."""
        if self._engine is not None:
            self._engine.reset()
        self._active.clear()
        self._tid_of.clear()
        self._rates.clear()
        self._full_penalties.clear()
        self._slot_of.clear()

    def _apply_delta(
        self, added: Sequence[Transfer], removed: Sequence[Hashable],
        added_slots: Sequence[int] | None = None,
    ) -> None:
        """Validate the whole delta, then apply it to the tracked set.

        ``added_slots`` (slot tier only) is parallel to ``added``; each
        arrival's ``(tid, slot, is_intra)`` handle is registered with the
        incremental engine so re-priced sets come back slot-aligned.
        """
        departing = set()
        for tid in removed:
            if tid not in self._active or tid in departing:
                raise SimulationError(f"unknown transfer {tid!r} removed from rate set")
            departing.add(tid)
        remaining = set(self._active) - departing
        for transfer in added:
            tid = transfer.transfer_id
            if tid in remaining:
                raise SimulationError(f"transfer {tid!r} added to the rate set twice")
            remaining.add(tid)
        for tid in removed:
            transfer = self._active.pop(tid)
            del self._tid_of[str(tid)]
            self._rates.pop(tid, None)
            if self._engine is not None:
                self._engine.remove(str(tid))
        for index, transfer in enumerate(added):
            tid = transfer.transfer_id
            self._active[tid] = transfer
            self._tid_of[str(tid)] = tid
            if self._engine is not None:
                handle = (None if added_slots is None else
                          (tid, added_slots[index], transfer.is_intra_node))
                self._engine.add(self._communication(transfer), handle)

    def update(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ) -> Dict[Hashable, float]:
        """Apply a flow delta; return the rates of the re-priced transfers.

        With the incremental engine the returned mapping covers exactly the
        membership of the conflict components the delta dirtied (plus
        intra-node arrivals); in full-recompute mode every active transfer
        is re-priced and returned.

        The whole delta is validated before any state changes, so a rejected
        call leaves the tracked set untouched and the caller (e.g. a
        :class:`~repro.network.fluid.TransferCalendar` holding its pending
        queues) can retry.
        """
        self._apply_delta(added, removed)

        changed: Dict[Hashable, float] = {}
        if self._engine is not None:
            for name, penalty in self._engine.refresh().items():
                tid = self._tid_of[name]
                changed[tid] = self._rate_of(self._active[tid], penalty)
        elif self._active:
            active = list(self._active.values())
            graph = self._graph_from_transfers(active)
            self._full_stats.events += 1
            self._full_stats.component_evaluations += 1
            self._full_stats.comm_evaluations += len(active)
            self._full_penalties = dict(self.model.penalties(graph))
            for transfer in active:
                penalty = self._full_penalties[str(transfer.transfer_id)]
                changed[transfer.transfer_id] = self._rate_of(transfer, penalty)
        else:
            self._full_penalties = {}
        self._rates.update(changed)
        return changed

    def update_arrays(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ):
        """:meth:`update` with an array payload: ``(tids, rates)``.

        The batched handoff the vectorized
        :class:`~repro.network.fluid.TransferCalendar` probes for: the same
        re-priced set in the same order as :meth:`update` would report
        (downstream seq assignment relies on that), as an id list plus a
        float64 rate array — penalties converted to rates in one vectorized
        dispatch with no intermediate dict.  The tracked ``_rates`` stay
        dict-of-Python-floats either way, so mixing array and dict calls is
        safe.
        """
        if self._engine is None:
            changed = self.update(added, removed)
            rates = np.fromiter(changed.values(), dtype=np.float64,
                                count=len(changed))
            return list(changed.keys()), rates
        self._apply_delta(added, removed)
        names, penalties = self._engine.refresh_arrays()
        tids = [self._tid_of[name] for name in names]
        if not tids:
            return tids, np.empty(0, dtype=np.float64)
        active = self._active
        intra = np.fromiter((active[tid].is_intra_node for tid in tids),
                            dtype=bool, count=len(tids))
        # elementwise max + one division: identical IEEE-754 operations to
        # the scalar _rate_of, so each rate is bit-identical
        penalties = np.maximum(1.0, penalties)
        bandwidth = np.where(intra, self.technology.memory_bandwidth,
                             self.technology.single_stream_bandwidth)
        rates = bandwidth / penalties
        self._rates.update(zip(tids, rates.tolist()))
        return tids, rates

    def update_slots(
        self, added: Sequence[Transfer], added_slots: Sequence[int],
        removed: Sequence[Hashable]
    ):
        """:meth:`update_arrays` with slot handles: ``(tids, slots, rates)``.

        The fastest calendar handoff: the caller passes each arrival's flight
        slot alongside the transfer, the handles ride the incremental
        engine's component bookkeeping, and the re-priced set comes back as
        parallel (tid, slot, rate) sequences — the calendar applies them by
        direct array indexing with zero per-flush hash gathers.  Same
        re-priced membership, same order, bit-identical float64 rates as the
        dict and array tiers.
        """
        if self._engine is None:
            # full-recompute mode: update() validates and re-prices the whole
            # active set; slots are tracked provider-side and gathered once
            changed = self.update(added, removed)
            slot_of = self._slot_of
            for tid in removed:
                slot_of.pop(tid, None)
            for transfer, slot in zip(added, added_slots):
                slot_of[transfer.transfer_id] = slot
            tids = list(changed.keys())
            slots = np.fromiter((slot_of[tid] for tid in tids),
                                dtype=np.intp, count=len(tids))
            rates = np.fromiter(changed.values(), dtype=np.float64,
                                count=len(tids))
            return tids, slots, rates
        self._apply_delta(added, removed, added_slots)
        handles, penalties = self._engine.refresh_handles()
        if not handles:
            return [], np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
        count = len(handles)
        tids = [handle[0] for handle in handles]
        slots = np.fromiter((handle[1] for handle in handles),
                            dtype=np.intp, count=count)
        intra = np.fromiter((handle[2] for handle in handles),
                            dtype=bool, count=count)
        # identical IEEE-754 operations to update_arrays/_rate_of
        penalties = np.maximum(1.0, penalties)
        bandwidth = np.where(intra, self.technology.memory_bandwidth,
                             self.technology.single_stream_bandwidth)
        rates = bandwidth / penalties
        self._rates.update(zip(tids, rates.tolist()))
        return tids, slots, rates

    def _sync(self, active: Sequence[Transfer]) -> None:
        """Diff ``active`` against the tracked set and apply the delta."""
        wanted = {t.transfer_id: t for t in active}
        if len(wanted) != len(active):
            raise SimulationError("duplicate transfer ids in the active set")
        removed: List[Hashable] = [tid for tid in self._active if tid not in wanted]
        added: List[Transfer] = []
        for tid, transfer in wanted.items():
            known = self._active.get(tid)
            if known is None:
                added.append(transfer)
            elif (known.src, known.dst, known.size) != (
                transfer.src, transfer.dst, transfer.size
            ):
                # transfer id re-used with new endpoints/size: departure + arrival
                removed.append(tid)
                added.append(transfer)
        if added or removed:
            self.update(added, removed)

    # -------------------------------------------------------------- interface
    def rates(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Rate (bytes/s) of every active transfer according to the model.

        Compatibility shim over :meth:`update`: the full set is diffed
        against the tracked one, the delta applied, and the stored rates of
        the whole set returned.
        """
        self._sync(active)
        return {t.transfer_id: self._rates[t.transfer_id] for t in active}

    def instantaneous_penalties(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Model penalties of the in-flight transfers (diagnostic helper)."""
        if not active:
            return {}
        self._sync(active)
        if self._engine is not None:
            penalties = self._engine.penalties()
        else:
            penalties = self._full_penalties
        return {t.transfer_id: penalties[str(t.transfer_id)] for t in active}
