"""Rate providers for the execution engine.

The execution engine (:mod:`repro.simulator.engine`) advances in-flight
transfers using instantaneous rates supplied by a *rate provider*.  Two
providers exist:

* :class:`ModelRateProvider` — the **predicted** side: it builds the
  node-level communication graph of the transfers currently in flight,
  queries a contention model (§V) for their penalties and converts each
  penalty into a rate (``single_stream_bandwidth / penalty``).  Intra-node
  transfers use the memory path.
* :class:`~repro.network.allocator.EmulatorRateProvider` — the **measured**
  side (calibrated fluid emulator), re-exported here for symmetry.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

from ..core.graph import CommunicationGraph
from ..core.penalty import ContentionModel
from ..network.allocator import EmulatorRateProvider
from ..network.fluid import Transfer
from ..network.technologies import NetworkTechnology, get_technology

__all__ = ["ModelRateProvider", "EmulatorRateProvider"]


class ModelRateProvider:
    """Turn a contention model into an instantaneous rate allocator."""

    def __init__(
        self,
        model: ContentionModel,
        technology: NetworkTechnology | str,
    ) -> None:
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.model = model
        self.technology = technology

    def _graph_from_transfers(self, active: Sequence[Transfer]) -> CommunicationGraph:
        graph = CommunicationGraph(name="in-flight")
        for transfer in active:
            graph.add_edge(
                transfer.src,
                transfer.dst,
                size=int(transfer.size),
                name=str(transfer.transfer_id),
            )
        return graph

    def rates(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Rate (bytes/s) of every active transfer according to the model."""
        if not active:
            return {}
        graph = self._graph_from_transfers(active)
        penalties = self.model.penalties(graph)
        single = self.technology.single_stream_bandwidth
        memory = self.technology.memory_bandwidth
        rates: Dict[Hashable, float] = {}
        for transfer in active:
            penalty = max(1.0, penalties[str(transfer.transfer_id)])
            if transfer.is_intra_node:
                rates[transfer.transfer_id] = memory / penalty
            else:
                rates[transfer.transfer_id] = single / penalty
        return rates

    def instantaneous_penalties(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Model penalties of the in-flight transfers (diagnostic helper)."""
        if not active:
            return {}
        graph = self._graph_from_transfers(active)
        penalties = self.model.penalties(graph)
        return {t.transfer_id: penalties[str(t.transfer_id)] for t in active}
