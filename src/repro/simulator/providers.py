"""Rate providers for the execution engine.

The execution engine (:mod:`repro.simulator.engine`) advances in-flight
transfers using instantaneous rates supplied by a *rate provider*.  Two
providers exist:

* :class:`ModelRateProvider` — the **predicted** side: it maintains the
  node-level communication graph of the transfers currently in flight,
  queries a contention model (§V) for their penalties and converts each
  penalty into a rate (``single_stream_bandwidth / penalty``).  Intra-node
  transfers use the memory path.
* :class:`~repro.network.allocator.EmulatorRateProvider` — the **measured**
  side (calibrated fluid emulator), re-exported here for symmetry.

By default the model side is *incremental*: successive ``rates`` calls are
diffed against the previous active set, only the dirty conflict components
are re-priced, and repeated contention situations are served from a memoized
snapshot cache (:mod:`repro.core.incremental`).  Pass ``incremental=False``
to force the historical rebuild-everything behaviour — the two are
bit-exact, which ``tests/property/test_incremental_properties.py`` asserts
over random arrival/departure sequences.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping, Sequence

from ..core.graph import Communication, CommunicationGraph
from ..core.incremental import EngineStats, IncrementalPenaltyEngine, PenaltyCache
from ..core.penalty import ContentionModel
from ..network.allocator import EmulatorRateProvider
from ..network.fluid import Transfer
from ..network.technologies import NetworkTechnology, get_technology

__all__ = ["ModelRateProvider", "EmulatorRateProvider"]


class ModelRateProvider:
    """Turn a contention model into an instantaneous rate allocator.

    Parameters
    ----------
    model:
        The contention model pricing the in-flight communication graph.
    technology:
        Network technology (or its name) supplying the single-stream and
        memory-path bandwidths.
    incremental:
        When True (default), re-price only the conflict components dirtied
        by transfer arrivals/departures between successive ``rates`` calls
        and memoize component evaluations by canonical snapshot.  When
        False, rebuild the graph and re-evaluate the whole model on every
        call (the pre-incremental behaviour, kept for verification and
        benchmarking).
    cache:
        Optional shared :class:`~repro.core.incremental.PenaltyCache`; lets
        several providers (e.g. one per simulated run, or every scenario of
        a :class:`~repro.campaign.runner.CampaignRunner`) reuse each other's
        memoized contention situations.
    map_fn:
        Optional ``map``-compatible callable handed to the incremental
        engine; cache-miss component evaluations of one ``rates`` call are
        fanned out through it (bit-exact with serial evaluation).
    """

    def __init__(
        self,
        model: ContentionModel,
        technology: NetworkTechnology | str,
        incremental: bool = True,
        cache: PenaltyCache | None = None,
        map_fn=None,
    ) -> None:
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.model = model
        self.technology = technology
        self.incremental = bool(incremental)
        self._engine: IncrementalPenaltyEngine | None = (
            IncrementalPenaltyEngine(model, cache=cache, map_fn=map_fn)
            if self.incremental else None
        )
        # in full-recompute mode the stats only count communication
        # evaluations, so both modes report the same work metric
        self._full_stats = EngineStats()

    @property
    def stats(self) -> EngineStats:
        """Work counters (model evaluations, cache traffic) of this provider."""
        if self._engine is not None:
            return self._engine.stats
        return self._full_stats

    @staticmethod
    def _comm_size(transfer: Transfer) -> int:
        # round *up*: a sub-byte fractional remainder must not truncate to a
        # size-0 communication mid-simulation
        return int(math.ceil(transfer.size))

    def _communication(self, transfer: Transfer) -> Communication:
        return Communication(
            name=str(transfer.transfer_id),
            src=transfer.src,
            dst=transfer.dst,
            size=self._comm_size(transfer),
        )

    def _graph_from_transfers(self, active: Sequence[Transfer]) -> CommunicationGraph:
        graph = CommunicationGraph(name="in-flight")
        for transfer in active:
            graph.add(self._communication(transfer))
        return graph

    def _penalties_by_name(self, active: Sequence[Transfer]) -> Mapping[str, float]:
        if self._engine is not None:
            return self._engine.update(self._communication(t) for t in active)
        graph = self._graph_from_transfers(active)
        self._full_stats.events += 1
        self._full_stats.component_evaluations += 1
        self._full_stats.comm_evaluations += len(active)
        return self.model.penalties(graph)

    def rates(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Rate (bytes/s) of every active transfer according to the model."""
        if not active:
            return {}
        penalties = self._penalties_by_name(active)
        single = self.technology.single_stream_bandwidth
        memory = self.technology.memory_bandwidth
        rates: Dict[Hashable, float] = {}
        for transfer in active:
            penalty = max(1.0, penalties[str(transfer.transfer_id)])
            if transfer.is_intra_node:
                rates[transfer.transfer_id] = memory / penalty
            else:
                rates[transfer.transfer_id] = single / penalty
        return rates

    def instantaneous_penalties(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Model penalties of the in-flight transfers (diagnostic helper)."""
        if not active:
            return {}
        penalties = self._penalties_by_name(active)
        return {t.transfer_id: penalties[str(t.transfer_id)] for t in active}
