"""Guarded numpy import.

numpy is a hard dependency of the package (declared in ``pyproject.toml``):
the vectorized pricing core (:mod:`repro.core.ethernet_model`,
:mod:`repro.network.sharing`), the analysis layer and the workload
generators are all built on it.  Importing through this module turns the
bare ``ModuleNotFoundError`` into an actionable message instead of a
confusing mid-simulation traceback.

Usage::

    from .._numpy import np
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised only without numpy
    raise ImportError(
        "repro requires numpy (it is declared in pyproject.toml): the "
        "vectorized pricing core, the max-min sharing solver and the "
        "analysis layer are built on it. Install it with `pip install numpy` "
        "or install the package with `pip install .`."
    ) from exc

__all__ = ["np"]
