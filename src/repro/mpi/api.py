"""Simulated MPI programming interface.

The paper's methodology is defined in terms of MPI primitives: blocking
``MPI_Send``, receives with ``MPI_ANY_SOURCE`` and synchronisation barriers
(§IV.B).  This module lets users write *rank programs* as Python generator
functions that yield MPI operations; the runtime
(:mod:`repro.mpi.runtime`) executes them on the simulation engine, so the
same program can be timed under any contention model or under the cluster
emulator.

Example
-------

.. code-block:: python

    from repro.mpi import MpiRuntime, Rank

    def program(rank: Rank, size: int):
        if rank.id == 0:
            yield rank.send(1, 20_000_000)
        else:
            result = yield rank.recv(source=0)
            # ``result["source"]`` and ``result["duration"]`` are available

    runtime = MpiRuntime.predictive("myrinet")
    report = runtime.run(program, num_tasks=2)

The operations yielded are the same event dataclasses the trace-based
simulator consumes, so there is a single execution semantics for both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import TraceError
from ..simulator.events import (
    ANY_SOURCE,
    BarrierEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)

__all__ = ["ANY_SOURCE", "Rank"]


@dataclass(frozen=True)
class Rank:
    """Handle passed to every rank program: its id, the world size and op builders."""

    id: int
    world_size: int

    def __post_init__(self) -> None:
        if not (0 <= self.id < self.world_size):
            raise TraceError(f"rank {self.id} outside world of size {self.world_size}")

    # --------------------------------------------------------------- builders
    def send(self, dest: int, size: int, tag: int = 0, label: str = "") -> SendEvent:
        """Blocking standard send of ``size`` bytes to ``dest``."""
        if dest == self.id:
            raise TraceError(f"rank {self.id} cannot send to itself")
        return SendEvent(dst=dest, size=size, tag=tag, label=label)

    def recv(self, source: int = ANY_SOURCE, size: Optional[int] = None, tag: int = 0,
             label: str = "") -> RecvEvent:
        """Blocking receive from ``source`` (default: any source)."""
        if source == self.id:
            raise TraceError(f"rank {self.id} cannot receive from itself")
        return RecvEvent(src=source, size=size, tag=tag, label=label)

    def barrier(self, label: str = "") -> BarrierEvent:
        """Global synchronisation barrier."""
        return BarrierEvent(label=label)

    def compute(self, seconds: Optional[float] = None, flops: Optional[float] = None,
                label: str = "") -> ComputeEvent:
        """Local computation, given in seconds or floating point operations."""
        return ComputeEvent(duration=seconds, flops=flops, label=label)

    # ------------------------------------------------------------- utilities
    @property
    def is_root(self) -> bool:
        return self.id == 0

    def next_rank(self) -> int:
        """Rank ``(id + 1) mod world_size`` — the paper's ring neighbour."""
        return (self.id + 1) % self.world_size

    def previous_rank(self) -> int:
        return (self.id - 1) % self.world_size
