"""Simulated MPI runtime.

:class:`MpiRuntime` executes rank programs (generator functions receiving a
:class:`~repro.mpi.api.Rank` handle) on the simulation engine, in either the
predictive mode (contention model) or the emulated mode (calibrated cluster
emulator).  It is the reproduction's stand-in for the MPICH / MPI-MX /
MPIBULL2 stacks of the paper: the models only need MPI's *timing semantics*,
which the engine provides.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Sequence

from ..cluster.spec import ClusterSpec
from ..core.penalty import ContentionModel
from ..exceptions import SimulationError
from ..simulator.engine import EngineConfig
from ..simulator.report import SimulationReport
from ..simulator.simulator import Simulator
from .api import Rank

__all__ = ["MpiRuntime", "ring_program", "fanout_program"]

#: a rank program: callable(rank, *args) -> generator of MPI operations
RankProgram = Callable[..., Generator]


class MpiRuntime:
    """Run generator-based MPI programs under a simulator."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    # ------------------------------------------------------------ constructors
    @classmethod
    def predictive(
        cls,
        cluster: ClusterSpec | str,
        model: ContentionModel | str | None = None,
        config: EngineConfig | None = None,
    ) -> "MpiRuntime":
        """Runtime whose communications are timed by a contention model."""
        return cls(Simulator.predictive(cluster, model=model, config=config))

    @classmethod
    def emulated(
        cls, cluster: ClusterSpec | str, config: EngineConfig | None = None
    ) -> "MpiRuntime":
        """Runtime whose communications are timed by the cluster emulator."""
        return cls(Simulator.emulated(cluster, config=config))

    # ------------------------------------------------------------------- runs
    def run(
        self,
        program: RankProgram,
        num_tasks: int,
        placement: str = "RRP",
        seed: int = 0,
        name: str = "",
        args: Sequence = (),
    ) -> SimulationReport:
        """Instantiate ``program`` for every rank and simulate the execution.

        ``program`` is called as ``program(Rank(id, num_tasks), *args)`` and
        must return a generator yielding MPI operations.
        """
        if num_tasks < 1:
            raise SimulationError(f"need at least one task, got {num_tasks}")
        programs: List[Generator] = []
        for rank_id in range(num_tasks):
            generator = program(Rank(rank_id, num_tasks), *args)
            if not hasattr(generator, "__next__"):
                raise SimulationError(
                    "rank programs must be generator functions (use 'yield')"
                )
            programs.append(generator)
        return self.simulator.run_programs(
            programs,
            placement=placement,
            num_tasks=num_tasks,
            seed=seed,
            name=name or getattr(program, "__name__", "mpi-program"),
        )


# ---------------------------------------------------------------------------
# Ready-made programs used by the examples and tests
def ring_program(rank: Rank, size: int, rounds: int = 1):
    """Each task sends to task ``n+1`` and receives from task ``n-1`` (§VI.D).

    Even ranks send first then receive; odd ranks receive first then send,
    which avoids the rendezvous deadlock of an all-send ring.
    """
    for _ in range(rounds):
        if rank.world_size == 1:
            return
        if rank.id % 2 == 0:
            yield rank.send(rank.next_rank(), size)
            yield rank.recv(source=rank.previous_rank())
        else:
            yield rank.recv(source=rank.previous_rank())
            yield rank.send(rank.next_rank(), size)
        yield rank.barrier()


def fanout_program(rank: Rank, size: int, fanout: int):
    """``fanout`` sender ranks transmit simultaneously to ``fanout`` receiver ranks.

    Ranks ``0 .. fanout-1`` each send ``size`` bytes to rank ``fanout + i``;
    the receivers post matching receives.  When the senders are placed on the
    same SMP node (e.g. with
    :func:`repro.cluster.placement.user_defined_placement`), their transfers
    overlap on that node's NIC and reproduce the outgoing-conflict schemes of
    Figure 2 at the MPI level — this is how the paper's own benchmark creates
    concurrency, since a blocking ``MPI_Send`` from a single task cannot
    overlap with another send of the same task.
    """
    if rank.world_size < 2 * fanout:
        raise SimulationError("fanout_program needs a world of at least 2*fanout tasks")
    if rank.id < fanout:
        yield rank.send(fanout + rank.id, size)
    elif rank.id < 2 * fanout:
        yield rank.recv(source=rank.id - fanout)
    yield rank.barrier()
