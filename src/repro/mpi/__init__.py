"""Simulated MPI layer: rank programs, operations and the runtime."""

from .api import ANY_SOURCE, Rank
from .runtime import MpiRuntime, fanout_program, ring_program

__all__ = ["ANY_SOURCE", "Rank", "MpiRuntime", "ring_program", "fanout_program"]
