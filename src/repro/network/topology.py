"""Cluster network topologies.

All three clusters of the paper use a fat-tree interconnect (§IV.C).  The
emulator mostly exercises the end-point NICs (the fat trees of the paper are
non-blocking, so switch links never become the bottleneck in its schemes),
but the topology layer is implemented for completeness: it provides the
shared-link resources used by the max-min solver, which enables
oversubscription ablations that the paper's clusters could not run.

Resource identifiers handed to :mod:`repro.network.sharing` are tuples:

* ``("tx", host)`` — transmit port of a host NIC,
* ``("rx", host)`` — receive port of a host NIC,
* ``("mem", host)`` — memory bus used by intra-node copies,
* ``("up", switch)`` / ``("down", switch)`` — aggregated up/down links of an
  edge switch towards the core level (perfect multipath balancing across the
  physical uplinks is assumed, which matches adaptive/dispersive routing on
  Myrinet and standard fat-tree routing on IB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, Hashable, Tuple

from ..exceptions import TopologyError
from .technologies import NetworkTechnology

__all__ = [
    "ResourceKind",
    "Topology",
    "CrossbarTopology",
    "FatTreeTopology",
    "build_topology",
]


class ResourceKind:
    """String constants for the resource-id tuples."""

    TX = "tx"
    RX = "rx"
    MEMORY = "mem"
    UPLINK = "up"
    DOWNLINK = "down"


@dataclass
class Topology:
    """Base class: hosts connected by an abstract non-blocking fabric."""

    num_hosts: int
    technology: NetworkTechnology

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise TopologyError(f"a topology needs at least one host, got {self.num_hosts}")

    # ------------------------------------------------------------------ hosts
    @property
    def hosts(self) -> range:
        return range(self.num_hosts)

    def check_host(self, host: int) -> None:
        if not (0 <= host < self.num_hosts):
            raise TopologyError(f"host {host} outside topology of {self.num_hosts} hosts")

    # -------------------------------------------------------------- resources
    def nic_resources(self, host: int) -> Tuple[Hashable, Hashable]:
        """(TX, RX) resource identifiers of a host NIC."""
        self.check_host(host)
        return (ResourceKind.TX, host), (ResourceKind.RX, host)

    def memory_resource(self, host: int) -> Hashable:
        self.check_host(host)
        return (ResourceKind.MEMORY, host)

    def fabric_route(self, src: int, dst: int) -> Tuple[Hashable, ...]:
        """Shared fabric resources crossed between two hosts (excluding NICs)."""
        self.check_host(src)
        self.check_host(dst)
        return ()

    def capacities(self) -> Dict[Hashable, float]:
        """Capacity of every resource of the topology, in bytes per second."""
        caps: Dict[Hashable, float] = {}
        for host in self.hosts:
            tx, rx = self.nic_resources(host)
            caps[tx] = self.technology.link_bandwidth
            caps[rx] = self.technology.link_bandwidth
            caps[self.memory_resource(host)] = self.technology.memory_bandwidth
        return caps

    def resource_capacity(self, resource: Hashable) -> float:
        """Capacity of one resource identifier, in bytes per second.

        Point lookup equivalent of ``capacities()[resource]`` — lets the
        allocator price a sharing situation touching k resources in O(k)
        instead of materialising the O(num_hosts) full dictionary.
        """
        if isinstance(resource, tuple) and len(resource) == 2:
            kind, owner = resource
            if kind in (ResourceKind.TX, ResourceKind.RX):
                self.check_host(owner)
                return self.technology.link_bandwidth
            if kind == ResourceKind.MEMORY:
                self.check_host(owner)
                return self.technology.memory_bandwidth
        raise TopologyError(f"unknown resource {resource!r}")

    def memo_key(self) -> tuple:
        """Hashable identity of the wiring and its parameters.

        Namespaces shared rate caches: two topologies only exchange memoized
        allocations when their ``memo_key`` is equal.  The generic dataclass
        field walk covers subclasses (e.g. the fat-tree arity parameters)
        automatically.
        """
        values = tuple(
            (field.name, getattr(self, field.name)) for field in fields(self)
        )
        return (type(self).__module__, type(self).__qualname__, values)

    def describe(self) -> str:
        return f"{type(self).__name__}: {self.num_hosts} hosts on {self.technology.name}"


@dataclass
class CrossbarTopology(Topology):
    """Single non-blocking switch: only the NICs can be bottlenecks.

    This matches the behaviour of the paper's (non-oversubscribed) fat trees
    for the scheme sizes it measures and is the default fabric of the
    emulator.
    """

    def fabric_route(self, src: int, dst: int) -> Tuple[Hashable, ...]:
        self.check_host(src)
        self.check_host(dst)
        return ()


@dataclass
class FatTreeTopology(Topology):
    """Two-level fat tree with configurable oversubscription.

    ``hosts_per_edge`` hosts attach to each edge switch; each edge switch has
    ``uplinks_per_edge`` links towards the core.  The aggregated uplink (and
    downlink) of an edge switch is modelled as a single resource of capacity
    ``uplinks_per_edge × link_bandwidth`` — i.e. perfect balancing across the
    physical uplinks, the best case for the fabric.
    """

    hosts_per_edge: int = 8
    uplinks_per_edge: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.hosts_per_edge < 1:
            raise TopologyError(f"hosts_per_edge must be >= 1, got {self.hosts_per_edge}")
        if self.uplinks_per_edge < 1:
            raise TopologyError(f"uplinks_per_edge must be >= 1, got {self.uplinks_per_edge}")

    @property
    def num_edge_switches(self) -> int:
        return math.ceil(self.num_hosts / self.hosts_per_edge)

    @property
    def oversubscription(self) -> float:
        """Host bandwidth divided by uplink bandwidth of an edge switch (1 = non blocking)."""
        return self.hosts_per_edge / self.uplinks_per_edge

    def edge_switch_of(self, host: int) -> int:
        self.check_host(host)
        return host // self.hosts_per_edge

    def fabric_route(self, src: int, dst: int) -> Tuple[Hashable, ...]:
        self.check_host(src)
        self.check_host(dst)
        if src == dst:
            return ()
        edge_src = self.edge_switch_of(src)
        edge_dst = self.edge_switch_of(dst)
        if edge_src == edge_dst:
            return ()
        return (
            (ResourceKind.UPLINK, edge_src),
            (ResourceKind.DOWNLINK, edge_dst),
        )

    def capacities(self) -> Dict[Hashable, float]:
        caps = super().capacities()
        uplink_capacity = self.uplinks_per_edge * self.technology.link_bandwidth
        for switch in range(self.num_edge_switches):
            caps[(ResourceKind.UPLINK, switch)] = uplink_capacity
            caps[(ResourceKind.DOWNLINK, switch)] = uplink_capacity
        return caps

    def resource_capacity(self, resource: Hashable) -> float:
        if isinstance(resource, tuple) and len(resource) == 2:
            kind, owner = resource
            if kind in (ResourceKind.UPLINK, ResourceKind.DOWNLINK):
                if not (0 <= owner < self.num_edge_switches):
                    raise TopologyError(f"unknown resource {resource!r}")
                return self.uplinks_per_edge * self.technology.link_bandwidth
        return super().resource_capacity(resource)

    def describe(self) -> str:
        return (
            f"FatTreeTopology: {self.num_hosts} hosts, {self.num_edge_switches} edge switches, "
            f"{self.hosts_per_edge} hosts/switch, {self.uplinks_per_edge} uplinks/switch "
            f"(oversubscription {self.oversubscription:.2f}:1) on {self.technology.name}"
        )


def build_topology(
    technology: NetworkTechnology,
    num_hosts: int,
    kind: str = "crossbar",
    **kwargs,
) -> Topology:
    """Factory: build a topology by name (``"crossbar"`` or ``"fat-tree"``)."""
    key = kind.lower()
    if key in ("crossbar", "star", "non-blocking"):
        return CrossbarTopology(num_hosts=num_hosts, technology=technology)
    if key in ("fat-tree", "fattree", "fat_tree"):
        return FatTreeTopology(num_hosts=num_hosts, technology=technology, **kwargs)
    raise TopologyError(f"unknown topology kind {kind!r}")
