"""Cluster network emulator — the "measured" substrate of the reproduction.

The paper measures penalties on three physical clusters; this subpackage
replaces them with an emulator whose sharing behaviour is calibrated against
the penalties published in Figure 2 (fluid flow simulation + technology
specific rate allocation), complemented by packet-level models of the Stop &
Go and credit-based flow controls for mechanism-level studies.
"""

from .allocator import EmulatorRateProvider
from .emulator import ClusterEmulator
from .fluid import (
    CalendarStats,
    DeltaRateProvider,
    FluidTransferSimulator,
    RateProvider,
    Transfer,
    TransferCalendar,
    TransferResult,
)
from .packet import CreditBasedNetwork, PacketLevelNetwork, StopAndGoNetwork
from .sharing import FlowSpec, max_min_allocation, weighted_max_min_allocation
from .technologies import (
    GIGABIT_ETHERNET,
    INFINIBAND_INFINIHOST3,
    MYRINET_2000,
    TECHNOLOGIES,
    NetworkTechnology,
    SharingBehaviour,
    get_technology,
)
from .topology import CrossbarTopology, FatTreeTopology, ResourceKind, Topology, build_topology

__all__ = [
    "ClusterEmulator",
    "EmulatorRateProvider",
    "CalendarStats",
    "DeltaRateProvider",
    "FluidTransferSimulator",
    "RateProvider",
    "Transfer",
    "TransferCalendar",
    "TransferResult",
    "PacketLevelNetwork",
    "StopAndGoNetwork",
    "CreditBasedNetwork",
    "FlowSpec",
    "max_min_allocation",
    "weighted_max_min_allocation",
    "NetworkTechnology",
    "SharingBehaviour",
    "GIGABIT_ETHERNET",
    "MYRINET_2000",
    "INFINIBAND_INFINIHOST3",
    "TECHNOLOGIES",
    "get_technology",
    "Topology",
    "CrossbarTopology",
    "FatTreeTopology",
    "ResourceKind",
    "build_topology",
]
