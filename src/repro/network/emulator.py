"""Cluster emulator facade.

:class:`ClusterEmulator` plays the role of the paper's physical clusters: it
"measures" the duration and the penalty of every communication of a scheme.
It combines

* a :class:`~repro.network.technologies.NetworkTechnology` (link speed,
  latency, calibrated sharing behaviour),
* a :class:`~repro.network.topology.Topology` (NIC and fabric capacities),
* the :class:`~repro.network.allocator.EmulatorRateProvider`, and
* the :class:`~repro.network.fluid.FluidTransferSimulator`,

and exposes the same quantities the paper's measurement software reports
(§IV.B): the referential time of a 20 MB transfer, per-communication times
and penalties ``P_i = T_i / T_ref``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.graph import CommunicationGraph
from ..exceptions import SimulationError
from ..units import MB
from .allocator import EmulatorRateProvider
from .fluid import FluidTransferSimulator, Transfer
from .technologies import NetworkTechnology, get_technology
from .topology import CrossbarTopology, Topology

__all__ = ["ClusterEmulator"]


class ClusterEmulator:
    """Emulated cluster that measures communication schemes.

    Parameters
    ----------
    technology:
        A :class:`NetworkTechnology` instance or a name/alias
        (``"ethernet"``, ``"myrinet"``, ``"infiniband"``).
    topology:
        Optional explicit topology; defaults to a non-blocking crossbar with
        ``num_hosts`` hosts (the paper's fat trees are non-blocking at the
        measured scales).
    num_hosts:
        Number of hosts of the default crossbar topology.
    """

    def __init__(
        self,
        technology: NetworkTechnology | str,
        topology: Optional[Topology] = None,
        num_hosts: int = 64,
    ) -> None:
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.technology = technology
        self.topology = topology or CrossbarTopology(num_hosts=num_hosts, technology=technology)
        self.rate_provider = EmulatorRateProvider(technology, self.topology)
        self.simulator = FluidTransferSimulator(self.rate_provider, latency=technology.latency)

    # ----------------------------------------------------------------- basics
    def reference_time(self, size: int = 20 * MB) -> float:
        """Duration of one isolated ``size``-byte transfer (the paper's T_ref)."""
        return self.technology.reference_time(size)

    def _transfers(self, graph: CommunicationGraph) -> Sequence[Transfer]:
        hosts = self.topology.num_hosts
        for comm in graph:
            if comm.src >= hosts or comm.dst >= hosts:
                raise SimulationError(
                    f"communication {comm.name!r} references host beyond the "
                    f"{hosts}-host topology; pass a larger topology"
                )
        return [
            Transfer(
                transfer_id=comm.name,
                src=comm.src,
                dst=comm.dst,
                size=comm.size + self.technology.mpi_envelope,
            )
            for comm in graph
        ]

    # ------------------------------------------------------------ measurement
    def measure_times(self, graph: CommunicationGraph) -> Dict[str, float]:
        """Measured duration (seconds) of every communication of ``graph``.

        All communications start simultaneously, as enforced by the paper's
        synchronisation barrier before each scheme (§IV.B).
        """
        results = self.simulator.run(self._transfers(graph))
        return {str(name): result.duration for name, result in results.items()}

    def measure_penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        """Measured penalties ``P_i = T_i / T_ref`` for every communication."""
        times = self.measure_times(graph)
        penalties: Dict[str, float] = {}
        for comm in graph:
            reference = self.reference_time(comm.size)
            penalties[comm.name] = times[comm.name] / reference
        return penalties

    def measure(self, graph: CommunicationGraph) -> Dict[str, Dict[str, float]]:
        """Times and penalties in one pass (``{"times": ..., "penalties": ...}``)."""
        times = self.measure_times(graph)
        penalties = {
            comm.name: times[comm.name] / self.reference_time(comm.size) for comm in graph
        }
        return {"times": times, "penalties": penalties}

    # --------------------------------------------------------------- reporting
    def describe(self) -> str:
        tech = self.technology
        return (
            f"ClusterEmulator[{tech.name}]: link {tech.link_bandwidth / 1e6:.0f} MB/s, "
            f"single stream {tech.single_stream_bandwidth / 1e6:.0f} MB/s, "
            f"latency {tech.latency * 1e6:.1f} us, flow control {tech.flow_control}, "
            f"{self.topology.num_hosts} hosts"
        )
