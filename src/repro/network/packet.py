"""Packet-level models of the flow-control mechanisms (§III of the paper).

The calibrated fluid emulator (:mod:`repro.network.allocator`) is what the
benchmark harness uses as the "measured" substrate, because its sharing
behaviour is fitted to the penalties the paper publishes.  This module
provides **mechanism-level** discrete-event models of the two flow controls
the paper describes in detail, so that the qualitative behaviours the models
capture can be demonstrated from first principles rather than from the
calibration:

* :class:`StopAndGoNetwork` — Myrinet 2000 cut-through routing with Stop & Go
  flow control: a NIC transmits one packet at a time; if the destination NIC
  is busy receiving another packet the sender is **blocked** (Stop) and holds
  its transmit port until the receiver frees (Go).  Concurrent sends from one
  node therefore serialise almost perfectly, and a busy receiver back-
  pressures its senders — exactly the structure the state-set model encodes.
* :class:`CreditBasedNetwork` — InfiniBand: the receiver grants buffer
  credits; a sender only transmits when it holds a credit, otherwise it moves
  on to another of its flows (no head-of-line blocking across destinations).

Both simulators share the same event-driven core and return per-transfer
completion times; they are exercised by the unit tests and the
``examples/flow_control_mechanisms.py`` example.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Sequence, Tuple

from ..exceptions import SimulationError
from ..units import KiB
from .fluid import Transfer, TransferResult
from .technologies import NetworkTechnology

__all__ = ["PacketLevelNetwork", "StopAndGoNetwork", "CreditBasedNetwork"]


@dataclass
class _FlowState:
    transfer: Transfer
    packets_left: int
    started: bool = False
    finish_time: float = 0.0

    @property
    def done(self) -> bool:
        return self.packets_left <= 0


class PacketLevelNetwork:
    """Shared machinery of the packet-level flow-control simulators."""

    def __init__(self, technology: NetworkTechnology, packet_size: int = 32 * KiB) -> None:
        if packet_size <= 0:
            raise SimulationError(f"packet size must be positive, got {packet_size}")
        self.technology = technology
        self.packet_size = int(packet_size)

    # ------------------------------------------------------------------ setup
    def _packet_count(self, transfer: Transfer) -> int:
        size = transfer.size + self.technology.mpi_envelope
        return max(1, -(-int(size) // self.packet_size))

    def _packet_time(self) -> float:
        return self.packet_size / self.technology.link_bandwidth

    def _prepare(self, transfers: Sequence[Transfer]) -> Dict[Hashable, _FlowState]:
        ids = [t.transfer_id for t in transfers]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate transfer ids in packet simulation")
        flows: Dict[Hashable, _FlowState] = {}
        for transfer in transfers:
            if transfer.is_intra_node:
                raise SimulationError(
                    "packet-level simulators model the NIC; intra-node transfers "
                    "must be handled by the memory path"
                )
            flows[transfer.transfer_id] = _FlowState(transfer, self._packet_count(transfer))
        return flows

    def simulate(self, transfers: Sequence[Transfer]) -> Dict[Hashable, TransferResult]:
        raise NotImplementedError

    # ------------------------------------------------------------ conveniences
    def durations(self, transfers: Sequence[Transfer]) -> Dict[Hashable, float]:
        return {tid: r.duration for tid, r in self.simulate(transfers).items()}

    def penalties(self, transfers: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Duration of each transfer divided by its isolated duration."""
        durations = self.durations(transfers)
        penalties = {}
        for transfer in transfers:
            alone = self.durations([transfer])[transfer.transfer_id]
            penalties[transfer.transfer_id] = durations[transfer.transfer_id] / alone
        return penalties


class StopAndGoNetwork(PacketLevelNetwork):
    """Myrinet-style cut-through network with Stop & Go flow control."""

    def simulate(self, transfers: Sequence[Transfer]) -> Dict[Hashable, TransferResult]:
        flows = self._prepare(transfers)
        ptime = self._packet_time()
        latency = self.technology.latency

        # per-source round-robin order of flows
        by_source: Dict[int, Deque[Hashable]] = {}
        for tid, state in flows.items():
            by_source.setdefault(state.transfer.src, deque()).append(tid)

        rx_free: Dict[int, float] = {}
        results: Dict[Hashable, TransferResult] = {}

        # event queue of (time, seq, source) "transmit port free" events
        counter = itertools.count()
        events: List[Tuple[float, int, int]] = []
        for source in by_source:
            start = min(flows[tid].transfer.start_time for tid in by_source[source])
            heapq.heappush(events, (start + latency, next(counter), source))

        guard = 0
        total_packets = sum(state.packets_left for state in flows.values())
        max_events = 4 * total_packets + 4 * len(flows) + 8

        while events:
            guard += 1
            if guard > max_events:
                raise SimulationError("Stop & Go simulation exceeded its event budget")
            now, _, source = heapq.heappop(events)
            queue = by_source[source]

            # drop finished flows from the head of the round-robin queue
            while queue and flows[queue[0]].done:
                queue.popleft()
            if not queue:
                continue

            # pick the next flow of this source whose start time has arrived
            eligible = None
            for _ in range(len(queue)):
                tid = queue[0]
                if flows[tid].transfer.start_time + latency <= now + 1e-15:
                    eligible = tid
                    break
                queue.rotate(-1)
            if eligible is None:
                wake = min(flows[t].transfer.start_time for t in queue) + latency
                heapq.heappush(events, (wake, next(counter), source))
                continue

            state = flows[eligible]
            dst = state.transfer.dst
            # Stop & Go: wait (holding the TX port) until the receiver is free
            start = max(now, rx_free.get(dst, 0.0))
            finish = start + ptime
            rx_free[dst] = finish
            state.packets_left -= 1
            state.started = True
            if state.done:
                state.finish_time = finish
                results[eligible] = TransferResult(
                    eligible, state.transfer.start_time, finish
                )
            # round-robin: move this flow to the back of its source queue
            queue.rotate(-1)
            heapq.heappush(events, (finish, next(counter), source))

        missing = [tid for tid, state in flows.items() if not state.done]
        if missing:
            raise SimulationError(f"Stop & Go simulation left transfers unfinished: {missing!r}")
        return results


class CreditBasedNetwork(PacketLevelNetwork):
    """InfiniBand-style credit-based (buffered) flow control."""

    def __init__(
        self,
        technology: NetworkTechnology,
        packet_size: int = 32 * KiB,
        credits_per_destination: int = 8,
    ) -> None:
        super().__init__(technology, packet_size)
        if credits_per_destination < 1:
            raise SimulationError("credits_per_destination must be >= 1")
        self.credits_per_destination = int(credits_per_destination)

    def simulate(self, transfers: Sequence[Transfer]) -> Dict[Hashable, TransferResult]:
        flows = self._prepare(transfers)
        ptime = self._packet_time()
        latency = self.technology.latency

        by_source: Dict[int, Deque[Hashable]] = {}
        destinations = set()
        links = set()
        for tid, state in flows.items():
            by_source.setdefault(state.transfer.src, deque()).append(tid)
            destinations.add(state.transfer.dst)
            links.add((state.transfer.src, state.transfer.dst))

        # InfiniBand credits are granted per link (virtual lane) between a
        # sender and a receiver buffer, so they are tracked per (src, dst).
        credits: Dict[Tuple[int, int], int] = {
            link: self.credits_per_destination for link in links
        }
        rx_drain_free: Dict[int, float] = {dst: 0.0 for dst in destinations}
        results: Dict[Hashable, TransferResult] = {}

        counter = itertools.count()
        # events: ("tx", source) transmit port free; ("credit", (src, dst)) one credit returned
        events: List[Tuple[float, int, str, object]] = []
        for source in by_source:
            start = min(flows[tid].transfer.start_time for tid in by_source[source])
            heapq.heappush(events, (start + latency, next(counter), "tx", source))

        blocked_sources: Dict[Tuple[int, int], set] = {link: set() for link in links}
        guard = 0
        total_packets = sum(state.packets_left for state in flows.values())
        max_events = 6 * total_packets + 6 * len(flows) + 8

        while events:
            guard += 1
            if guard > max_events:
                raise SimulationError("credit-based simulation exceeded its event budget")
            now, _, kind, ident = heapq.heappop(events)

            if kind == "credit":
                credits[ident] += 1
                for source in sorted(blocked_sources[ident]):
                    heapq.heappush(events, (now, next(counter), "tx", source))
                blocked_sources[ident].clear()
                continue

            source = ident
            queue = by_source[source]
            while queue and flows[queue[0]].done:
                queue.popleft()
            if not queue:
                continue

            # pick the first eligible flow (started and with a credit available)
            chosen = None
            for _ in range(len(queue)):
                tid = queue[0]
                state = flows[tid]
                ready = state.transfer.start_time + latency <= now + 1e-15
                link = (state.transfer.src, state.transfer.dst)
                if ready and credits[link] > 0 and not state.done:
                    chosen = tid
                    break
                queue.rotate(-1)

            if chosen is None:
                # every flow of this source is waiting for credits (or its start
                # time); register against the destinations so a returning credit
                # wakes this source up
                future_starts = []
                for tid in queue:
                    state = flows[tid]
                    if state.transfer.start_time + latency > now + 1e-15:
                        future_starts.append(state.transfer.start_time + latency)
                    else:
                        blocked_sources[(state.transfer.src, state.transfer.dst)].add(source)
                if future_starts:
                    heapq.heappush(events, (min(future_starts), next(counter), "tx", source))
                continue

            state = flows[chosen]
            dst = state.transfer.dst
            credits[(state.transfer.src, dst)] -= 1
            finish = now + ptime
            state.packets_left -= 1
            # the receiver drains buffered packets one at a time at link rate and
            # then returns the credit
            drain_start = max(finish, rx_drain_free[dst])
            drain_finish = drain_start + ptime
            rx_drain_free[dst] = drain_finish
            heapq.heappush(events, (drain_finish, next(counter), "credit", (state.transfer.src, dst)))
            if state.done:
                state.finish_time = drain_finish
                results[chosen] = TransferResult(chosen, state.transfer.start_time, drain_finish)
            queue.rotate(-1)
            heapq.heappush(events, (finish, next(counter), "tx", source))

        missing = [tid for tid, state in flows.items() if not state.done]
        if missing:
            raise SimulationError(f"credit simulation left transfers unfinished: {missing!r}")
        return results
