"""Technology-aware rate allocation — the heart of the cluster emulator.

Given the set of transfers currently in flight, the allocator distributes
instantaneous bandwidth the way the emulated interconnect would:

* every inter-node transfer consumes the TX port of its source NIC, the RX
  port of its destination NIC and the fat-tree links in between;
* every intra-node transfer consumes the memory bus of its host;
* a single transfer cannot exceed the protocol's single-stream bandwidth
  (``single_stream_efficiency × link_bandwidth``);
* income/outgo interference degrades, per the calibrated
  :class:`~repro.network.technologies.SharingBehaviour`:

  - the individual cap of a transfer whose destination node is also
    transmitting (``duplex_flow_slowdown``),
  - the TX capacity of a node receiving at least ``reverse_threshold``
    transfers (``tx_capacity_loss``),
  - the RX capacity of a node receiving at least ``reverse_threshold``
    transfers while transmitting (``rx_capacity_loss``);

* the remaining capacity is shared max-min fair
  (:func:`repro.network.sharing.max_min_allocation`).

With the shipped calibration the allocator reproduces the penalty ladder the
paper measured on its three clusters (Figure 2) to within a few percent; see
``benchmarks/bench_fig2_penalty_ladder.py`` and ``EXPERIMENTS.md``.

Like the model-side provider, the allocator memoizes its max-min solutions
in a :class:`~repro.core.incremental.PenaltyCache` (the same LRU-with-
symmetry-check mechanism the contention models use, namespaced by technology
and topology so a cache may be shared across providers): the rate vector
only depends on the multiset of ``(src, dst)`` endpoint pairs of the active
transfers (sizes and transfer ids never enter the allocation, and
same-endpoint flows receive equal rates in the unique max-min solution), so
repeated sharing situations — ubiquitous in iterative workloads — are
dictionary lookups instead of solver runs.

The provider is **delta-scaled**: the endpoint-pair multiset that keys the
memo is maintained incrementally (a sorted pair list updated by bisection
per arrival/departure, instead of re-sorting the active set on every query),
per-transfer rates are kept in an incrementally-updated map, and the changed
set an ``update(added, removed)`` call reports is derived by value-diffing
the allocation *per endpoint pair* against the previous one — so a memoized
flush costs O(delta + distinct pairs) instead of O(active × log active).
The full-set ``rates(active)`` call is a compatibility shim that diffs the
requested set against the tracked one and applies the delta.

On a cache miss the water-filling is additionally *warm-started*: when
exactly one flow arrived or departed since the previous allocation, only the
coupling component of the changed flow (flows transitively sharing an
endpoint host or a fabric link with it) is re-solved and every other flow
keeps its previous rate.  Max-min allocations decompose exactly over
coupling components — the income/outgo capacity degradations and duplex caps
only couple flows through shared hosts — so the warm-started rates equal a
full re-solve up to floating-point summation order.
"""

from __future__ import annotations

import bisect
from time import perf_counter
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from .._numpy import np
from ..core.incremental import PenaltyCache
from ..exceptions import SimulationError
from .fluid import SlotMap, Transfer
from .sharing import FlowSpec, max_min_allocation, water_fill_arrays
from .technologies import NetworkTechnology
from .topology import CrossbarTopology, Topology

__all__ = ["EmulatorRateProvider"]


class EmulatorRateProvider:
    """Rate provider implementing the calibrated sharing behaviour of a technology.

    Parameters
    ----------
    technology, topology, num_hosts:
        The emulated interconnect and its wiring (crossbar by default).
    cache_size:
        Number of memoized sharing situations in the private cache
        (0 disables memoization).  Ignored when ``cache`` is given — a
        shared cache arrives with its own capacity.  Call
        :meth:`invalidate_cache` after mutating the topology or the
        technology in place.
    cache:
        Optional shared :class:`~repro.core.incremental.PenaltyCache`;
        entries are namespaced by technology and topology, so providers of
        one sweep can pool their memoized allocations.  Takes precedence
        over ``cache_size``.
    warm_start:
        Re-solve only the changed flow's coupling component when exactly one
        flow arrived/departed (see the module docstring); pass ``False`` to
        force a full water-filling on every miss.
    vectorized:
        When True (default), cache-miss situations are priced through the
        array water-filling of :func:`repro.network.sharing.water_fill_arrays`
        over incidence arrays built incrementally from the tracked endpoint
        multiset (per-transfer resource tuples and per-host directional
        counts are maintained by ``_track``/``_untrack``, and the capacity
        vector covers only the resources the active flows reference instead
        of the O(num_hosts) full topology dictionary).  When False, every
        miss goes through the historical scalar :class:`FlowSpec` path.  The
        two are bit-exact — see ``tests/property/test_vectorized_sharing.py``.
    """

    def __init__(self, technology: NetworkTechnology, topology: Topology | None = None,
                 num_hosts: int = 64, cache_size: int = 4096,
                 cache: Optional[PenaltyCache] = None,
                 warm_start: bool = True, vectorized: bool = True) -> None:
        self.technology = technology
        self.topology = topology or CrossbarTopology(num_hosts=num_hosts, technology=technology)
        if self.topology.technology is not technology:
            # keep the two consistent; the topology carries link capacities
            self.topology.technology = technology
        self.cache_size = int(cache_size)
        self._owns_cache = cache is None
        self._rate_cache = cache if cache is not None else PenaltyCache(
            max_entries=max(0, self.cache_size)
        )
        # the epoch scopes this provider's entries; bumping it on
        # invalidation retires them without touching a shared cache
        self._epoch = 0
        self._rebuild_namespace()
        self.cache_hits = 0
        self.cache_misses = 0
        self.warm_start = bool(warm_start)
        self.warm_starts = 0
        self.vectorized = bool(vectorized)
        #: tracked active set, for the delta contract (:meth:`update`)
        self._active: Dict[Hashable, Transfer] = {}
        #: incremental incidence state for the array solver: per transfer the
        #: resource key tuple plus the keys' integer slots, a dense slot map
        #: over every referenced resource (slots are persistent — resources
        #: of departed transfers keep theirs for reuse), the per-slot base
        #: capacity array, and per-host directional counts over the whole
        #: tracked set.  Integer slots give the solver's per-call resource
        #: index int keys instead of tuple keys (cheaper hashing per entry).
        self._resources_of_tid: Dict[
            Hashable, Tuple[Tuple[Hashable, ...], Tuple[int, ...]]
        ] = {}
        self._res_slots = SlotMap()
        self._res_caps = np.zeros(0, dtype=np.float64)
        self._counts: Dict[int, Dict[str, int]] = {}
        #: incremental endpoint multiset: pair per transfer, transfers per
        #: pair, and the sorted pair list that keys the memo (bisect-updated)
        self._pair_of_tid: Dict[Hashable, Tuple[int, int]] = {}
        self._tids_of_pair: Dict[Tuple[int, int], Dict[Hashable, None]] = {}
        self._sorted_pairs: List[Tuple[int, int]] = []
        #: incrementally maintained per-transfer rates and the per-pair
        #: allocation they came from (the value-diff baseline); ``None``
        #: baseline = report every pair on the next allocation
        self._rates_by_tid: Dict[Hashable, float] = {}
        self._last_by_pair: Optional[Dict[Tuple[int, int], float]] = None
        #: True once an allocation exists (warm starts need a predecessor)
        self._primed = False
        #: repro.obs phase timer around the water-fill solve; installed by
        #: register_metrics(), one pointer test per solve when absent
        self._solve_timer = None

    def register_metrics(self, registry, name: str = "emulator") -> None:
        """Join a :class:`repro.obs.MetricsRegistry`.

        Registers the allocation cache / warm-start counters as a live
        source under ``name`` and installs the ``waterfill.solve_s`` phase
        timer around every allocation solve.  Pass ``None`` to uninstall
        the timer (the source stays until re-registered or unregistered).
        """
        if registry is None:
            self._solve_timer = None
            return
        registry.register_source(name, lambda: {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "warm_starts": self.warm_starts,
            "active": len(self._active),
        })
        self._solve_timer = registry.timer("waterfill.solve_s")

    def _rebuild_namespace(self) -> None:
        self._namespace = (
            "emulator-rates", self._epoch, self.technology, self.topology.memo_key()
        )

    def invalidate_cache(self) -> None:
        """Drop memoized allocations (required after in-place reconfiguration).

        A private cache is cleared outright; on a shared cache only this
        provider's entries are retired (by bumping the namespace epoch), so
        other providers pooling the cache keep their valid entries.  The
        warm-start state and the stored rates are dropped either way, so the
        next query re-solves and re-reports everything.
        """
        self._epoch += 1
        self._rebuild_namespace()
        if self._owns_cache:
            self._rate_cache.clear()
        self._rates_by_tid = {}
        self._last_by_pair = None
        self._primed = False
        # the cached routes and capacities mirror the (possibly mutated)
        # topology/technology: rebuild them for the tracked transfers
        self._res_slots.clear()
        self._res_caps = np.zeros(0, dtype=np.float64)
        for tid, transfer in self._active.items():
            resources = self._resources_for(transfer)
            self._resources_of_tid[tid] = (
                resources, tuple(self._resource_slot(r) for r in resources)
            )

    # ---------------------------------------------------------------- helpers
    def _directional_counts(self, active: Sequence[Transfer]) -> Dict[int, Dict[str, int]]:
        """Per-host counts of inter-node transfers leaving (tx) and entering (rx)."""
        counts: Dict[int, Dict[str, int]] = {}
        for transfer in active:
            if transfer.is_intra_node:
                continue
            counts.setdefault(transfer.src, {"tx": 0, "rx": 0})["tx"] += 1
            counts.setdefault(transfer.dst, {"tx": 0, "rx": 0})["rx"] += 1
        return counts

    def _adjusted_capacities(
        self, counts: Mapping[int, Mapping[str, int]]
    ) -> Dict[Hashable, float]:
        """Topology capacities with the income/outgo degradations applied."""
        sharing = self.technology.sharing
        capacities = self.topology.capacities()
        for host, c in counts.items():
            tx_key, rx_key = self.topology.nic_resources(host)
            if c["rx"] >= sharing.reverse_threshold and c["tx"] >= 1:
                capacities[tx_key] *= 1.0 - sharing.tx_capacity_loss
                capacities[rx_key] *= 1.0 - sharing.rx_capacity_loss
        return capacities

    def _flow_specs(
        self,
        active: Sequence[Transfer],
        counts: Mapping[int, Mapping[str, int]],
    ) -> List[FlowSpec]:
        sharing = self.technology.sharing
        single = self.technology.single_stream_bandwidth
        specs: List[FlowSpec] = []
        for transfer in active:
            if transfer.is_intra_node:
                specs.append(
                    FlowSpec(
                        flow_id=transfer.transfer_id,
                        resources=(self.topology.memory_resource(transfer.src),),
                        cap=self.technology.memory_bandwidth,
                    )
                )
                continue
            cap = single
            destination_transmits = counts.get(transfer.dst, {}).get("tx", 0) >= 1
            if destination_transmits:
                cap *= 1.0 - sharing.duplex_flow_slowdown
            tx_key, _ = self.topology.nic_resources(transfer.src)
            _, rx_key = self.topology.nic_resources(transfer.dst)
            resources = (tx_key, rx_key) + tuple(
                self.topology.fabric_route(transfer.src, transfer.dst)
            )
            specs.append(
                FlowSpec(flow_id=transfer.transfer_id, resources=resources, cap=cap)
            )
        return specs

    def _resource_slot(self, resource: Hashable) -> int:
        """Persistent integer slot of a capacity resource (allocated on first
        reference; the base-capacity array grows by doubling alongside)."""
        slots = self._res_slots
        slot = slots.get(resource)
        if slot is None:
            slot = slots.acquire(resource)
            caps = self._res_caps
            if slot >= len(caps):
                grown = np.zeros(max(16, 2 * len(caps), slot + 1),
                                 dtype=np.float64)
                grown[: len(caps)] = caps
                self._res_caps = caps = grown
            caps[slot] = self.topology.resource_capacity(resource)
        return slot

    def _resources_for(self, transfer: Transfer) -> Tuple[Hashable, ...]:
        """Capacity constraints the transfer consumes (cached per transfer)."""
        if transfer.is_intra_node:
            return (self.topology.memory_resource(transfer.src),)
        tx_key, _ = self.topology.nic_resources(transfer.src)
        _, rx_key = self.topology.nic_resources(transfer.dst)
        return (tx_key, rx_key) + tuple(
            self.topology.fabric_route(transfer.src, transfer.dst)
        )

    # -------------------------------------------------------------- interface
    def _situation_key(self) -> Hashable:
        """Memo key of the tracked situation — O(active) tuple copy of the
        incrementally maintained sorted pair list (no re-sort)."""
        return (self._namespace, tuple(self._sorted_pairs))

    def _solve(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        timer = self._solve_timer
        if timer is None:
            return self._solve_impl(active)
        start = perf_counter()
        try:
            return self._solve_impl(active)
        finally:
            timer.observe(perf_counter() - start)

    def _solve_impl(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        if self.vectorized:
            return self._solve_arrays(active)
        counts = self._directional_counts(active)
        capacities = self._adjusted_capacities(counts)
        specs = self._flow_specs(active, counts)
        return max_min_allocation(specs, capacities, vectorized=False)

    def _solve_arrays(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Array water-filling over the incrementally maintained incidence state.

        ``active`` may be the full tracked set or one coupling component (the
        warm-start path): the full-set directional counts agree with the
        component-restricted ones on every host a component flow touches —
        any transfer touching such a host belongs to the component — so the
        duplex caps and capacity degradations below are exactly those the
        scalar path computes, and unreferenced resources never influence the
        water level.  Bit-exact with ``_solve`` under ``vectorized=False``.
        """
        sharing = self.technology.sharing
        single = self.technology.single_stream_bandwidth
        counts = self._counts
        base_caps = self._res_caps
        tids: List[Hashable] = []
        caps: List[float] = []
        ent_flow: List[int] = []
        ent_res: List[int] = []
        res_index: Dict[int, int] = {}
        res_caps: List[float] = []
        for position, transfer in enumerate(active):
            tid = transfer.transfer_id
            tids.append(tid)
            if transfer.is_intra_node:
                cap = self.technology.memory_bandwidth
            else:
                cap = single
                dst_counts = counts.get(transfer.dst)
                if dst_counts is not None and dst_counts["tx"] >= 1:
                    cap *= 1.0 - sharing.duplex_flow_slowdown
            if cap <= 0:
                raise SimulationError(f"flow {tid!r} has non-positive cap {cap}")
            caps.append(cap)
            for slot in self._resources_of_tid[tid][1]:
                index = res_index.get(slot)
                if index is None:
                    index = res_index[slot] = len(res_caps)
                    res_caps.append(float(base_caps[slot]))
                ent_flow.append(position)
                ent_res.append(index)
        # income/outgo degradations on the referenced NIC ports
        slot_of = self._res_slots
        for host, c in counts.items():
            if c["rx"] >= sharing.reverse_threshold and c["tx"] >= 1:
                tx_key, rx_key = self.topology.nic_resources(host)
                slot = slot_of.get(tx_key)
                index = res_index.get(slot) if slot is not None else None
                if index is not None:
                    res_caps[index] *= 1.0 - sharing.tx_capacity_loss
                slot = slot_of.get(rx_key)
                index = res_index.get(slot) if slot is not None else None
                if index is not None:
                    res_caps[index] *= 1.0 - sharing.rx_capacity_loss
        num_flows = len(tids)
        rates = water_fill_arrays(
            np.ones(num_flows, dtype=np.float64),
            np.asarray(caps, dtype=np.float64),
            np.asarray(ent_flow, dtype=np.int64),
            np.asarray(ent_res, dtype=np.int64),
            np.asarray(res_caps, dtype=np.float64),
            max_iterations=num_flows + len(res_caps) + 1,
        )
        return dict(zip(tids, rates.tolist()))

    # ------------------------------------------------------------ warm start
    def _coupling_keys(self, src: int, dst: int) -> Tuple[Hashable, ...]:
        """Opaque keys through which a flow couples with other flows.

        Two flows interact (directly or through the income/outgo capacity
        degradations) only when they share one of these keys, so connected
        components of key co-occupancy partition the max-min allocation.
        """
        if src == dst:
            return (("mem", src),)
        keys: List[Hashable] = [("host", src), ("host", dst)]
        keys.extend(("link", r) for r in self.topology.fabric_route(src, dst))
        return tuple(keys)

    def _coupled_component(
        self, active: Sequence[Transfer], changed_pair: Tuple[int, int]
    ) -> Set[Hashable]:
        """Ids of the active flows transitively coupled with ``changed_pair``."""
        by_key: Dict[Hashable, List[Transfer]] = {}
        for transfer in active:
            for key in self._coupling_keys(transfer.src, transfer.dst):
                by_key.setdefault(key, []).append(transfer)
        component: Set[Hashable] = set()
        seen_keys: Set[Hashable] = set()
        frontier: List[Hashable] = list(self._coupling_keys(*changed_pair))
        while frontier:
            key = frontier.pop()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            for transfer in by_key.get(key, ()):
                if transfer.transfer_id not in component:
                    component.add(transfer.transfer_id)
                    frontier.extend(self._coupling_keys(transfer.src, transfer.dst))
        return component

    def _solve_incremental(
        self,
        active: Sequence[Transfer],
        changed_pairs: Sequence[Tuple[int, int]],
    ) -> Dict[Hashable, float]:
        """Full solve, or a component-scoped re-solve after a one-flow delta."""
        if not self.warm_start or not self._primed or len(changed_pairs) != 1:
            return self._solve(active)
        rates: Dict[Hashable, float] = {}
        component = self._coupled_component(active, changed_pairs[0])
        for transfer in active:
            tid = transfer.transfer_id
            if tid in component:
                continue
            rate = self._rates_by_tid.get(tid)
            if rate is None:  # bookkeeping gap: fall back to the exact path
                return self._solve(active)
            rates[tid] = rate
        scoped = [t for t in active if t.transfer_id in component]
        if scoped:
            rates.update(self._solve(scoped))
        self.warm_starts += 1
        return rates

    # --------------------------------------------------------------- deltas
    def reset(self) -> None:
        """Forget the tracked active set and warm-start state (memo survives)."""
        self._active = {}
        self._pair_of_tid = {}
        self._tids_of_pair = {}
        self._sorted_pairs = []
        self._rates_by_tid = {}
        self._last_by_pair = None
        self._primed = False
        self._resources_of_tid = {}
        self._counts = {}

    def _track(self, transfer: Transfer,
               slot: Optional[int] = None) -> Tuple[int, int]:
        tid = transfer.transfer_id
        pair = (transfer.src, transfer.dst)
        self._active[tid] = transfer
        self._pair_of_tid[tid] = pair
        # the bucket value is the transfer's calendar flight slot (slot tier
        # only; None on the dict/array tiers, which never read the values)
        self._tids_of_pair.setdefault(pair, {})[tid] = slot
        bisect.insort(self._sorted_pairs, pair)
        resources = self._resources_for(transfer)
        self._resources_of_tid[tid] = (
            resources, tuple(self._resource_slot(r) for r in resources)
        )
        if not transfer.is_intra_node:
            counts = self._counts.setdefault(transfer.src, {"tx": 0, "rx": 0})
            counts["tx"] += 1
            counts = self._counts.setdefault(transfer.dst, {"tx": 0, "rx": 0})
            counts["rx"] += 1
        return pair

    def _untrack(self, tid: Hashable) -> Tuple[int, int]:
        transfer = self._active.pop(tid)
        pair = self._pair_of_tid.pop(tid)
        bucket = self._tids_of_pair[pair]
        del bucket[tid]
        if not bucket:
            del self._tids_of_pair[pair]
        del self._sorted_pairs[bisect.bisect_left(self._sorted_pairs, pair)]
        self._rates_by_tid.pop(tid, None)
        del self._resources_of_tid[tid]
        if not transfer.is_intra_node:
            counts = self._counts[transfer.src]
            counts["tx"] -= 1
            if counts["tx"] == 0 and counts["rx"] == 0:
                del self._counts[transfer.src]
            counts = self._counts[transfer.dst]
            counts["rx"] -= 1
            if counts["tx"] == 0 and counts["rx"] == 0:
                del self._counts[transfer.dst]
        return pair

    def update(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ) -> Dict[Hashable, float]:
        """Apply a flow delta; return the rates of the re-priced transfers.

        The emulator prices whole sharing situations (its memo key is the
        endpoint multiset, maintained incrementally), and same-endpoint
        flows share one rate in the max-min solution — so the changed set is
        found by value-diffing the new allocation against the previous one
        *per endpoint pair*: every added transfer plus every incumbent whose
        pair's rate changed is returned.  A memoized situation therefore
        costs O(delta + distinct pairs), with no per-transfer rebuild.
        Transfers absent from the mapping kept their rate exactly, which is
        what the event calendar relies on to leave their completion entries
        untouched.

        The whole delta is validated (membership and hosts) before any state
        changes, so a rejected call leaves the tracked set untouched and the
        caller can retry.
        """
        self._validate_delta(added, removed)
        changed_pairs: List[Tuple[int, int]] = []
        for tid in removed:
            changed_pairs.append(self._untrack(tid))
        added_tids: List[Hashable] = []
        for transfer in added:
            changed_pairs.append(self._track(transfer))
            added_tids.append(transfer.transfer_id)
        if not self._active:
            self._last_by_pair = {}
            self._primed = True
            return {}
        return self._allocate(changed_pairs, added_tids)

    def update_arrays(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ):
        """:meth:`update` with an array payload: ``(tids, rates)``.

        Same re-priced membership in the same order as the dict tier — the
        per-pair value diff already walks the changed set once, so the array
        tier is a zero-copy re-shape of its result, not a second path.
        """
        changed = self.update(added, removed)
        rates = np.fromiter(changed.values(), dtype=np.float64,
                            count=len(changed))
        return list(changed.keys()), rates

    def update_slots(
        self, added: Sequence[Transfer], added_slots: Sequence[int],
        removed: Sequence[Hashable]
    ):
        """:meth:`update_arrays` with slot handles: ``(tids, slots, rates)``.

        The caller's flight slots ride the endpoint-pair buckets (stored as
        the bucket values at :meth:`_track` time), so the warm-started
        water-fill's changed-value diff comes back slot-aligned — the
        calendar applies it by direct array indexing with zero per-flush
        hash gathers.  Membership, order and float64 values are identical
        to the dict and array tiers.
        """
        self._validate_delta(added, removed)
        changed_pairs: List[Tuple[int, int]] = []
        for tid in removed:
            changed_pairs.append(self._untrack(tid))
        added_tids: List[Hashable] = []
        for transfer, slot in zip(added, added_slots):
            changed_pairs.append(self._track(transfer, slot))
            added_tids.append(transfer.transfer_id)
        if not self._active:
            self._last_by_pair = {}
            self._primed = True
            return [], np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
        return self._allocate_slots(changed_pairs, added_tids)

    def _validate_delta(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ) -> None:
        """Validate a whole delta (membership and hosts) before any mutation."""
        departing = set()
        for tid in removed:
            if tid not in self._active or tid in departing:
                raise SimulationError(f"unknown transfer {tid!r} removed from rate set")
            departing.add(tid)
        remaining = set(self._active) - departing
        for transfer in added:
            tid = transfer.transfer_id
            if tid in remaining:
                raise SimulationError(f"transfer {tid!r} added to the rate set twice")
            remaining.add(tid)
            self.topology.check_host(transfer.src)
            self.topology.check_host(transfer.dst)

    def _price_situation(
        self, changed_pairs: Sequence[Tuple[int, int]]
    ) -> Tuple[Optional[Dict[Tuple[int, int], float]],
               Optional[Dict[Hashable, float]]]:
        """Memoized per-pair allocation of the tracked situation.

        Returns ``(by_pair, None)`` normally; ``(None, rates)`` when the
        solver broke same-endpoint symmetry (rare) — the caller must then
        value-diff per transfer, and the solution is not memoized.
        """
        key = self._situation_key()
        by_pair = self._rate_cache.get(key)
        if by_pair is not None:
            self.cache_hits += 1
            return by_pair, None
        self.cache_misses += 1
        active = list(self._active.values())
        rates = self._solve_incremental(active, changed_pairs)
        by_pair = {}
        for transfer in active:
            pair = self._pair_of_tid[transfer.transfer_id]
            rate = rates[transfer.transfer_id]
            if pair in by_pair and by_pair[pair] != rate:
                return None, rates  # solver broke same-endpoint symmetry
            by_pair[pair] = rate
        self._rate_cache.put(key, by_pair)
        return by_pair, None

    def _changed_pair_set(
        self, by_pair: Dict[Tuple[int, int], float]
    ) -> Set[Tuple[int, int]]:
        """Pairs whose rate differs from the value-diff baseline.

        Constructed identically on every tier (same elements, same insertion
        history), so its iteration order — and with it the downstream
        changed-set order the calendar's seq assignment relies on — is
        tier-independent.
        """
        previous = self._last_by_pair
        if previous is None:
            return set(by_pair)
        return {
            pair for pair, rate in by_pair.items()
            if previous.get(pair) != rate
        }

    def _allocate(
        self,
        changed_pairs: Sequence[Tuple[int, int]],
        added_tids: Sequence[Hashable],
    ) -> Dict[Hashable, float]:
        """Price the tracked situation and report the changed rates."""
        by_pair, raw = self._price_situation(changed_pairs)
        if by_pair is None:
            # rare fallback: diff (and store) rates per transfer
            changed = {}
            for tid, rate in raw.items():
                if self._rates_by_tid.get(tid) != rate:
                    changed[tid] = rate
                    self._rates_by_tid[tid] = rate
            for tid in added_tids:
                changed.setdefault(tid, raw[tid])
            self._last_by_pair = None
            self._primed = True
            return changed

        changed_pair_set = self._changed_pair_set(by_pair)
        changed: Dict[Hashable, float] = {}
        for pair in changed_pair_set:
            rate = by_pair[pair]
            for tid in self._tids_of_pair.get(pair, ()):
                changed[tid] = rate
                self._rates_by_tid[tid] = rate
        for tid in added_tids:
            if tid not in changed:
                rate = by_pair[self._pair_of_tid[tid]]
                changed[tid] = rate
                self._rates_by_tid[tid] = rate
        self._last_by_pair = by_pair
        self._primed = True
        return changed

    def _allocate_slots(
        self,
        changed_pairs: Sequence[Tuple[int, int]],
        added_tids: Sequence[Hashable],
    ):
        """Slot-aligned :meth:`_allocate`: parallel ``(tids, slots, rates)``.

        Walks the same changed-pair set in the same order, but reads each
        transfer's flight slot out of the endpoint buckets while walking —
        no per-tid hash gather happens afterwards.
        """
        tids: List[Hashable] = []
        slot_list: List[int] = []
        rate_list: List[float] = []
        by_pair, raw = self._price_situation(changed_pairs)
        if by_pair is None:
            # rare fallback: per-transfer diff, slots read from the buckets
            tids_of_pair = self._tids_of_pair
            pair_of_tid = self._pair_of_tid
            for tid, rate in raw.items():
                if self._rates_by_tid.get(tid) != rate:
                    tids.append(tid)
                    slot_list.append(tids_of_pair[pair_of_tid[tid]][tid])
                    rate_list.append(rate)
                    self._rates_by_tid[tid] = rate
            emitted = set(tids)
            for tid in added_tids:
                if tid not in emitted:
                    tids.append(tid)
                    slot_list.append(tids_of_pair[pair_of_tid[tid]][tid])
                    rate_list.append(raw[tid])
            self._last_by_pair = None
            self._primed = True
            return (tids, np.asarray(slot_list, dtype=np.intp),
                    np.asarray(rate_list, dtype=np.float64))

        changed_pair_set = self._changed_pair_set(by_pair)
        for pair in changed_pair_set:
            rate = by_pair[pair]
            for tid, slot in self._tids_of_pair.get(pair, {}).items():
                tids.append(tid)
                slot_list.append(slot)
                rate_list.append(rate)
                self._rates_by_tid[tid] = rate
        for tid in added_tids:
            # an added tid is in the emitted set iff its pair's bucket was
            # walked above (every bucket member of a changed pair is emitted)
            pair = self._pair_of_tid[tid]
            if pair not in changed_pair_set:
                rate = by_pair[pair]
                tids.append(tid)
                slot_list.append(self._tids_of_pair[pair][tid])
                rate_list.append(rate)
                self._rates_by_tid[tid] = rate
        self._last_by_pair = by_pair
        self._primed = True
        return (tids, np.asarray(slot_list, dtype=np.intp),
                np.asarray(rate_list, dtype=np.float64))

    def rates(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Instantaneous rate of every active transfer, in bytes per second.

        Compatibility shim over :meth:`update`: the requested set is diffed
        against the tracked one, the delta applied, and the stored rate of
        every requested transfer returned.
        """
        wanted: Dict[Hashable, Transfer] = {}
        for transfer in active:
            if transfer.transfer_id in wanted:
                raise SimulationError("duplicate transfer ids in the active set")
            wanted[transfer.transfer_id] = transfer
        removed: List[Hashable] = [tid for tid in self._active if tid not in wanted]
        added: List[Transfer] = []
        for tid, transfer in wanted.items():
            known = self._active.get(tid)
            if known is None:
                added.append(transfer)
            elif (known.src, known.dst) != (transfer.src, transfer.dst):
                # transfer id re-used with new endpoints: departure + arrival
                removed.append(tid)
                added.append(transfer)
        if added or removed:
            self.update(added, removed)
        elif active and any(
            t.transfer_id not in self._rates_by_tid for t in active
        ):
            # stored rates were dropped (invalidate_cache): full re-query
            self._allocate(list(self._tids_of_pair), [])
        elif active:
            # no delta: the stored rates are current; a memoized situation
            # still counts as a hit (parity with the historical full query)
            if self._rate_cache.get(self._situation_key()) is not None:
                self.cache_hits += 1
        return {t.transfer_id: self._rates_by_tid[t.transfer_id] for t in active}

    # ------------------------------------------------------------- penalties
    def instantaneous_penalties(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Penalty of every active transfer under the current sharing situation.

        The penalty is the ratio between the single-stream bandwidth and the
        allocated rate — exactly the paper's ``P_i = T_i / T_ref`` when every
        transfer of the scheme starts together and runs to completion.
        """
        rates = self.rates(active)
        single = self.technology.single_stream_bandwidth
        memory = self.technology.memory_bandwidth
        penalties: Dict[Hashable, float] = {}
        for transfer in active:
            rate = rates[transfer.transfer_id]
            if rate <= 0:
                raise SimulationError(
                    f"transfer {transfer.transfer_id!r} was allocated a zero rate"
                )
            reference = memory if transfer.is_intra_node else single
            penalties[transfer.transfer_id] = max(1.0, reference / rate)
        return penalties
