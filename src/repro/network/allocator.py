"""Technology-aware rate allocation — the heart of the cluster emulator.

Given the set of transfers currently in flight, the allocator distributes
instantaneous bandwidth the way the emulated interconnect would:

* every inter-node transfer consumes the TX port of its source NIC, the RX
  port of its destination NIC and the fat-tree links in between;
* every intra-node transfer consumes the memory bus of its host;
* a single transfer cannot exceed the protocol's single-stream bandwidth
  (``single_stream_efficiency × link_bandwidth``);
* income/outgo interference degrades, per the calibrated
  :class:`~repro.network.technologies.SharingBehaviour`:

  - the individual cap of a transfer whose destination node is also
    transmitting (``duplex_flow_slowdown``),
  - the TX capacity of a node receiving at least ``reverse_threshold``
    transfers (``tx_capacity_loss``),
  - the RX capacity of a node receiving at least ``reverse_threshold``
    transfers while transmitting (``rx_capacity_loss``);

* the remaining capacity is shared max-min fair
  (:func:`repro.network.sharing.max_min_allocation`).

With the shipped calibration the allocator reproduces the penalty ladder the
paper measured on its three clusters (Figure 2) to within a few percent; see
``benchmarks/bench_fig2_penalty_ladder.py`` and ``EXPERIMENTS.md``.

Like the model-side provider, the allocator memoizes its max-min solutions:
the rate vector only depends on the multiset of ``(src, dst)`` endpoint
pairs of the active transfers (sizes and transfer ids never enter the
allocation, and same-endpoint flows receive equal rates in the unique
max-min solution), so repeated sharing situations — ubiquitous in iterative
workloads — are dictionary lookups instead of solver runs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SimulationError
from .fluid import Transfer
from .sharing import FlowSpec, max_min_allocation
from .technologies import NetworkTechnology
from .topology import CrossbarTopology, Topology

__all__ = ["EmulatorRateProvider"]


class EmulatorRateProvider:
    """Rate provider implementing the calibrated sharing behaviour of a technology.

    Parameters
    ----------
    technology, topology, num_hosts:
        The emulated interconnect and its wiring (crossbar by default).
    cache_size:
        Number of memoized sharing situations (0 disables memoization).
        Call :meth:`invalidate_cache` after mutating the topology or the
        technology in place.
    """

    def __init__(self, technology: NetworkTechnology, topology: Topology | None = None,
                 num_hosts: int = 64, cache_size: int = 4096) -> None:
        self.technology = technology
        self.topology = topology or CrossbarTopology(num_hosts=num_hosts, technology=technology)
        if self.topology.technology is not technology:
            # keep the two consistent; the topology carries link capacities
            self.topology.technology = technology
        self.cache_size = int(cache_size)
        #: situation key -> (src, dst) pair -> rate
        self._rate_cache: "OrderedDict[Tuple[Tuple[int, int], ...], Dict[Tuple[int, int], float]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def invalidate_cache(self) -> None:
        """Drop memoized allocations (required after in-place reconfiguration)."""
        self._rate_cache.clear()

    # ---------------------------------------------------------------- helpers
    def _directional_counts(self, active: Sequence[Transfer]) -> Dict[int, Dict[str, int]]:
        """Per-host counts of inter-node transfers leaving (tx) and entering (rx)."""
        counts: Dict[int, Dict[str, int]] = {}
        for transfer in active:
            if transfer.is_intra_node:
                continue
            counts.setdefault(transfer.src, {"tx": 0, "rx": 0})["tx"] += 1
            counts.setdefault(transfer.dst, {"tx": 0, "rx": 0})["rx"] += 1
        return counts

    def _adjusted_capacities(
        self, counts: Mapping[int, Mapping[str, int]]
    ) -> Dict[Hashable, float]:
        """Topology capacities with the income/outgo degradations applied."""
        sharing = self.technology.sharing
        capacities = self.topology.capacities()
        for host, c in counts.items():
            tx_key, rx_key = self.topology.nic_resources(host)
            if c["rx"] >= sharing.reverse_threshold and c["tx"] >= 1:
                capacities[tx_key] *= 1.0 - sharing.tx_capacity_loss
                capacities[rx_key] *= 1.0 - sharing.rx_capacity_loss
        return capacities

    def _flow_specs(
        self,
        active: Sequence[Transfer],
        counts: Mapping[int, Mapping[str, int]],
    ) -> List[FlowSpec]:
        sharing = self.technology.sharing
        single = self.technology.single_stream_bandwidth
        specs: List[FlowSpec] = []
        for transfer in active:
            if transfer.is_intra_node:
                specs.append(
                    FlowSpec(
                        flow_id=transfer.transfer_id,
                        resources=(self.topology.memory_resource(transfer.src),),
                        cap=self.technology.memory_bandwidth,
                    )
                )
                continue
            cap = single
            destination_transmits = counts.get(transfer.dst, {}).get("tx", 0) >= 1
            if destination_transmits:
                cap *= 1.0 - sharing.duplex_flow_slowdown
            tx_key, _ = self.topology.nic_resources(transfer.src)
            _, rx_key = self.topology.nic_resources(transfer.dst)
            resources = (tx_key, rx_key) + tuple(
                self.topology.fabric_route(transfer.src, transfer.dst)
            )
            specs.append(
                FlowSpec(flow_id=transfer.transfer_id, resources=resources, cap=cap)
            )
        return specs

    # -------------------------------------------------------------- interface
    def _situation_key(self, active: Sequence[Transfer]) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted((t.src, t.dst) for t in active))

    def _solve(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        counts = self._directional_counts(active)
        capacities = self._adjusted_capacities(counts)
        specs = self._flow_specs(active, counts)
        return max_min_allocation(specs, capacities)

    def rates(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Instantaneous rate of every active transfer, in bytes per second."""
        if not active:
            return {}
        for transfer in active:
            self.topology.check_host(transfer.src)
            self.topology.check_host(transfer.dst)
        if self.cache_size <= 0:
            return self._solve(active)

        key = self._situation_key(active)
        cached = self._rate_cache.get(key)
        if cached is not None:
            self._rate_cache.move_to_end(key)
            self.cache_hits += 1
            return {t.transfer_id: cached[(t.src, t.dst)] for t in active}

        self.cache_misses += 1
        rates = self._solve(active)
        by_pair: Optional[Dict[Tuple[int, int], float]] = {}
        for transfer in active:
            pair = (transfer.src, transfer.dst)
            rate = rates[transfer.transfer_id]
            if by_pair is not None:
                if pair in by_pair and by_pair[pair] != rate:
                    by_pair = None  # solver broke same-endpoint symmetry
                else:
                    by_pair[pair] = rate
        if by_pair is not None:
            self._rate_cache[key] = by_pair
            while len(self._rate_cache) > self.cache_size:
                self._rate_cache.popitem(last=False)
        return rates

    # ------------------------------------------------------------- penalties
    def instantaneous_penalties(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Penalty of every active transfer under the current sharing situation.

        The penalty is the ratio between the single-stream bandwidth and the
        allocated rate — exactly the paper's ``P_i = T_i / T_ref`` when every
        transfer of the scheme starts together and runs to completion.
        """
        rates = self.rates(active)
        single = self.technology.single_stream_bandwidth
        memory = self.technology.memory_bandwidth
        penalties: Dict[Hashable, float] = {}
        for transfer in active:
            rate = rates[transfer.transfer_id]
            if rate <= 0:
                raise SimulationError(
                    f"transfer {transfer.transfer_id!r} was allocated a zero rate"
                )
            reference = memory if transfer.is_intra_node else single
            penalties[transfer.transfer_id] = max(1.0, reference / rate)
        return penalties
