"""Technology-aware rate allocation — the heart of the cluster emulator.

Given the set of transfers currently in flight, the allocator distributes
instantaneous bandwidth the way the emulated interconnect would:

* every inter-node transfer consumes the TX port of its source NIC, the RX
  port of its destination NIC and the fat-tree links in between;
* every intra-node transfer consumes the memory bus of its host;
* a single transfer cannot exceed the protocol's single-stream bandwidth
  (``single_stream_efficiency × link_bandwidth``);
* income/outgo interference degrades, per the calibrated
  :class:`~repro.network.technologies.SharingBehaviour`:

  - the individual cap of a transfer whose destination node is also
    transmitting (``duplex_flow_slowdown``),
  - the TX capacity of a node receiving at least ``reverse_threshold``
    transfers (``tx_capacity_loss``),
  - the RX capacity of a node receiving at least ``reverse_threshold``
    transfers while transmitting (``rx_capacity_loss``);

* the remaining capacity is shared max-min fair
  (:func:`repro.network.sharing.max_min_allocation`).

With the shipped calibration the allocator reproduces the penalty ladder the
paper measured on its three clusters (Figure 2) to within a few percent; see
``benchmarks/bench_fig2_penalty_ladder.py`` and ``EXPERIMENTS.md``.

Like the model-side provider, the allocator memoizes its max-min solutions
in a :class:`~repro.core.incremental.PenaltyCache` (the same LRU-with-
symmetry-check mechanism the contention models use, namespaced by technology
and topology so a cache may be shared across providers): the rate vector
only depends on the multiset of ``(src, dst)`` endpoint pairs of the active
transfers (sizes and transfer ids never enter the allocation, and
same-endpoint flows receive equal rates in the unique max-min solution), so
repeated sharing situations — ubiquitous in iterative workloads — are
dictionary lookups instead of solver runs.

On a cache miss the water-filling is additionally *warm-started*: when
exactly one flow arrived or departed since the previous allocation, only the
coupling component of the changed flow (flows transitively sharing an
endpoint host or a fabric link with it) is re-solved and every other flow
keeps its previous rate.  Max-min allocations decompose exactly over
coupling components — the income/outgo capacity degradations and duplex caps
only couple flows through shared hosts — so the warm-started rates equal a
full re-solve up to floating-point summation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.incremental import PenaltyCache
from ..exceptions import SimulationError
from .fluid import Transfer
from .sharing import FlowSpec, max_min_allocation
from .technologies import NetworkTechnology
from .topology import CrossbarTopology, Topology

__all__ = ["EmulatorRateProvider"]


class EmulatorRateProvider:
    """Rate provider implementing the calibrated sharing behaviour of a technology.

    Parameters
    ----------
    technology, topology, num_hosts:
        The emulated interconnect and its wiring (crossbar by default).
    cache_size:
        Number of memoized sharing situations in the private cache
        (0 disables memoization).  Ignored when ``cache`` is given — a
        shared cache arrives with its own capacity.  Call
        :meth:`invalidate_cache` after mutating the topology or the
        technology in place.
    cache:
        Optional shared :class:`~repro.core.incremental.PenaltyCache`;
        entries are namespaced by technology and topology, so providers of
        one sweep can pool their memoized allocations.  Takes precedence
        over ``cache_size``.
    warm_start:
        Re-solve only the changed flow's coupling component when exactly one
        flow arrived/departed (see the module docstring); pass ``False`` to
        force a full water-filling on every miss.
    """

    def __init__(self, technology: NetworkTechnology, topology: Topology | None = None,
                 num_hosts: int = 64, cache_size: int = 4096,
                 cache: Optional[PenaltyCache] = None,
                 warm_start: bool = True) -> None:
        self.technology = technology
        self.topology = topology or CrossbarTopology(num_hosts=num_hosts, technology=technology)
        if self.topology.technology is not technology:
            # keep the two consistent; the topology carries link capacities
            self.topology.technology = technology
        self.cache_size = int(cache_size)
        self._owns_cache = cache is None
        self._rate_cache = cache if cache is not None else PenaltyCache(
            max_entries=max(0, self.cache_size)
        )
        # the epoch scopes this provider's entries; bumping it on
        # invalidation retires them without touching a shared cache
        self._epoch = 0
        self._rebuild_namespace()
        self.cache_hits = 0
        self.cache_misses = 0
        self.warm_start = bool(warm_start)
        self.warm_starts = 0
        #: previous allocation, for the warm-start delta path
        self._last_pairs: Optional[Dict[Hashable, Tuple[int, int]]] = None
        self._last_rates: Dict[Hashable, float] = {}
        #: tracked active set, for the delta contract (:meth:`update`)
        self._active: Dict[Hashable, Transfer] = {}

    def _rebuild_namespace(self) -> None:
        self._namespace = (
            "emulator-rates", self._epoch, self.technology, self.topology.memo_key()
        )

    def invalidate_cache(self) -> None:
        """Drop memoized allocations (required after in-place reconfiguration).

        A private cache is cleared outright; on a shared cache only this
        provider's entries are retired (by bumping the namespace epoch), so
        other providers pooling the cache keep their valid entries.  The
        warm-start state is dropped either way.
        """
        self._epoch += 1
        self._rebuild_namespace()
        if self._owns_cache:
            self._rate_cache.clear()
        self._last_pairs = None
        self._last_rates = {}

    # ---------------------------------------------------------------- helpers
    def _directional_counts(self, active: Sequence[Transfer]) -> Dict[int, Dict[str, int]]:
        """Per-host counts of inter-node transfers leaving (tx) and entering (rx)."""
        counts: Dict[int, Dict[str, int]] = {}
        for transfer in active:
            if transfer.is_intra_node:
                continue
            counts.setdefault(transfer.src, {"tx": 0, "rx": 0})["tx"] += 1
            counts.setdefault(transfer.dst, {"tx": 0, "rx": 0})["rx"] += 1
        return counts

    def _adjusted_capacities(
        self, counts: Mapping[int, Mapping[str, int]]
    ) -> Dict[Hashable, float]:
        """Topology capacities with the income/outgo degradations applied."""
        sharing = self.technology.sharing
        capacities = self.topology.capacities()
        for host, c in counts.items():
            tx_key, rx_key = self.topology.nic_resources(host)
            if c["rx"] >= sharing.reverse_threshold and c["tx"] >= 1:
                capacities[tx_key] *= 1.0 - sharing.tx_capacity_loss
                capacities[rx_key] *= 1.0 - sharing.rx_capacity_loss
        return capacities

    def _flow_specs(
        self,
        active: Sequence[Transfer],
        counts: Mapping[int, Mapping[str, int]],
    ) -> List[FlowSpec]:
        sharing = self.technology.sharing
        single = self.technology.single_stream_bandwidth
        specs: List[FlowSpec] = []
        for transfer in active:
            if transfer.is_intra_node:
                specs.append(
                    FlowSpec(
                        flow_id=transfer.transfer_id,
                        resources=(self.topology.memory_resource(transfer.src),),
                        cap=self.technology.memory_bandwidth,
                    )
                )
                continue
            cap = single
            destination_transmits = counts.get(transfer.dst, {}).get("tx", 0) >= 1
            if destination_transmits:
                cap *= 1.0 - sharing.duplex_flow_slowdown
            tx_key, _ = self.topology.nic_resources(transfer.src)
            _, rx_key = self.topology.nic_resources(transfer.dst)
            resources = (tx_key, rx_key) + tuple(
                self.topology.fabric_route(transfer.src, transfer.dst)
            )
            specs.append(
                FlowSpec(flow_id=transfer.transfer_id, resources=resources, cap=cap)
            )
        return specs

    # -------------------------------------------------------------- interface
    def _situation_key(self, active: Sequence[Transfer]) -> Hashable:
        return (self._namespace, tuple(sorted((t.src, t.dst) for t in active)))

    def _solve(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        counts = self._directional_counts(active)
        capacities = self._adjusted_capacities(counts)
        specs = self._flow_specs(active, counts)
        return max_min_allocation(specs, capacities)

    # ------------------------------------------------------------ warm start
    def _coupling_keys(self, src: int, dst: int) -> Tuple[Hashable, ...]:
        """Opaque keys through which a flow couples with other flows.

        Two flows interact (directly or through the income/outgo capacity
        degradations) only when they share one of these keys, so connected
        components of key co-occupancy partition the max-min allocation.
        """
        if src == dst:
            return (("mem", src),)
        keys: List[Hashable] = [("host", src), ("host", dst)]
        keys.extend(("link", r) for r in self.topology.fabric_route(src, dst))
        return tuple(keys)

    def _coupled_component(
        self, active: Sequence[Transfer], changed_pair: Tuple[int, int]
    ) -> Set[Hashable]:
        """Ids of the active flows transitively coupled with ``changed_pair``."""
        by_key: Dict[Hashable, List[Transfer]] = {}
        for transfer in active:
            for key in self._coupling_keys(transfer.src, transfer.dst):
                by_key.setdefault(key, []).append(transfer)
        component: Set[Hashable] = set()
        seen_keys: Set[Hashable] = set()
        frontier: List[Hashable] = list(self._coupling_keys(*changed_pair))
        while frontier:
            key = frontier.pop()
            if key in seen_keys:
                continue
            seen_keys.add(key)
            for transfer in by_key.get(key, ()):
                if transfer.transfer_id not in component:
                    component.add(transfer.transfer_id)
                    frontier.extend(self._coupling_keys(transfer.src, transfer.dst))
        return component

    def _solve_incremental(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Full solve, or a component-scoped re-solve after a one-flow delta."""
        previous = self._last_pairs
        if not self.warm_start or previous is None:
            return self._solve(active)
        current: Dict[Hashable, Tuple[int, int]] = {}
        changed: List[Tuple[int, int]] = []
        for transfer in active:
            pair = (transfer.src, transfer.dst)
            current[transfer.transfer_id] = pair
            known = previous.get(transfer.transfer_id)
            if known is None:
                changed.append(pair)
            elif known != pair:
                return self._solve(active)  # transfer id re-used with new endpoints
        changed.extend(pair for tid, pair in previous.items() if tid not in current)
        if len(changed) != 1 or len(current) != len(active):
            return self._solve(active)
        component = self._coupled_component(active, changed[0])
        rates: Dict[Hashable, float] = {}
        for transfer in active:
            if transfer.transfer_id in component:
                continue
            rate = self._last_rates.get(transfer.transfer_id)
            if rate is None:  # bookkeeping gap: fall back to the exact path
                return self._solve(active)
            rates[transfer.transfer_id] = rate
        scoped = [t for t in active if t.transfer_id in component]
        if scoped:
            rates.update(self._solve(scoped))
        self.warm_starts += 1
        return rates

    def _remember(self, active: Sequence[Transfer], rates: Mapping[Hashable, float]) -> None:
        self._last_pairs = {t.transfer_id: (t.src, t.dst) for t in active}
        self._last_rates = {t.transfer_id: rates[t.transfer_id] for t in active}

    # --------------------------------------------------------------- deltas
    def reset(self) -> None:
        """Forget the tracked active set and warm-start state (memo survives)."""
        self._active = {}
        self._last_pairs = None
        self._last_rates = {}

    def update(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ) -> Dict[Hashable, float]:
        """Apply a flow delta; return the rates of the re-priced transfers.

        The emulator prices whole sharing situations (its memo key is the
        endpoint multiset), so — unlike the model-side provider, whose
        ``rates`` is a shim over ``update`` — the delta call is built on the
        full-set solve: the situation is re-solved (memo hit, warm-started
        component re-solve, or full water-filling) and the new allocation is
        value-diffed against the previous one.  Every added transfer plus
        every incumbent whose rate changed is returned; transfers absent
        from the mapping kept their rate exactly, which is what the event
        calendar relies on to leave their completion entries untouched.
        """
        for tid in removed:
            if self._active.pop(tid, None) is None:
                raise SimulationError(f"unknown transfer {tid!r} removed from rate set")
        for transfer in added:
            if transfer.transfer_id in self._active:
                raise SimulationError(
                    f"transfer {transfer.transfer_id!r} added to the rate set twice"
                )
            self._active[transfer.transfer_id] = transfer
        previous = dict(self._last_rates)
        current = self.rates(list(self._active.values()))
        return {
            tid: rate for tid, rate in current.items()
            if tid not in previous or previous[tid] != rate
        }

    def rates(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Instantaneous rate of every active transfer, in bytes per second."""
        self._active = {t.transfer_id: t for t in active}
        if not active:
            self._remember((), {})
            return {}
        for transfer in active:
            self.topology.check_host(transfer.src)
            self.topology.check_host(transfer.dst)

        key = self._situation_key(active)
        cached = self._rate_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            rates = {t.transfer_id: cached[(t.src, t.dst)] for t in active}
            self._remember(active, rates)
            return rates

        self.cache_misses += 1
        rates = self._solve_incremental(active)
        by_pair: Optional[Dict[Tuple[int, int], float]] = {}
        for transfer in active:
            pair = (transfer.src, transfer.dst)
            rate = rates[transfer.transfer_id]
            if pair in by_pair and by_pair[pair] != rate:
                by_pair = None  # solver broke same-endpoint symmetry
                break
            by_pair[pair] = rate
        if by_pair is not None:
            self._rate_cache.put(key, by_pair)
        self._remember(active, rates)
        return rates

    # ------------------------------------------------------------- penalties
    def instantaneous_penalties(self, active: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Penalty of every active transfer under the current sharing situation.

        The penalty is the ratio between the single-stream bandwidth and the
        allocated rate — exactly the paper's ``P_i = T_i / T_ref`` when every
        transfer of the scheme starts together and runs to completion.
        """
        rates = self.rates(active)
        single = self.technology.single_stream_bandwidth
        memory = self.technology.memory_bandwidth
        penalties: Dict[Hashable, float] = {}
        for transfer in active:
            rate = rates[transfer.transfer_id]
            if rate <= 0:
                raise SimulationError(
                    f"transfer {transfer.transfer_id!r} was allocated a zero rate"
                )
            reference = memory if transfer.is_intra_node else single
            penalties[transfer.transfer_id] = max(1.0, reference / rate)
        return penalties
