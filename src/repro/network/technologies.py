"""Network technology descriptions for the cluster emulator.

The paper measures three interconnects (§IV.C): Gigabit Ethernet with TCP
(IBM e326, BCM5704), Myrinet 2000 with MX (IBM e325) and InfiniBand
InfiniHost III (BULL Novascale).  We do not have that hardware, so the
*measured* side of every experiment is produced by an emulator whose sharing
behaviour is **calibrated on the penalties the paper publishes in Figure 2**
(see ``DESIGN.md`` §2 for the substitution argument).

A :class:`NetworkTechnology` bundles:

* the raw link speed and latency,
* the single-stream efficiency (fraction of the link one ``MPI_Send``
  achieves on an idle network — TCP reaches only ≈75 % of a GigE link, MX
  ≈93 % of 2 Gb/s Myrinet, a single IB QP ≈87 % of the HCA),
* a :class:`SharingBehaviour` describing how concurrent flows degrade each
  other (fair NIC sharing plus income/outgo interference), and
* the flow-control mechanism name, used by the packet-level models in
  :mod:`repro.network.packet`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..exceptions import TopologyError
from ..units import GBIT, MB, USEC

__all__ = [
    "SharingBehaviour",
    "NetworkTechnology",
    "GIGABIT_ETHERNET",
    "MYRINET_2000",
    "INFINIBAND_INFINIHOST3",
    "TECHNOLOGIES",
    "get_technology",
]


@dataclass(frozen=True)
class SharingBehaviour:
    """How concurrent flows at a NIC degrade each other.

    The fields are calibration constants fitted against the Figure 2 penalty
    ladder of the paper (see the module doc string and ``EXPERIMENTS.md``).

    Parameters
    ----------
    single_stream_efficiency:
        Fraction of the link bandwidth achieved by one isolated flow.
    duplex_flow_slowdown:
        Per-flow rate reduction applied to a flow whose **destination** node
        is simultaneously transmitting (the income/outgo coupling observed on
        a single reverse stream: 1.15 on GigE, 1.45 on Myrinet, 1.14 on IB).
    reverse_threshold:
        Number of incoming flows at a node from which the stronger capacity
        degradations below start to apply (the paper's measurements show the
        second reverse stream is the expensive one).
    tx_capacity_loss:
        Fraction of the node's transmit capacity lost once it receives at
        least ``reverse_threshold`` flows.
    rx_capacity_loss:
        Fraction of the node's receive capacity lost once it receives at
        least ``reverse_threshold`` flows *and* transmits at least one.
    """

    single_stream_efficiency: float
    duplex_flow_slowdown: float = 0.0
    reverse_threshold: int = 2
    tx_capacity_loss: float = 0.0
    rx_capacity_loss: float = 0.0

    def __post_init__(self) -> None:
        if not (0 < self.single_stream_efficiency <= 1):
            raise TopologyError(
                f"single_stream_efficiency must be in (0, 1], got {self.single_stream_efficiency}"
            )
        for label in ("duplex_flow_slowdown", "tx_capacity_loss", "rx_capacity_loss"):
            value = getattr(self, label)
            if not (0 <= value < 1):
                raise TopologyError(f"{label} must be in [0, 1), got {value}")
        if self.reverse_threshold < 1:
            raise TopologyError(f"reverse_threshold must be >= 1, got {self.reverse_threshold}")


@dataclass(frozen=True)
class NetworkTechnology:
    """A cluster interconnect as seen by the emulator."""

    name: str
    #: raw link speed in bytes per second (full duplex: per direction)
    link_bandwidth: float
    #: one-way small-message latency in seconds
    latency: float
    sharing: SharingBehaviour
    #: flow control mechanism: "tcp-pause", "stop-and-go" or "credit"
    flow_control: str = "generic"
    #: memory (intra-node) copy bandwidth in bytes per second
    memory_bandwidth: float = 1_500 * MB
    #: MPI envelope added to every message, bytes
    mpi_envelope: int = 64

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise TopologyError(f"link_bandwidth must be positive, got {self.link_bandwidth}")
        if self.latency < 0:
            raise TopologyError(f"latency must be non-negative, got {self.latency}")
        if self.memory_bandwidth <= 0:
            raise TopologyError(f"memory_bandwidth must be positive, got {self.memory_bandwidth}")

    @property
    def single_stream_bandwidth(self) -> float:
        """Bandwidth one isolated MPI flow achieves, bytes per second."""
        return self.link_bandwidth * self.sharing.single_stream_efficiency

    def reference_time(self, size: int = 20 * MB) -> float:
        """Duration of a contention-free ``size``-byte transfer (the paper's T_ref)."""
        return self.latency + (size + self.mpi_envelope) / self.single_stream_bandwidth

    def with_sharing(self, **changes) -> "NetworkTechnology":
        """Copy of the technology with some sharing parameters changed (for ablations)."""
        return replace(self, sharing=replace(self.sharing, **changes))


#: IBM eServer 326 cluster: Broadcom BCM5704 Gigabit Ethernet, MPICH over TCP.
GIGABIT_ETHERNET = NetworkTechnology(
    name="gigabit-ethernet",
    link_bandwidth=1.0 * GBIT,
    latency=45 * USEC,
    sharing=SharingBehaviour(
        single_stream_efficiency=0.75,
        duplex_flow_slowdown=0.13,
        reverse_threshold=2,
        tx_capacity_loss=0.30,
        rx_capacity_loss=0.42,
    ),
    flow_control="tcp-pause",
    memory_bandwidth=1_400 * MB,
)

#: IBM eServer 325 cluster: Myrinet 2000 (2 Gb/s), MPI-MX, Stop & Go flow control.
MYRINET_2000 = NetworkTechnology(
    name="myrinet-2000",
    link_bandwidth=2.0 * GBIT,
    latency=7 * USEC,
    sharing=SharingBehaviour(
        single_stream_efficiency=0.93,
        duplex_flow_slowdown=0.31,
        reverse_threshold=2,
        tx_capacity_loss=0.35,
        rx_capacity_loss=0.26,
    ),
    flow_control="stop-and-go",
    memory_bandwidth=1_300 * MB,
)

#: BULL Novascale cluster: Mellanox InfiniHost III (SDR 4x, 8 Gb/s effective),
#: MPIBULL2/MVAPICH, credit-based flow control.
INFINIBAND_INFINIHOST3 = NetworkTechnology(
    name="infiniband-infinihost3",
    link_bandwidth=8.0 * GBIT,
    latency=4 * USEC,
    sharing=SharingBehaviour(
        single_stream_efficiency=0.87,
        duplex_flow_slowdown=0.123,
        reverse_threshold=2,
        tx_capacity_loss=0.287,
        rx_capacity_loss=0.145,
    ),
    flow_control="credit",
    memory_bandwidth=2_500 * MB,
)

TECHNOLOGIES: Dict[str, NetworkTechnology] = {
    "gigabit-ethernet": GIGABIT_ETHERNET,
    "ethernet": GIGABIT_ETHERNET,
    "gige": GIGABIT_ETHERNET,
    "myrinet": MYRINET_2000,
    "myrinet-2000": MYRINET_2000,
    "infiniband": INFINIBAND_INFINIHOST3,
    "ib": INFINIBAND_INFINIHOST3,
    "infinihost3": INFINIBAND_INFINIHOST3,
}


def get_technology(name: str) -> NetworkTechnology:
    """Look a technology preset up by name or alias.

    >>> get_technology("myrinet").flow_control
    'stop-and-go'
    """
    key = name.lower()
    if key not in TECHNOLOGIES:
        raise TopologyError(
            f"unknown network technology {name!r}; known: "
            f"{', '.join(sorted(set(TECHNOLOGIES)))}"
        )
    return TECHNOLOGIES[key]
