"""Bandwidth sharing solvers.

The cluster emulator allocates an instantaneous rate to every in-flight flow
by **progressive filling** (max-min fairness) over a set of capacity
constraints: each flow consumes capacity on a set of *resources* (source NIC
TX port, destination NIC RX port, intermediate links, the memory bus for
intra-node copies) and may additionally be limited by a per-flow cap (the
single-stream efficiency of the protocol).

The solver is deliberately generic — resources are opaque hashable
identifiers — so the same code serves the per-technology allocators of
:mod:`repro.network.ethernet` / ``myrinet`` / ``infiniband`` and the
fat-tree link sharing of :mod:`repro.network.topology`.

The implementation follows the textbook water-filling algorithm:

1. every unfrozen flow grows at the same rate;
2. the first constraint to saturate (a resource whose remaining capacity
   divided by its number of unfrozen flows is minimal, or a per-flow cap)
   freezes the flows it limits;
3. repeat until every flow is frozen.

NumPy is used for the per-iteration reductions; the number of iterations is
bounded by the number of resources plus the number of distinct caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError

__all__ = ["FlowSpec", "max_min_allocation", "weighted_max_min_allocation"]

ResourceId = Hashable


@dataclass(frozen=True)
class FlowSpec:
    """One flow handed to the sharing solver.

    ``resources`` is the collection of capacity constraints the flow consumes
    (its rate counts against each of them); ``cap`` is an optional individual
    rate ceiling; ``weight`` scales the flow's share in the weighted variant.
    """

    flow_id: Hashable
    resources: Tuple[ResourceId, ...]
    cap: float = float("inf")
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise SimulationError(f"flow {self.flow_id!r} has non-positive cap {self.cap}")
        if self.weight <= 0:
            raise SimulationError(f"flow {self.flow_id!r} has non-positive weight {self.weight}")


def max_min_allocation(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ResourceId, float],
) -> Dict[Hashable, float]:
    """Max-min fair rates for ``flows`` under ``capacities``.

    Flows that reference a resource missing from ``capacities`` raise
    :class:`SimulationError` (it is always a programming error in the
    emulator).  Flows with no resources are only limited by their cap.

    >>> flows = [FlowSpec("a", ("tx0",)), FlowSpec("b", ("tx0",))]
    >>> rates = max_min_allocation(flows, {"tx0": 100.0})
    >>> rates["a"] == rates["b"] == 50.0
    True
    """
    return weighted_max_min_allocation(flows, capacities)


def weighted_max_min_allocation(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ResourceId, float],
) -> Dict[Hashable, float]:
    """Weighted max-min fair allocation (weights scale each flow's share)."""
    if not flows:
        return {}

    seen_ids = set()
    for flow in flows:
        if flow.flow_id in seen_ids:
            raise SimulationError(f"duplicate flow id {flow.flow_id!r}")
        seen_ids.add(flow.flow_id)
        for resource in flow.resources:
            if resource not in capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} uses unknown resource {resource!r}"
                )
    for resource, capacity in capacities.items():
        if capacity < 0:
            raise SimulationError(f"resource {resource!r} has negative capacity {capacity}")

    rates: Dict[Hashable, float] = {flow.flow_id: 0.0 for flow in flows}
    remaining: Dict[ResourceId, float] = dict(capacities)
    active: Dict[Hashable, FlowSpec] = {flow.flow_id: flow for flow in flows}
    # current normalised fill level: every active flow has rate = level * weight
    level = 0.0

    max_iterations = len(flows) + len(capacities) + 1
    for _ in range(max_iterations):
        if not active:
            break

        # weight pressure on every resource from the still-active flows
        pressure: Dict[ResourceId, float] = {}
        for flow in active.values():
            for resource in flow.resources:
                pressure[resource] = pressure.get(resource, 0.0) + flow.weight

        # how much further the common level can rise before a constraint binds
        candidates: List[Tuple[float, str, Hashable]] = []
        for resource, weight_sum in pressure.items():
            if weight_sum <= 0:
                continue
            candidates.append((remaining[resource] / weight_sum, "resource", resource))
        for flow in active.values():
            headroom = (flow.cap - rates[flow.flow_id]) / flow.weight
            candidates.append((headroom, "cap", flow.flow_id))

        if not candidates:
            # every remaining flow has no resources and an infinite cap
            for flow_id in list(active):
                rates[flow_id] = float("inf")
            break

        increment = min(c[0] for c in candidates)
        increment = max(increment, 0.0)

        # raise every active flow by increment * weight and charge resources
        for flow in active.values():
            delta = increment * flow.weight
            rates[flow.flow_id] += delta
            for resource in flow.resources:
                remaining[resource] -= delta
        level += increment

        # freeze flows limited by a saturated constraint
        eps = 1e-12
        saturated_resources = {
            resource for resource, weight_sum in pressure.items()
            if remaining[resource] <= eps * max(1.0, capacities[resource])
        }
        to_freeze = []
        for flow_id, flow in active.items():
            cap_hit = rates[flow_id] >= flow.cap - eps * max(1.0, flow.cap if flow.cap != float("inf") else 1.0)
            resource_hit = any(r in saturated_resources for r in flow.resources)
            if cap_hit or resource_hit:
                to_freeze.append(flow_id)
        if not to_freeze:
            # numerical safety: freeze the tightest flow to guarantee progress
            tightest = min(
                active.values(),
                key=lambda f: min(
                    [remaining[r] for r in f.resources] + [f.cap - rates[f.flow_id]]
                ),
            )
            to_freeze.append(tightest.flow_id)
        for flow_id in to_freeze:
            active.pop(flow_id, None)
    else:  # pragma: no cover - the loop always terminates within the bound
        raise SimulationError("max-min allocation did not converge")

    # clamp tiny negative numerical noise
    return {flow_id: max(0.0, rate) for flow_id, rate in rates.items()}
