"""Bandwidth sharing solvers.

The cluster emulator allocates an instantaneous rate to every in-flight flow
by **progressive filling** (max-min fairness) over a set of capacity
constraints: each flow consumes capacity on a set of *resources* (source NIC
TX port, destination NIC RX port, intermediate links, the memory bus for
intra-node copies) and may additionally be limited by a per-flow cap (the
single-stream efficiency of the protocol).

The solver is deliberately generic — resources are opaque hashable
identifiers — so the same code serves the per-technology allocators of
:mod:`repro.network.ethernet` / ``myrinet`` / ``infiniband`` and the
fat-tree link sharing of :mod:`repro.network.topology`.

The implementation follows the textbook water-filling algorithm:

1. every unfrozen flow grows at the same rate;
2. the first constraint to saturate (a resource whose remaining capacity
   divided by its weight pressure is minimal, or a per-flow cap) freezes
   the flows it limits;
3. repeat until every flow is frozen.

Two implementations share that freeze-round structure:

* the **scalar reference** (``vectorized=False``) walks Python dicts — one
  loop iteration per flow and per resource touched, the historical code;
* the **array path** (``vectorized=True``) operates on a flow×resource
  incidence matrix in CSR style: two parallel index arrays ``(entry →
  flow, entry → resource)`` plus per-flow weight/cap and per-resource
  capacity vectors.  Each freeze round reduces over those arrays (weight
  pressure via ``np.add.at``, the binding constraint via array minima, the
  capacity charge via ``np.subtract.at``, the numerical-safety "tightest
  flow" via a masked ``argmin``) — no per-flow Python in the inner
  iteration.

**Bit-exactness contract**: the array path replicates the scalar loop
operation for operation — the per-entry accumulations of ``np.add.at`` /
``np.subtract.at`` apply in entry order, which is exactly the scalar
flow-major iteration order; every quotient, threshold and comparison uses
the same operands in the same association order; and ``np.argmin`` breaks
ties like the scalar first-minimum scan.  The two paths therefore return
**bit-identical** rates for any input, which
``tests/property/test_vectorized_sharing.py`` and
``tests/network/test_sharing_degenerate.py`` assert (including degenerate
inputs and weights spanning six orders of magnitude).  ``vectorized=None``
(the default) auto-dispatches by problem size — safe precisely because the
two paths cannot disagree.

Downstream, :class:`~repro.network.allocator.EmulatorRateProvider` feeds
these rates into the calendar's delta handoff; because the solver is
bit-exact across its own paths, the provider can hand the changed-value
diff back dict-, array- or slot-aligned (see ``docs/delta-handoff.md``)
without the tier choice ever leaking into simulated results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from .._numpy import np
from ..exceptions import SimulationError

__all__ = [
    "FlowSpec",
    "max_min_allocation",
    "weighted_max_min_allocation",
    "water_fill_arrays",
]

ResourceId = Hashable

#: saturation tolerance of the freeze rounds (both implementations)
_EPS = 1e-12

#: below this many flows the scalar loop wins on constant factors; the
#: dispatch is a pure performance choice because the paths are bit-exact
_VECTORIZED_MIN_FLOWS = 12


@dataclass(frozen=True)
class FlowSpec:
    """One flow handed to the sharing solver.

    ``resources`` is the collection of capacity constraints the flow consumes
    (its rate counts against each of them); ``cap`` is an optional individual
    rate ceiling; ``weight`` scales the flow's share in the weighted variant.
    """

    flow_id: Hashable
    resources: Tuple[ResourceId, ...]
    cap: float = float("inf")
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise SimulationError(f"flow {self.flow_id!r} has non-positive cap {self.cap}")
        if self.weight <= 0:
            raise SimulationError(f"flow {self.flow_id!r} has non-positive weight {self.weight}")


def max_min_allocation(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ResourceId, float],
    vectorized: Optional[bool] = None,
) -> Dict[Hashable, float]:
    """Max-min fair rates for ``flows`` under ``capacities``.

    Flows that reference a resource missing from ``capacities`` raise
    :class:`SimulationError` (it is always a programming error in the
    emulator).  Flows with no resources are only limited by their cap.

    >>> flows = [FlowSpec("a", ("tx0",)), FlowSpec("b", ("tx0",))]
    >>> rates = max_min_allocation(flows, {"tx0": 100.0})
    >>> rates["a"] == rates["b"] == 50.0
    True
    """
    return weighted_max_min_allocation(flows, capacities, vectorized=vectorized)


def weighted_max_min_allocation(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ResourceId, float],
    vectorized: Optional[bool] = None,
) -> Dict[Hashable, float]:
    """Weighted max-min fair allocation (weights scale each flow's share).

    ``vectorized`` selects the implementation: ``True`` forces the array
    path, ``False`` the scalar reference loop, ``None`` (default) picks by
    problem size.  The two are bit-exact (see the module docstring).
    """
    if not flows:
        return {}

    seen_ids = set()
    for flow in flows:
        if flow.flow_id in seen_ids:
            raise SimulationError(f"duplicate flow id {flow.flow_id!r}")
        seen_ids.add(flow.flow_id)
        for resource in flow.resources:
            if resource not in capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} uses unknown resource {resource!r}"
                )
    for resource, capacity in capacities.items():
        if capacity < 0:
            raise SimulationError(f"resource {resource!r} has negative capacity {capacity}")

    if vectorized is None:
        vectorized = len(flows) >= _VECTORIZED_MIN_FLOWS
    if vectorized:
        return _allocate_arrays(flows, capacities)
    return _allocate_scalar(flows, capacities)


# --------------------------------------------------------------- array path
def _allocate_arrays(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ResourceId, float],
) -> Dict[Hashable, float]:
    """Build the CSR-style incidence arrays and run the array water-filling."""
    res_index: Dict[ResourceId, int] = {}
    ent_flow: List[int] = []
    ent_res: List[int] = []
    # flow-major entry order: this is what makes the np.add.at/subtract.at
    # accumulations replicate the scalar loop's float operation order
    for position, flow in enumerate(flows):
        for resource in flow.resources:
            ent_flow.append(position)
            ent_res.append(res_index.setdefault(resource, len(res_index)))
    num_flows = len(flows)
    weights = np.fromiter((f.weight for f in flows), dtype=np.float64, count=num_flows)
    caps = np.fromiter((f.cap for f in flows), dtype=np.float64, count=num_flows)
    resource_caps = np.fromiter(
        (capacities[r] for r in res_index), dtype=np.float64, count=len(res_index)
    )
    rates = water_fill_arrays(
        weights,
        caps,
        np.asarray(ent_flow, dtype=np.int64),
        np.asarray(ent_res, dtype=np.int64),
        resource_caps,
        max_iterations=len(flows) + len(capacities) + 1,
    )
    return dict(zip((f.flow_id for f in flows), rates.tolist()))


def water_fill_arrays(
    weights: "np.ndarray",
    caps: "np.ndarray",
    ent_flow: "np.ndarray",
    ent_res: "np.ndarray",
    resource_caps: "np.ndarray",
    max_iterations: Optional[int] = None,
) -> "np.ndarray":
    """Water-filling freeze loop over a flow×resource incidence matrix.

    ``weights``/``caps`` are per-flow (length n); ``resource_caps`` is the
    per-resource capacity vector (length m); ``ent_flow``/``ent_res`` are
    the parallel entry arrays of the incidence matrix in flow-major order.
    Returns the per-flow rate vector (clamped at 0).  Bit-exact with the
    scalar loop of :func:`weighted_max_min_allocation` — see the module
    docstring for why the operation order matches.
    """
    num_flows = weights.shape[0]
    num_resources = resource_caps.shape[0]
    if max_iterations is None:
        max_iterations = num_flows + num_resources + 1
    rates = np.zeros(num_flows, dtype=np.float64)
    remaining = resource_caps.astype(np.float64, copy=True)
    # saturation threshold per resource: eps * max(1, original capacity)
    saturation = _EPS * np.maximum(1.0, resource_caps)
    # per-flow freeze threshold: cap - eps * max(1, cap) (1 for infinite caps)
    cap_freeze = caps - _EPS * np.maximum(1.0, np.where(np.isinf(caps), 1.0, caps))
    active = np.ones(num_flows, dtype=bool)

    for _ in range(max_iterations):
        if not active.any():
            break

        live = active[ent_flow]
        e_flow = ent_flow[live]
        e_res = ent_res[live]

        # weight pressure on every resource from the still-active flows
        pressure = np.zeros(num_resources, dtype=np.float64)
        np.add.at(pressure, e_res, weights[e_flow])
        touched = np.zeros(num_resources, dtype=bool)
        touched[e_res] = True

        # how much further the common level can rise before a constraint
        # binds: resource ratios and per-flow cap headrooms
        increment = np.inf
        if e_res.size:
            increment = float(np.min(remaining[touched] / pressure[touched]))
        headroom = (caps[active] - rates[active]) / weights[active]
        if headroom.size:
            increment = min(increment, float(np.min(headroom)))
        increment = max(increment, 0.0)

        # raise every active flow by increment * weight and charge resources
        delta = increment * weights
        rates[active] += delta[active]
        if e_res.size:
            np.subtract.at(remaining, e_res, delta[e_flow])

        # freeze flows limited by a saturated constraint
        saturated = touched & (remaining <= saturation)
        freeze = active & (rates >= cap_freeze)
        if saturated.any():
            freeze[e_flow[saturated[e_res]]] = True
        if not freeze.any():
            # numerical safety: freeze the tightest flow to guarantee progress
            tightness = np.where(active, caps - rates, np.inf)
            if e_res.size:
                np.minimum.at(tightness, e_flow, remaining[e_res])
            freeze[int(np.argmin(tightness))] = True
        active &= ~freeze
    if active.any():  # pragma: no cover - the loop always terminates within the bound
        raise SimulationError("max-min allocation did not converge")

    # clamp tiny negative numerical noise
    return np.maximum(0.0, rates)


# -------------------------------------------------------------- scalar path
def _allocate_scalar(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ResourceId, float],
) -> Dict[Hashable, float]:
    """The historical dict-walking loop, kept as the bit-exact reference."""
    rates: Dict[Hashable, float] = {flow.flow_id: 0.0 for flow in flows}
    remaining: Dict[ResourceId, float] = dict(capacities)
    active: Dict[Hashable, FlowSpec] = {flow.flow_id: flow for flow in flows}
    # current normalised fill level: every active flow has rate = level * weight
    level = 0.0

    max_iterations = len(flows) + len(capacities) + 1
    for _ in range(max_iterations):
        if not active:
            break

        # weight pressure on every resource from the still-active flows
        pressure: Dict[ResourceId, float] = {}
        for flow in active.values():
            for resource in flow.resources:
                pressure[resource] = pressure.get(resource, 0.0) + flow.weight

        # how much further the common level can rise before a constraint binds
        candidates: List[Tuple[float, str, Hashable]] = []
        for resource, weight_sum in pressure.items():
            if weight_sum <= 0:
                continue
            candidates.append((remaining[resource] / weight_sum, "resource", resource))
        for flow in active.values():
            headroom = (flow.cap - rates[flow.flow_id]) / flow.weight
            candidates.append((headroom, "cap", flow.flow_id))

        if not candidates:
            # every remaining flow has no resources and an infinite cap
            for flow_id in list(active):
                rates[flow_id] = float("inf")
            break

        increment = min(c[0] for c in candidates)
        increment = max(increment, 0.0)

        # raise every active flow by increment * weight and charge resources
        for flow in active.values():
            delta = increment * flow.weight
            rates[flow.flow_id] += delta
            for resource in flow.resources:
                remaining[resource] -= delta
        level += increment

        # freeze flows limited by a saturated constraint
        eps = _EPS
        saturated_resources = {
            resource for resource, weight_sum in pressure.items()
            if remaining[resource] <= eps * max(1.0, capacities[resource])
        }
        to_freeze = []
        for flow_id, flow in active.items():
            cap_hit = rates[flow_id] >= flow.cap - eps * max(1.0, flow.cap if flow.cap != float("inf") else 1.0)
            resource_hit = any(r in saturated_resources for r in flow.resources)
            if cap_hit or resource_hit:
                to_freeze.append(flow_id)
        if not to_freeze:
            # numerical safety: freeze the tightest flow to guarantee progress
            tightest = min(
                active.values(),
                key=lambda f: min(
                    [remaining[r] for r in f.resources] + [f.cap - rates[f.flow_id]]
                ),
            )
            to_freeze.append(tightest.flow_id)
        for flow_id in to_freeze:
            active.pop(flow_id, None)
    else:  # pragma: no cover - the loop always terminates within the bound
        raise SimulationError("max-min allocation did not converge")

    # clamp tiny negative numerical noise
    return {flow_id: max(0.0, rate) for flow_id, rate in rates.items()}
