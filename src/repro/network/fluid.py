"""Flow-level (fluid) network simulation.

Both sides of the paper's evaluation need to turn a set of concurrent
transfers into completion times:

* the **measured** side uses the cluster emulator's rate allocator
  (:mod:`repro.network.allocator`) as the rate provider;
* the **predicted** side uses a contention model wrapped by
  :class:`repro.simulator.predictor.ModelRateProvider`.

The machinery in between is identical and lives here: a fluid simulation that
keeps, for every in-flight transfer, its remaining byte count, refreshes the
rates whenever the set of active transfers changes (a transfer starts or
finishes), and advances time to the next such event.  This is the standard
flow-level approximation used by simulators such as SimGrid and is exact for
max-min style allocations that only change at flow arrival/departure.

Incremental recomputation contract: the simulator hands the *full* active
set to ``rate_provider.rates`` at every event, but providers are expected to
diff successive calls internally — :class:`repro.simulator.providers.ModelRateProvider`
re-prices only the conflict components dirtied by the arrivals/departures
since the previous call (memoizing repeated contention situations), and
:class:`repro.network.allocator.EmulatorRateProvider` memoizes whole sharing
situations by endpoint multiset.  The contract that makes this sound: the
rates returned for a given active set must not depend on *when* the provider
was previously queried, only on the set itself.  Any conforming provider can
therefore cache aggressively; the fluid loop never needs to know.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Protocol, Sequence, Tuple

from ..exceptions import SimulationError

__all__ = ["Transfer", "TransferResult", "RateProvider", "FluidTransferSimulator"]


@dataclass
class Transfer:
    """One point-to-point transfer handed to the fluid simulator."""

    transfer_id: Hashable
    src: int
    dst: int
    size: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(f"transfer {self.transfer_id!r} has negative size")
        if self.start_time < 0:
            raise SimulationError(f"transfer {self.transfer_id!r} starts before t=0")

    @property
    def is_intra_node(self) -> bool:
        return self.src == self.dst


@dataclass(frozen=True)
class TransferResult:
    """Completion record of one transfer."""

    transfer_id: Hashable
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


class RateProvider(Protocol):
    """Anything that can allocate instantaneous rates to concurrent transfers."""

    def rates(self, active: Sequence[Transfer]) -> Mapping[Hashable, float]:
        """Return the current rate (bytes/s) of every active transfer."""
        ...  # pragma: no cover - protocol


class FluidTransferSimulator:
    """Event-driven fluid simulation of a set of transfers.

    Parameters
    ----------
    rate_provider:
        Allocates instantaneous rates to the set of in-flight transfers.
    latency:
        Per-transfer startup latency in seconds, added before the first byte
        flows (one-way network latency plus protocol handshake).
    """

    #: bytes below which a transfer is considered finished (numerical guard)
    EPSILON_BYTES = 1e-6

    def __init__(self, rate_provider: RateProvider, latency: float = 0.0) -> None:
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency}")
        self.rate_provider = rate_provider
        self.latency = latency

    # ------------------------------------------------------------------- run
    def run(self, transfers: Sequence[Transfer]) -> Dict[Hashable, TransferResult]:
        """Simulate all ``transfers`` and return their completion records."""
        ids = [t.transfer_id for t in transfers]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate transfer ids in fluid simulation")
        if not transfers:
            return {}

        # transfers waiting for their (latency-shifted) start time
        pending: List[Tuple[float, int, Transfer]] = []
        counter = itertools.count()
        for transfer in transfers:
            heapq.heappush(pending, (transfer.start_time + self.latency, next(counter), transfer))

        remaining: Dict[Hashable, float] = {}
        active: Dict[Hashable, Transfer] = {}
        results: Dict[Hashable, TransferResult] = {}
        now = 0.0
        guard = 0
        max_events = 10 * len(transfers) + 10

        while pending or active:
            guard += 1
            if guard > max_events:
                raise SimulationError("fluid simulation exceeded its event budget")

            # activate transfers whose start time has been reached
            while pending and pending[0][0] <= now + 1e-15:
                _, _, transfer = heapq.heappop(pending)
                active[transfer.transfer_id] = transfer
                remaining[transfer.transfer_id] = float(transfer.size)

            # finish zero-byte transfers immediately
            for tid in [tid for tid, rem in remaining.items() if rem <= self.EPSILON_BYTES]:
                transfer = active.pop(tid)
                remaining.pop(tid)
                results[tid] = TransferResult(tid, transfer.start_time, now)

            if not active:
                if pending:
                    now = pending[0][0]
                    continue
                break

            rates = self.rate_provider.rates(list(active.values()))
            missing = [tid for tid in active if tid not in rates]
            if missing:
                raise SimulationError(f"rate provider returned no rate for {missing!r}")

            # time until the next completion at the current rates
            time_to_finish = math.inf
            for tid, transfer in active.items():
                rate = rates[tid]
                if rate < 0:
                    raise SimulationError(f"negative rate for transfer {tid!r}")
                if rate > 0:
                    time_to_finish = min(time_to_finish, remaining[tid] / rate)
            next_start = pending[0][0] if pending else math.inf
            if math.isinf(time_to_finish) and math.isinf(next_start):
                raise SimulationError(
                    "fluid simulation stalled: all active transfers have zero rate "
                    "and no new transfer will start"
                )

            horizon = min(now + time_to_finish, next_start)
            dt = max(0.0, horizon - now)
            for tid in active:
                remaining[tid] -= rates[tid] * dt
            now = horizon

            # collect completions
            finished = [tid for tid, rem in remaining.items() if rem <= self.EPSILON_BYTES]
            for tid in finished:
                transfer = active.pop(tid)
                remaining.pop(tid)
                results[tid] = TransferResult(tid, transfer.start_time, now)

        return results

    # ------------------------------------------------------------ conveniences
    def durations(self, transfers: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Duration (seconds) of every transfer, including the startup latency."""
        return {tid: result.duration for tid, result in self.run(transfers).items()}

    def makespan(self, transfers: Sequence[Transfer]) -> float:
        """Completion time of the last transfer."""
        results = self.run(transfers)
        return max((r.finish_time for r in results.values()), default=0.0)
