"""Flow-level (fluid) network simulation.

Both sides of the paper's evaluation need to turn a set of concurrent
transfers into completion times:

* the **measured** side uses the cluster emulator's rate allocator
  (:mod:`repro.network.allocator`) as the rate provider;
* the **predicted** side uses a contention model wrapped by
  :class:`repro.simulator.providers.ModelRateProvider`.

The machinery in between is identical and lives here: an **event-calendar**
fluid simulation that keeps, for every in-flight transfer, its remaining
byte count and a predicted completion entry in a lazy min-heap, refreshes
rates whenever the set of active transfers changes (a transfer starts or
finishes), and advances time to the next calendar entry.  This is the
standard flow-level approximation used by simulators such as SimGrid and is
exact for max-min style allocations that only change at flow
arrival/departure.

Delta recomputation contract
----------------------------
Rate providers expose two entry points:

* ``rates(active)`` — the historical full-set call: the rate (bytes/s) of
  every transfer in ``active``.  The rates returned for a given active set
  must not depend on *when* the provider was previously queried, only on
  the set itself — any conforming provider can cache aggressively.
* ``update(added, removed) -> changed`` — the delta call: apply the flow
  arrivals (``added``, :class:`Transfer` objects) and departures
  (``removed``, transfer ids) and return the rates of exactly the transfers
  that were **re-priced** — every added transfer plus any incumbent whose
  rate may have changed (for the model-side provider that is the membership
  of the conflict components dirtied by the delta, straight out of
  :class:`repro.core.incremental.IncrementalPenaltyEngine`; for the
  emulator it is the value-diff of the re-solved allocation).  Transfers
  absent from the returned mapping are guaranteed to keep their previous
  rate, which is what lets the calendar leave their predicted completion
  untouched.  Providers may also expose ``reset()`` to drop the tracked
  active set between independent runs (memo caches survive a reset).

Providers can additionally opt into two faster *array* variants of the
delta call — same semantics, cheaper handoff; the calendar probes for
them at construction and uses the fastest one available when running
vectorized and untraced:

* ``update_arrays(added, removed) -> (tids, rates)`` — the changed set as
  a parallel id list + float64 ndarray instead of a dict, so the
  vectorized apply consumes the provider's arrays without building (and
  immediately unpacking) a mapping.
* ``update_slots(added, added_slots, removed) -> (tids, slots, rates)`` —
  the slot-handle tier: at flush the calendar passes each arrival's
  structure-of-arrays *slot index* alongside the :class:`Transfer`; the
  provider stores the handles and returns every subsequent changed set
  already slot-aligned (intp ndarray), eliminating the per-flush
  tid→slot hash gather entirely.  Returned slots are authoritative —
  the provider must report only transfers it was handed and not yet
  removed.  When a rate-scale hook is installed the calendar skips this
  tier (scaling needs the per-id path), falling back to
  ``update_arrays`` or ``update``; the :meth:`TransferCalendar.reprice`
  that accompanies clearing the scale re-seeds the handles and re-enters
  the slot tier.  Stall retries and reprices ride the same tier as
  ordinary flushes, so a slot-tier provider's handle bookkeeping stays
  consistent through the departure+arrival retry cycle.

Both built-in providers speak all three tiers
(:class:`repro.simulator.providers.ModelRateProvider` threads slot handles
through the incremental pricing engine's component bookkeeping;
:class:`repro.network.allocator.EmulatorRateProvider` stores them in its
endpoint-pair buckets).  All three tiers are bit-exact with one another:
they must report the same transfers in the same order with identical
float64 values, which the calendar turns into identical epoch bumps, seq
numbers and heap entries.  Which tier served each flush is counted in
``CalendarStats.handoff_tier_slots``/``_arrays``/``_dict``.  The full tier
contract, including slot-map ownership rules, is documented in
``docs/delta-handoff.md``.

Calendar invariants
-------------------
:class:`TransferCalendar` maintains, per in-flight transfer, ``remaining``
bytes, the current ``rate``, the time the rate was last applied from, and an
``epoch`` counter; the min-heap holds ``(predicted_completion, seq, id,
epoch)`` entries.

* **Epoch-stale entries**: re-timing a transfer bumps its epoch and pushes a
  fresh entry; superseded entries stay in the heap and are discarded when
  they surface (their epoch no longer matches).  Entries of departed
  transfers are discarded the same way.
* **Re-timing rule**: a transfer is re-timed (remaining bytes integrated at
  the old rate up to "now", then a new completion predicted at the new
  rate) only when the provider returns a rate whose *value* differs from
  the stored one.  A re-priced transfer whose rate came back unchanged
  keeps its calendar entry bit-for-bit, so the provider may over-report —
  correctness only requires that every actual change is reported.
* **Completion rule**: when an entry surfaces at or before the simulation
  clock, the transfer's remaining bytes are integrated; it completes when
  they are negligible (≤ :attr:`~TransferCalendar.EPSILON_BYTES`) or when
  the time still needed at the current rate is below the clock resolution.
  A non-negligible pop (floating-point drift) re-times instead of
  completing, so the calendar can never lose a transfer.
* **Heap compaction**: lazy deletion leaves one superseded entry behind per
  re-timing, so a long run with frequent rate changes would grow the heap
  without bound.  Whenever the heap exceeds
  :attr:`~TransferCalendar.COMPACT_MIN_HEAP` entries *and* more than half of
  them are provably stale (a flight owns at most one live entry, so
  ``len(heap) > 2 × len(flights)`` implies a stale majority), the heap is
  rebuilt in place keeping only current-epoch entries of live flights.
  Compacted-away entries count into ``CalendarStats.stale_entries`` exactly
  as if they had surfaced and been discarded; ``CalendarStats.compactions``
  counts the rebuilds.  Compaction is checked once after every applied
  changed set (scalar and array paths alike), after every drift re-timing
  in the pop loop and after every :meth:`cancel` (a cancel-heavy workload
  grows only stale entries, so re-timings alone would never trigger it),
  so the heap stays ``max(COMPACT_MIN_HEAP, 2 × active)``-bounded after
  every mutating call, and all paths compact at the same program points.
* **Zero-rate flights**: a flight whose applied rate is ``<= 0`` gets no
  calendar entry (nothing to predict).  The calendar tracks these in a
  *stalled* set; in delta mode every subsequent :meth:`flush` re-rates them
  through a departure+arrival cycle of the delta API (which dirties their
  conflict component, forcing the provider to re-report them), so a
  transfer zero-rated by an under-reporting provider resurfaces as soon as
  anything else changes instead of starving silently.  When nothing else
  will ever change, the simulation loops fail fast with a diagnostic naming
  the starved transfer ids (:meth:`TransferCalendar.stalled_ids`).
* **Error atomicity**: the pending arrival/departure queues are cleared only
  after the provider query returns.  A provider that raises mid-flush
  leaves the calendar consistent — the same flush can be retried (or the
  error handled) without losing the delta.

Interference injection
----------------------
The calendar is deliberately agnostic about *who* owns a transfer:
foreground MPI traffic and injected background flows
(:mod:`repro.simulator.interference`) ride the same heap and the same
delta path, so injected flows contend in the rate provider exactly like
foreground ones.  Two hooks exist for injectors:

* :meth:`TransferCalendar.set_rate_scale` installs a post-provider rate
  multiplier (link degradation windows); because scaled rates feed the
  value-compare in ``_apply_rate``, the scale must only change at
  :meth:`TransferCalendar.reprice` boundaries;
* :meth:`TransferCalendar.reprice` forces a full re-rate of every in-flight
  transfer through ``provider.reset()`` + a full re-add — the re-rate hook
  for capacity changes that the delta contract cannot express.

With no injectors installed (no scale hook, no reprice calls) every code
path is bit-for-bit identical to the pre-injection calendar.

Array formulation (``vectorized=True``)
---------------------------------------
The scalar calendar keeps one ``_Flight`` object per transfer and walks a
Python loop per changed rate.  With ``vectorized=True`` (the default) the
same state lives in dense **structure-of-arrays** storage
(:class:`_FlightArrays`): parallel numpy arrays ``remaining`` / ``rate`` /
``last_update`` (float64), ``epoch`` (int64) and ``rated`` (bool), indexed
by an integer *slot* per in-flight transfer.  A :class:`SlotMap` maintains
the tid↔slot mapping — the same dense-slot-plus-free-list discipline the
emulator allocator uses for its incidence arrays.  Slot-map invariants:

* every active tid owns exactly one slot; ``SlotMap.slot_of`` preserves
  *activation order* (so full-set provider queries, missing-rate scans and
  :meth:`reprice` enumerate transfers in the same order as the scalar
  ``_flights`` dict);
* released slots go to a free-list and are reused LIFO; array cells of
  free slots are garbage and are never read (liveness is defined by
  ``slot_of`` membership, not by array contents);
* arrays grow by doubling and never shrink — the slot high-water mark
  bounds their length.

On that substrate a flush applies the provider's changed set in one numpy
batch: gather old rates by slot, mask the entries whose rate *value*
actually changed, integrate ``remaining -= rate · dt`` and predict
``now + remaining / rate`` for the whole changed set elementwise, then
insert the fresh heap entries either one ``heappush`` at a time or — when
the batch has at least :attr:`~TransferCalendar.BULK_HEAPIFY_MIN` entries
and is at least a quarter of the current heap size — by a single
list-extend + ``heapify`` rebuild (O(heap) once beats O(k·log heap) pushes
precisely in that regime).  Compaction under the array path evaluates the
epoch-liveness mask with one vectorized compare instead of a per-entry
attribute walk.

The batch is **bit-exact** with the scalar loop: numpy float64 elementwise
arithmetic performs the same IEEE-754 operations in the same per-flight
order, heap entries carry unique ``(completion, seq)`` keys so the pop
stream is a pure function of the entry *set* (never of the heap's internal
arrangement), and seq numbers are drawn in the same changed-set order.
Tracing never changes the strategy: the batch emits
``calendar.stall``/``calendar.retime`` records per flight in changed order
— the exact interleaving the scalar loop produces — and every path checks
compaction once per apply (not per push), so traced, untraced, scalar and
array runs see the same heap evolution and report the same stats.
Property-tested across vectorized×delta × both provider families in
``tests/property/test_vectorized_calendar.py``.

Simulation cost therefore scales with *state changes* (how many transfers
each arrival/departure re-prices) rather than with the size of the active
set: per event the provider prices one dirtied conflict component and the
calendar re-times only the transfers inside it.

Calendar trace events
---------------------
When a :class:`repro.trace.TraceSink` is attached (``trace=`` on the
calendar or the simulator), the calendar emits one structured
:class:`~repro.trace.TraceRecord` per state change.  What each kind means,
in terms of the invariants above:

* ``calendar.activate`` — a transfer joined the in-flight set (it becomes
  part of the next flush's arrival delta); payload carries ``src``/``dst``/
  ``size``.
* ``calendar.complete`` — a due heap entry surfaced with negligible
  remaining bytes and the transfer left the calendar (it joins the next
  flush's departure delta).
* ``calendar.cancel`` — a transfer was removed *before* completing (injector
  deactivation); ``remaining`` is the un-transferred byte count at the
  cancel instant.
* ``calendar.retime`` — a rate-*value* change (or fp-drift re-pop) bumped a
  flight's epoch and pushed a fresh completion entry; payload carries the
  new ``rate``, ``remaining`` bytes and predicted ``completion``.  The
  superseded entry dies lazily.
* ``calendar.flush`` — one provider query (delta or full): ``added``/
  ``removed`` are the delta sizes, ``changed`` how many rates came back,
  ``active`` the in-flight count — the per-step work the scale benchmark
  tracks.
* ``calendar.reprice`` — a forced full re-rate (provider ``reset()`` +
  re-add), the injector hook for capacity changes outside the delta
  contract.
* ``calendar.compaction`` — the lazy-deletion heap was rebuilt in place
  because stale entries held the majority; ``dropped``/``kept`` count the
  entries discarded/retained.
* ``calendar.stall`` — a flight's applied rate dropped to ``<= 0``; it has
  no heap entry and sits in the stalled set until re-rated.
* ``calendar.stall_retry`` — stalled flights were forced back through the
  delta API (departure+arrival cycle); ``count`` is how many, ``ids`` names
  the first :attr:`~TransferCalendar.STALL_RETRY_TRACE_IDS` of them (a
  persistent stall re-emits this record every flush, so the payload is
  bounded instead of carrying the full stringified id list each time).

With ``trace=None`` (or a disabled sink) no record is ever constructed and
every code path is bit-exact with the untraced calendar — property-tested
in ``tests/property/test_trace_properties.py``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from operator import itemgetter
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from .._numpy import np
from ..exceptions import SimulationError
from ..trace.records import SnapshotBase, TraceRecord, emit_inject_apply
from ..trace.sinks import TraceSink, active_sink

__all__ = [
    "Transfer",
    "TransferResult",
    "RateProvider",
    "DeltaRateProvider",
    "CalendarStats",
    "CalendarStatsSnapshot",
    "SlotMap",
    "TransferCalendar",
    "RateScaleRegistry",
    "FluidTransferSimulator",
]


class SlotMap:
    """Dense integer slots for hashable keys, with LIFO free-list reuse.

    The tid↔slot discipline shared by the vectorized calendar's
    structure-of-arrays flight store and the emulator allocator's persistent
    resource index: keys acquire the lowest-overhead available slot (a freed
    one if any, else the high-water mark), so parallel arrays indexed by
    slot stay dense and bounded by the peak live-set size.

    ``slot_of`` is the public key → slot mapping; its iteration order is
    *acquisition order* of the currently live keys (a plain insertion-ordered
    dict), which callers rely on to enumerate keys deterministically.
    """

    __slots__ = ("slot_of", "_free", "capacity")

    def __init__(self) -> None:
        self.slot_of: Dict[Hashable, int] = {}
        self._free: List[int] = []
        #: slot high-water mark — parallel arrays must hold at least this many cells
        self.capacity = 0

    def __len__(self) -> int:
        return len(self.slot_of)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.slot_of

    def get(self, key: Hashable, default: Optional[int] = None) -> Optional[int]:
        return self.slot_of.get(key, default)

    def acquire(self, key: Hashable) -> int:
        """Assign a slot to ``key`` (which must not currently hold one)."""
        free = self._free
        if free:
            slot = free.pop()
        else:
            slot = self.capacity
            self.capacity += 1
        self.slot_of[key] = slot
        return slot

    def release(self, key: Hashable) -> int:
        """Return ``key``'s slot to the free-list; raises ``KeyError`` if absent."""
        slot = self.slot_of.pop(key)
        self._free.append(slot)
        return slot

    def clear(self) -> None:
        self.slot_of.clear()
        self._free.clear()
        self.capacity = 0


@dataclass
class Transfer:
    """One point-to-point transfer handed to the fluid simulator."""

    transfer_id: Hashable
    src: int
    dst: int
    size: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SimulationError(f"transfer {self.transfer_id!r} has negative size")
        if self.start_time < 0:
            raise SimulationError(f"transfer {self.transfer_id!r} starts before t=0")

    @property
    def is_intra_node(self) -> bool:
        return self.src == self.dst


@dataclass(frozen=True)
class TransferResult:
    """Completion record of one transfer."""

    transfer_id: Hashable
    start_time: float
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time


class RateProvider(Protocol):
    """Anything that can allocate instantaneous rates to concurrent transfers."""

    def rates(self, active: Sequence[Transfer]) -> Mapping[Hashable, float]:
        """Return the current rate (bytes/s) of every active transfer."""
        ...  # pragma: no cover - protocol


class DeltaRateProvider(RateProvider, Protocol):
    """A rate provider that can report exactly which transfers were re-priced.

    See the module docstring for the contract; the shipped
    :class:`repro.simulator.providers.ModelRateProvider` and
    :class:`repro.network.allocator.EmulatorRateProvider` both implement it,
    with ``rates()`` kept as a compatibility shim.
    """

    def update(
        self, added: Sequence[Transfer], removed: Sequence[Hashable]
    ) -> Mapping[Hashable, float]:
        """Apply a flow delta; return the rates of the re-priced transfers."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class CalendarStatsSnapshot(SnapshotBase):
    """Immutable, typed view of one calendar's work counters.

    Replaces the raw dicts the calendar used to hand out; dict-style access
    (``snapshot["rate_updates"]``, ``**snapshot``) still works through
    :class:`~repro.trace.SnapshotBase`, and :meth:`~repro.trace.SnapshotBase.
    as_dict` returns exactly the historical flat shape.
    """

    flushes: int = 0
    rate_updates: int = 0
    retimed: int = 0
    activations: int = 0
    completions: int = 0
    stale_entries: int = 0
    active_at_flush: int = 0
    compactions: int = 0
    cancelled: int = 0
    stall_retries: int = 0
    bulk_merges: int = 0
    bulk_entries: int = 0
    handoff_tier_slots: int = 0
    handoff_tier_arrays: int = 0
    handoff_tier_dict: int = 0


@dataclass
class CalendarStats:
    """Work counters of one :class:`TransferCalendar` (benchmark instrumentation)."""

    #: rate refreshes pushed to the provider (≤ one per simulation step)
    flushes: int = 0
    #: rate entries the provider returned across all flushes — the per-step
    #: engine work the scale benchmark compares against the active-set size
    rate_updates: int = 0
    #: completion entries recomputed because a rate value actually changed
    retimed: int = 0
    #: transfers that entered the calendar
    activations: int = 0
    #: transfers that completed
    completions: int = 0
    #: superseded heap entries discarded (on surfacing or by compaction)
    stale_entries: int = 0
    #: running sum of the active-set size at each flush — baseline for rate_updates
    active_at_flush: int = 0
    #: in-place heap rebuilds triggered by a stale-entry majority
    compactions: int = 0
    #: transfers removed before completion (injector deactivations)
    cancelled: int = 0
    #: forced re-rates of zero-rated flights through the delta API
    stall_retries: int = 0
    #: bulk heapify-merges of batched re-timings (array path only)
    bulk_merges: int = 0
    #: heap entries inserted through bulk merges (⊆ ``retimed``)
    bulk_entries: int = 0
    #: flushes served by each provider handoff tier (slots/arrays/dict);
    #: strategy counters — they differ between scalar and vectorized runs
    handoff_tier_slots: int = 0
    handoff_tier_arrays: int = 0
    handoff_tier_dict: int = 0

    def freeze(self) -> CalendarStatsSnapshot:
        """Typed immutable snapshot of the current counter values."""
        return CalendarStatsSnapshot(
            flushes=self.flushes,
            rate_updates=self.rate_updates,
            retimed=self.retimed,
            activations=self.activations,
            completions=self.completions,
            stale_entries=self.stale_entries,
            active_at_flush=self.active_at_flush,
            compactions=self.compactions,
            cancelled=self.cancelled,
            stall_retries=self.stall_retries,
            bulk_merges=self.bulk_merges,
            bulk_entries=self.bulk_entries,
            handoff_tier_slots=self.handoff_tier_slots,
            handoff_tier_arrays=self.handoff_tier_arrays,
            handoff_tier_dict=self.handoff_tier_dict,
        )

    def snapshot(self) -> Dict[str, int]:
        """Flat dict view (compatibility shim over :meth:`freeze`)."""
        return self.freeze().as_dict()


class _Flight:
    """Calendar-side state of one in-flight transfer."""

    __slots__ = ("transfer", "remaining", "rate", "rated", "last_update", "epoch")

    def __init__(self, transfer: Transfer, remaining: float, now: float) -> None:
        self.transfer = transfer
        self.remaining = remaining
        self.rate = 0.0
        self.rated = False
        self.last_update = now
        self.epoch = 0


class _FlightArrays:
    """Structure-of-arrays flight store of the vectorized calendar.

    The same per-flight fields as :class:`_Flight`, as dense slot-indexed
    numpy arrays (see the module docstring's array-formulation section for
    the invariants).  ``transfer`` is a parallel Python list (the only
    per-flight object field); ``unrated`` counts live flights whose rate has
    never been applied, so the delta-mode missing-rate scan can be skipped
    entirely in the steady state.
    """

    __slots__ = ("slots", "transfer", "remaining", "rate", "last_update",
                 "epoch", "rated", "unrated")

    #: initial array capacity (doubles on growth)
    GROW_MIN = 16

    def __init__(self) -> None:
        self.slots = SlotMap()
        self.transfer: List[Optional[Transfer]] = []
        self.remaining = np.zeros(0, dtype=np.float64)
        self.rate = np.zeros(0, dtype=np.float64)
        self.last_update = np.zeros(0, dtype=np.float64)
        self.epoch = np.zeros(0, dtype=np.int64)
        self.rated = np.zeros(0, dtype=bool)
        self.unrated = 0

    def _grow(self, needed: int) -> None:
        cap = max(self.GROW_MIN, 2 * len(self.transfer))
        while cap < needed:
            cap *= 2
        pad = cap - len(self.transfer)
        self.transfer.extend([None] * pad)
        self.remaining = np.concatenate([self.remaining, np.zeros(pad)])
        self.rate = np.concatenate([self.rate, np.zeros(pad)])
        self.last_update = np.concatenate([self.last_update, np.zeros(pad)])
        self.epoch = np.concatenate([self.epoch, np.zeros(pad, dtype=np.int64)])
        self.rated = np.concatenate([self.rated, np.zeros(pad, dtype=bool)])

    def add(self, tid: Hashable, transfer: Transfer, remaining: float,
            now: float) -> int:
        slot = self.slots.acquire(tid)
        if slot >= len(self.transfer):
            self._grow(slot + 1)
        self.transfer[slot] = transfer
        self.remaining[slot] = remaining
        self.rate[slot] = 0.0
        self.last_update[slot] = now
        self.epoch[slot] = 0
        self.rated[slot] = False
        self.unrated += 1
        return slot

    def remove(self, tid: Hashable) -> int:
        slot = self.slots.release(tid)
        self.transfer[slot] = None
        if not self.rated[slot]:
            self.unrated -= 1
        return slot

    def transfers(self) -> List[Transfer]:
        """Live transfers in activation order (the scalar ``_flights`` order)."""
        transfer = self.transfer
        return [transfer[slot] for slot in self.slots.slot_of.values()]


class TransferCalendar:
    """Lazy min-heap of predicted transfer completions over a rate provider.

    The shared event-calendar core of both fluid loops — the standalone
    :class:`FluidTransferSimulator` and the execution engine
    (:mod:`repro.simulator.engine`) drive the same instance type, so the
    prediction and emulation paths share one integration/re-timing code
    path.  See the module docstring for the invariants.

    Parameters
    ----------
    rate_provider:
        The provider; when it implements ``update`` (the delta contract)
        each flush hands it only the arrivals/departures since the previous
        flush.  A rates-only provider is re-queried with the full active set
        and the changed rates are found by value-diff — semantically
        identical, O(active) per flush.
    delta:
        ``None`` (default) auto-detects ``update``; ``False`` forces the
        full-query path even for delta providers (the verification mode the
        property tests compare against); ``True`` requires a delta provider.
    missing_rate:
        What to do when the provider returns no rate for a live transfer:
        ``"error"`` raises (the fluid simulator's historical behaviour),
        ``"zero"`` treats it as a zero rate (the execution engine's).
    trace:
        Optional :class:`repro.trace.TraceSink`; when attached the calendar
        emits one ``calendar.*`` record per state change (see the module
        docstring).  ``None`` or a disabled sink costs one pointer test per
        site — the untraced paths are bit-exact.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; when attached every
        flush is timed into the ``calendar.flush_s`` phase timer (1-in-N
        sampled when the registry sets
        :attr:`~repro.obs.MetricsRegistry.timer_sample_every`).  Mirrors
        the trace contract: ``None`` costs one pointer test per flush.
    vectorized:
        When True (default), flight state lives in the structure-of-arrays
        store and batched rate applications run through numpy — bit-exact
        with the scalar path (see the module docstring's array-formulation
        section).  ``False`` keeps the historical per-``_Flight``-object
        path (the verification twin the property tests compare against).
    """

    EPSILON = 1e-12
    EPSILON_BYTES = 1e-6
    #: heaps smaller than this are never compacted (compaction is O(heap))
    COMPACT_MIN_HEAP = 64
    #: batched re-timings below this count use per-entry ``heappush``; at or
    #: above it (and when the batch is ≥ ¼ of the heap) a single
    #: extend+``heapify`` rebuild is cheaper — identical pop stream either way
    BULK_HEAPIFY_MIN = 8
    #: changed sets below this size take the per-flight loop (array dispatch
    #: overhead beats the win on tiny batches); never depends on tracing
    BATCH_MIN = 4
    #: ``calendar.stall_retry`` payloads name at most this many ids
    STALL_RETRY_TRACE_IDS = 8

    def __init__(
        self,
        rate_provider: RateProvider,
        delta: Optional[bool] = None,
        missing_rate: str = "error",
        trace: Optional[TraceSink] = None,
        metrics=None,
        vectorized: bool = True,
    ) -> None:
        if missing_rate not in ("error", "zero"):
            raise SimulationError(f"unknown missing_rate policy {missing_rate!r}")
        has_update = callable(getattr(rate_provider, "update", None))
        if delta is True and not has_update:
            raise SimulationError(
                "delta=True requires a rate provider with an update() method"
            )
        self.provider = rate_provider
        self.delta = has_update if delta is None else bool(delta)
        self.missing_rate = missing_rate
        self.vectorized = bool(vectorized)
        self._trace = active_sink(trace)
        self._flush_timer = metrics.timer("calendar.flush_s") if metrics is not None else None
        self.stats = CalendarStats()
        self._flights: Dict[Hashable, _Flight] = {}
        #: structure-of-arrays flight store; ``None`` on the scalar path
        self._arr: Optional[_FlightArrays] = _FlightArrays() if self.vectorized else None
        #: array-handoff delta entry point of the provider, when it has one
        update_arrays = getattr(rate_provider, "update_arrays", None)
        self._update_arrays = update_arrays if callable(update_arrays) else None
        #: slot-handle handoff (the fastest tier): the provider keeps the
        #: slot index the calendar assigned at activation and returns rates
        #: already slot-aligned — no per-flush hash gather at all
        update_slots = getattr(rate_provider, "update_slots", None)
        self._update_slots = update_slots if callable(update_slots) else None
        self._heap: List[Tuple[float, int, Hashable, int]] = []
        self._seq = itertools.count()
        self._pending_added: Dict[Hashable, Transfer] = {}
        self._pending_removed: List[Hashable] = []
        #: flights whose applied rate is <= 0 (insertion-ordered for diagnostics)
        self._stalled: Dict[Hashable, None] = {}
        #: post-provider rate multiplier (interference hook); ``None`` = off
        self._rate_scale: Optional[Callable[[Transfer], float]] = None

    # --------------------------------------------------------------- queries
    @property
    def active_count(self) -> int:
        if self._arr is not None:
            return len(self._arr.slots)
        return len(self._flights)

    def remaining(self, tid: Hashable) -> float:
        """Remaining bytes as of the flight's last integration point."""
        if self._arr is not None:
            return float(self._arr.remaining[self._arr.slots.slot_of[tid]])
        return self._flights[tid].remaining

    def is_active(self, tid: Hashable) -> bool:
        if self._arr is not None:
            return tid in self._arr.slots
        return tid in self._flights

    def stalled_ids(self) -> Tuple[Hashable, ...]:
        """Ids of flights currently zero-rated (no calendar entry), in order."""
        return tuple(self._stalled)

    def _live_epoch(self, tid: Hashable) -> Optional[int]:
        """Current epoch of a live flight, or ``None`` when departed."""
        if self._arr is not None:
            slot = self._arr.slots.slot_of.get(tid)
            return None if slot is None else int(self._arr.epoch[slot])
        flight = self._flights.get(tid)
        return None if flight is None else flight.epoch

    def next_time(self) -> Optional[float]:
        """Earliest valid predicted completion, or ``None``."""
        while self._heap:
            time, _, tid, epoch = self._heap[0]
            if self._live_epoch(tid) != epoch:
                heapq.heappop(self._heap)
                self.stats.stale_entries += 1
                continue
            return time
        return None

    # -------------------------------------------------------------- mutation
    def activate(self, transfer: Transfer, now: float) -> None:
        """A transfer starts progressing at ``now`` (joins the next flush)."""
        tid = transfer.transfer_id
        arr = self._arr
        if arr is not None:
            if tid in arr.slots:
                raise SimulationError(f"transfer {tid!r} is already active")
            arr.add(tid, transfer, float(transfer.size), now)
        else:
            if tid in self._flights:
                raise SimulationError(f"transfer {tid!r} is already active")
            self._flights[tid] = _Flight(transfer, float(transfer.size), now)
        self._pending_added[tid] = transfer
        self.stats.activations += 1
        if self._trace is not None:
            self._trace.emit(TraceRecord(now, "calendar.activate", tid, {
                "src": transfer.src, "dst": transfer.dst, "size": transfer.size,
            }))

    def cancel(self, tid: Hashable, now: float) -> Transfer:
        """Remove an in-flight transfer without completing it.

        The departure joins the next flush (unless the transfer was never
        flushed to the provider, in which case it simply vanishes).  Used by
        interference injectors to deactivate background flows; heap entries
        of the cancelled flight die lazily like any other stale entry — but
        compaction is checked here too, so a cancel-heavy workload (which
        creates stale entries without ever re-timing) keeps the heap bound.
        """
        arr = self._arr
        if arr is not None:
            slot = arr.slots.slot_of.get(tid)
            if slot is None:
                raise SimulationError(f"cannot cancel unknown transfer {tid!r}")
            self._integrate_slot(slot, now)
            remaining = float(arr.remaining[slot])
            transfer = arr.transfer[slot]
            arr.remove(tid)
        else:
            flight = self._flights.pop(tid, None)
            if flight is None:
                raise SimulationError(f"cannot cancel unknown transfer {tid!r}")
            self._integrate(flight, now)
            remaining = flight.remaining
            transfer = flight.transfer
        if tid in self._pending_added:
            del self._pending_added[tid]  # the provider never saw it
        else:
            self._pending_removed.append(tid)
        self._stalled.pop(tid, None)
        self.stats.cancelled += 1
        if self._trace is not None:
            self._trace.emit(TraceRecord(now, "calendar.cancel", tid, {
                "remaining": remaining,
            }))
        self._maybe_compact(now)
        return transfer

    def set_rate_scale(self, scale: Optional[Callable[[Transfer], float]]) -> None:
        """Install (or clear) a post-provider rate multiplier.

        The scaled rate feeds the value-compare of the re-timing rule, so the
        installed function must be pure and may only change together with a
        :meth:`reprice` call — otherwise already-applied rates would keep the
        old scale.  ``None`` restores the unscaled (bit-exact) path.

        While a scale is installed, flushes skip the slot tier (scaling
        needs the per-id path); the :meth:`reprice` that accompanies
        clearing the scale re-seeds the provider's slot handles, so the
        downgrade lasts exactly as long as the scale window.
        """
        self._rate_scale = scale

    def _integrate(self, flight: _Flight, now: float) -> None:
        if flight.rated and flight.rate > 0.0:
            dt = now - flight.last_update
            if dt > 0.0:
                flight.remaining -= flight.rate * dt
        flight.last_update = now

    def _retime(self, tid: Hashable, flight: _Flight, now: float) -> None:
        # compaction is NOT checked here: every caller checks it once after
        # its whole batch of re-timings (end of _apply_changed, the pop_due
        # drift branch, cancel), so the scalar and batched-array paths
        # compact at the same program points with the same heap contents
        flight.epoch += 1
        if flight.rated and flight.rate > 0.0:
            completion = now + flight.remaining / flight.rate
            heapq.heappush(self._heap, (completion, next(self._seq), tid, flight.epoch))
            self.stats.retimed += 1
            if self._trace is not None:
                self._trace.emit(TraceRecord(now, "calendar.retime", tid, {
                    "rate": flight.rate, "remaining": flight.remaining,
                    "completion": completion,
                }))

    # ------------------------------------------------- array-path primitives
    def _integrate_slot(self, slot: int, now: float) -> None:
        # the scalar _integrate over the SoA store: same operations on the
        # same float64 values, so the stored bytes are bit-identical
        arr = self._arr
        if arr.rated[slot]:
            rate = arr.rate[slot]
            if rate > 0.0:
                dt = now - arr.last_update[slot]
                if dt > 0.0:
                    arr.remaining[slot] = arr.remaining[slot] - rate * dt
        arr.last_update[slot] = now

    def _retime_slot(self, tid: Hashable, slot: int, now: float) -> None:
        arr = self._arr
        epoch = int(arr.epoch[slot]) + 1
        arr.epoch[slot] = epoch
        if arr.rated[slot]:
            rate = arr.rate[slot]
            if rate > 0.0:
                # heap entries hold Python floats/ints (never numpy scalars:
                # they would leak into results and JSON trace payloads)
                completion = float(now + arr.remaining[slot] / rate)
                heapq.heappush(self._heap, (completion, next(self._seq), tid, epoch))
                self.stats.retimed += 1
                if self._trace is not None:
                    self._trace.emit(TraceRecord(now, "calendar.retime", tid, {
                        "rate": float(rate),
                        "remaining": float(arr.remaining[slot]),
                        "completion": completion,
                    }))

    def _apply_rate_slot(self, tid: Hashable, slot: int, rate: float,
                         now: float) -> None:
        # the scalar _apply_rate over the SoA store (same order of effects,
        # including the stall-trace-before-value-compare interleaving)
        arr = self._arr
        if self._rate_scale is not None:
            rate = rate * self._rate_scale(arr.transfer[slot])
        if rate <= 0.0:
            if self._trace is not None and tid not in self._stalled:
                self._trace.emit(TraceRecord(now, "calendar.stall", tid,
                                             {"rate": float(rate)}))
            self._stalled[tid] = None
        else:
            self._stalled.pop(tid, None)
        if arr.rated[slot] and rate == arr.rate[slot]:
            return  # value unchanged: the calendar entry stays valid
        self._integrate_slot(slot, now)
        arr.rate[slot] = rate
        if not arr.rated[slot]:
            arr.rated[slot] = True
            arr.unrated -= 1
        self._retime_slot(tid, slot, now)

    def _maybe_compact(self, now: float, fresh: int = 0) -> None:
        # every flight owns at most one live entry, so heap > 2*flights means
        # the stale entries hold the majority: rebuild in place (amortized
        # O(1) per push — the heap must double through pushes to re-trigger).
        # ``fresh`` > 0 means _apply_batch just appended that many known-live
        # entries WITHOUT sifting (deferred bulk merge): whatever happens,
        # this call restores the heap invariant — either the compaction
        # rebuild heapifies anyway (skipping the fresh tail in its liveness
        # scan), or the no-compaction exit heapifies the merged heap.
        arr = self._arr
        active = len(arr.slots) if arr is not None else len(self._flights)
        heap = self._heap
        if (len(heap) < self.COMPACT_MIN_HEAP
                or len(heap) <= 2 * active):
            if fresh:
                heapq.heapify(heap)
            return
        if arr is not None:
            # vectorized epoch-liveness mask: gather each entry's slot (−1
            # when the flight departed) and compare stored vs entry epochs
            # in one array op; the per-entry extraction runs entirely at
            # C level (map/itemgetter feeding fromiter, compress selecting
            # the survivors in heap order)
            scan = heap[:len(heap) - fresh] if fresh else heap
            n = len(scan)
            get = arr.slots.slot_of.get
            slots = np.fromiter(
                map(get, map(itemgetter(2), scan), itertools.repeat(-1)),
                dtype=np.intp, count=n)
            epochs = np.fromiter(map(itemgetter(3), scan),
                                 dtype=np.int64, count=n)
            valid = slots >= 0
            alive = valid & (arr.epoch[np.where(valid, slots, 0)] == epochs)
            live = list(itertools.compress(scan, alive.tolist()))
            if fresh:
                live.extend(heap[len(heap) - fresh:])
        else:
            live = []
            for entry in heap:
                flight = self._flights.get(entry[2])
                if flight is not None and flight.epoch == entry[3]:
                    live.append(entry)
        self.stats.stale_entries += len(heap) - len(live)
        heapq.heapify(live)
        dropped = len(heap) - len(live)
        self._heap = live
        self.stats.compactions += 1
        if self._trace is not None:
            self._trace.emit(TraceRecord(now, "calendar.compaction", None, {
                "dropped": dropped, "kept": len(live),
            }))

    def flush(self, now: float) -> None:
        """Push the pending flow delta to the provider and apply changed rates.

        The pending queues are cleared only once the provider query returned:
        a provider that raises (e.g. a :class:`SimulationError` on a
        duplicate id) leaves the calendar consistent and re-flushable.  In
        delta mode, zero-rated (stalled) flights are re-rated through a
        departure+arrival cycle on every flush — see the module docstring.
        """
        # hot path: one attribute read and a None test when unmetered; when
        # metered, two local perf_counter calls with no try/finally frame
        # (a provider error mid-flush loses one timer observation, nothing
        # else), optionally 1-in-N sampled through PhaseTimer.due()
        timer = self._flush_timer
        if timer is None or not timer.due():
            return self._flush(now)
        counter = perf_counter
        start = counter()
        self._flush(now)
        timer.observe(counter() - start)

    def _flush(self, now: float) -> None:
        if self.delta:
            if not self._pending_added and not self._pending_removed:
                if self._stalled:
                    self._retry_stalled(now)
                return
            added_count = len(self._pending_added)
            removed_count = len(self._pending_removed)
            added = list(self._pending_added.values())
            removed = list(self._pending_removed)
            use_slots = (self._update_slots is not None
                         and self._rate_scale is None)
            if (self._arr is not None and self._trace is None
                    and (use_slots or self._update_arrays is not None)):
                slots = None
                if use_slots:
                    # slot-handle handoff: each arrival carries the slot
                    # index the store assigned at activation; the provider
                    # mirrors the add/remove stream and hands rates back
                    # already slot-aligned (intp + float64 ndarrays) — the
                    # steady state runs without a single tid hash lookup
                    slot_of = self._arr.slots.slot_of
                    added_slots = [slot_of[t.transfer_id] for t in added]
                    tids, slots, rates = self._update_slots(
                        added, added_slots, removed)
                else:
                    # array handoff: the provider returns (ids,
                    # rates-ndarray) directly — no intermediate dict on the
                    # batch path
                    tids, rates = self._update_arrays(added, removed)
                self._pending_added.clear()
                self._pending_removed.clear()
                self.stats.flushes += 1
                if slots is not None:
                    self.stats.handoff_tier_slots += 1
                else:
                    self.stats.handoff_tier_arrays += 1
                self.stats.rate_updates += len(tids)
                self.stats.active_at_flush += len(self._arr.slots)
                self._apply_changed_array(tids, rates, now, None, slots=slots)
                if self._stalled:
                    self._retry_stalled(now)
                return
            changed: Mapping[Hashable, float] = self.provider.update(added, removed)
            self._pending_added.clear()
            self._pending_removed.clear()
        else:
            if not self.active_count:
                self._pending_added.clear()
                self._pending_removed.clear()
                return
            added_count = len(self._pending_added)
            removed_count = len(self._pending_removed)
            if self._arr is not None:
                active = self._arr.transfers()
            else:
                active = [flight.transfer for flight in self._flights.values()]
            changed = self.provider.rates(active)
            self._pending_added.clear()
            self._pending_removed.clear()
        self.stats.flushes += 1
        self.stats.handoff_tier_dict += 1
        self.stats.rate_updates += len(changed)
        self.stats.active_at_flush += self.active_count
        if self._trace is not None:
            self._trace.emit(TraceRecord(now, "calendar.flush", None, {
                "added": added_count, "removed": removed_count,
                "changed": len(changed), "active": self.active_count,
            }))
        self._apply_changed(changed, now)
        if self.delta and self._stalled:
            self._retry_stalled(now)

    def _apply_changed(self, changed: Mapping[Hashable, float], now: float) -> None:
        if self._arr is not None:
            self._apply_changed_array(list(changed.keys()),
                                      list(changed.values()), now, changed)
            return
        for tid, rate in changed.items():
            flight = self._flights.get(tid)
            if flight is None:
                continue  # a full-map shim may echo ids the caller never activated
            if rate < 0:
                raise SimulationError(f"negative rate for transfer {tid!r}")
            self._apply_rate(tid, flight, rate, now)
        # in delta mode absence from `changed` means "rate unchanged" (the
        # contract); on a full query it means the provider dropped a live
        # transfer — never acceptable under "error", a zero rate under "zero"
        if self.delta:
            missing = [tid for tid, flight in self._flights.items()
                       if not flight.rated]
        else:
            missing = [tid for tid in self._flights if tid not in changed]
        if missing:
            if self.missing_rate == "error":
                raise SimulationError(f"rate provider returned no rate for {missing!r}")
            for tid in missing:
                self._apply_rate(tid, self._flights[tid], 0.0, now)
        self._maybe_compact(now)

    def _apply_changed_array(self, tids: Sequence[Hashable], rates,
                             now: float, full_keys, slots=None) -> None:
        """Apply a changed set on the array path.

        ``rates`` is a float sequence or ndarray aligned with ``tids``;
        ``full_keys`` is the changed-id container for the full-query missing
        scan (``None`` in delta mode, where absence means "unchanged").
        ``slots``, when given, is the slot-handle handoff's intp ndarray
        aligned with ``tids`` — authoritative (no unknown-id filtering), so
        the whole gather is skipped.  Tiny batches run the per-flight loop;
        the rest takes the numpy batch.  The choice never depends on
        tracing — the batch emits the same record stream as the loop — so
        traced and untraced runs do identical bookkeeping and report
        identical stats.
        """
        arr = self._arr
        fresh = 0
        if len(tids) < self.BATCH_MIN:
            if slots is not None:
                for tid, slot, rate in zip(tids, slots.tolist(), rates):
                    if rate < 0:
                        raise SimulationError(
                            f"negative rate for transfer {tid!r}")
                    self._apply_rate_slot(tid, slot, float(rate), now)
            else:
                slot_of = arr.slots.slot_of
                for tid, rate in zip(tids, rates):
                    slot = slot_of.get(tid)
                    if slot is None:
                        continue  # a full-map shim may echo ids the caller never activated
                    if rate < 0:
                        raise SimulationError(f"negative rate for transfer {tid!r}")
                    self._apply_rate_slot(tid, slot, float(rate), now)
        else:
            fresh = self._apply_batch(tids, rates, now, slots=slots)
        if full_keys is None or self.delta:
            missing = ([tid for tid, slot in arr.slots.slot_of.items()
                        if not arr.rated[slot]] if arr.unrated else [])
        else:
            missing = [tid for tid in arr.slots.slot_of if tid not in full_keys]
        if missing:
            if fresh:
                # restore the heap invariant before raising or re-rating
                # (the missing scan itself never touches the heap)
                heapq.heapify(self._heap)
                fresh = 0
            if self.missing_rate == "error":
                raise SimulationError(f"rate provider returned no rate for {missing!r}")
            slot_of = arr.slots.slot_of
            for tid in missing:
                self._apply_rate_slot(tid, slot_of[tid], 0.0, now)
        self._maybe_compact(now, fresh=fresh)

    def _apply_batch(self, tids: Sequence[Hashable], rates, now: float,
                     slots=None) -> int:
        """One numpy dispatch over the whole changed set.

        Performs, for every flight whose rate value changed: integrate at
        the old rate, store the new rate, bump the epoch, and predict the
        new completion — all elementwise, in the same per-flight operation
        order as the scalar loop (so the stored float64 state is
        bit-identical).  Fresh heap entries are heappushed individually or,
        above the bulk threshold, appended *unsifted* — the returned count
        tells the caller how many tail entries await the deferred heapify
        that ``_maybe_compact`` performs (returns 0 when the heap invariant
        already holds).  The pop stream is identical either way because
        entries carry unique ``(completion, seq)`` keys.  When traced,
        ``calendar.stall`` / ``calendar.retime`` records are emitted per
        flight in changed order — the exact interleaving the scalar loop
        produces.  Unlike the scalar loop, a negative rate is rejected
        before *any* of the batch is applied (conforming providers never
        return one).  When the slot-handle handoff supplies ``slots``, the
        tid→slot gather is skipped entirely; the handles are authoritative
        (an unknown-id filter would be meaningless — the provider mirrors
        the calendar's own add/remove stream).
        """
        arr = self._arr
        slot_of = arr.slots.slot_of
        scale = self._rate_scale
        if slots is not None:
            # slot-handle handoff: the provider already aligned everything
            # by slot — no gather, no unknown-id filter, no list conversion
            kept_tids = tids if isinstance(tids, list) else list(tids)
            k = len(kept_tids)
            if not k:
                return 0
            slots = np.asarray(slots, dtype=np.intp)
            rate_new = np.asarray(rates, dtype=np.float64)
            mn = rate_new.min()  # one reduce covers negativity + stall gates
            if mn < 0.0:
                tid = kept_tids[int(np.argmax(rate_new < 0.0))]
                raise SimulationError(f"negative rate for transfer {tid!r}")
        elif scale is None:
            # common path: C-level slot gather, then one vectorized
            # negativity check over the whole batch
            slot_list = list(map(slot_of.get, tids))
            if None in slot_list:
                # a full-map shim may echo unknown ids: filter them out
                kept_tids, kept_slots, kept_rates = [], [], []
                for tid, slot, rate in zip(tids, slot_list, rates):
                    if slot is not None:
                        kept_tids.append(tid)
                        kept_slots.append(slot)
                        kept_rates.append(rate)
                slot_list, rates = kept_slots, kept_rates
            else:
                kept_tids = tids if isinstance(tids, list) else list(tids)
            k = len(kept_tids)
            if not k:
                return 0
            slots = np.array(slot_list, dtype=np.intp)
            rate_new = np.asarray(rates, dtype=np.float64)
            mn = rate_new.min()
            if mn < 0.0:
                tid = kept_tids[int(np.argmax(rate_new < 0.0))]
                raise SimulationError(f"negative rate for transfer {tid!r}")
        else:
            kept_tids, slot_list, rate_list = [], [], []
            transfer = arr.transfer
            for tid, rate in zip(tids, rates):
                slot = slot_of.get(tid)
                if slot is None:
                    continue
                if rate < 0:  # validate the raw rate, like the scalar loop
                    raise SimulationError(f"negative rate for transfer {tid!r}")
                kept_tids.append(tid)
                slot_list.append(slot)
                rate_list.append(rate * scale(transfer[slot]))
            k = len(kept_tids)
            if not k:
                return 0
            slots = np.fromiter(slot_list, dtype=np.intp, count=k)
            rate_new = np.fromiter(rate_list, dtype=np.float64, count=k)
            mn = rate_new.min()  # scaled negatives stall, like the loop path
        # stall-set bookkeeping, in changed order (skipped entirely in the
        # common all-positive, nothing-stalled case — a single float
        # compare); when traced, capture which flights are *newly* stalled
        # — the scalar loop emits a stall record exactly for those, before
        # its value compare
        trace = self._trace
        stall_new: Optional[List[int]] = None
        if self._stalled or mn <= 0.0:
            nonpos = rate_new <= 0.0
            stalled = self._stalled
            if trace is not None:
                stall_new = []
                for i, tid in enumerate(kept_tids):
                    if nonpos[i]:
                        if tid not in stalled:
                            stall_new.append(i)
                        stalled[tid] = None
                    else:
                        stalled.pop(tid, None)
            else:
                for i, tid in enumerate(kept_tids):
                    if nonpos[i]:
                        stalled[tid] = None
                    else:
                        stalled.pop(tid, None)
        old_rate = arr.rate[slots]
        if arr.unrated and mn <= 0.0:
            # a zero rate may land on an unrated flight whose stored rate is
            # still the initial 0.0 — the only case where "value unchanged"
            # and "never rated" can disagree, so take the masked form
            old_rated = arr.rated[slots]
            ci = np.nonzero(~(old_rated & (old_rate == rate_new)))[0]
        else:
            # unrated flights store rate 0.0, so with every new rate
            # positive (or nothing unrated) the plain value compare selects
            # the exact same changed set — no full-width rated gather
            old_rated = None
            ci = np.nonzero(old_rate != rate_new)[0]
        if not ci.size:
            if trace is not None and stall_new:
                for i in stall_new:
                    trace.emit(TraceRecord(now, "calendar.stall", kept_tids[i],
                                           {"rate": float(rate_new[i])}))
            return 0
        cs = slots[ci]
        c_rate_old = old_rate[ci]
        c_rate_new = rate_new[ci]
        # integrate at the old rate up to now (only where the old rate was
        # progressing and time actually advanced — the masked elements keep
        # their remaining untouched, and no arithmetic runs on them, so
        # inf/0-rate flights raise no spurious fp warnings; unrated flights
        # store rate 0.0, so the rate test alone excludes them)
        rem = arr.remaining[cs]
        dt = now - arr.last_update[cs]
        integrate = (c_rate_old > 0.0) & (dt > 0.0)
        ni = np.count_nonzero(integrate)
        if ni == rem.size:
            # steady state: every changed flight was progressing — same
            # elementwise subtraction, no index indirection
            rem -= c_rate_old * dt
        elif ni:
            ii = np.nonzero(integrate)[0]
            rem[ii] = rem[ii] - c_rate_old[ii] * dt[ii]
        arr.remaining[cs] = rem
        arr.last_update[cs] = now
        arr.rate[cs] = c_rate_new
        if arr.unrated:
            # never-rated bookkeeping on the changed subset only (every
            # unrated flight of the batch is in ci: its stored 0.0 never
            # equals a positive new rate, and the zero-rate case took the
            # masked form above)
            c_rated_old = old_rated[ci] if old_rated is not None \
                else arr.rated[cs]
            arr.rated[cs] = True
            newly_rated = int(ci.size - np.count_nonzero(c_rated_old))
            if newly_rated:
                arr.unrated -= newly_rated
        epochs = arr.epoch[cs] + 1
        arr.epoch[cs] = epochs
        positive = c_rate_new > 0.0
        if np.count_nonzero(positive) == positive.size:
            pi = None  # steady state: every changed rate is positive
            completions = (now + rem / c_rate_new).tolist()
            entry_epochs = epochs.tolist()
            batch_index = ci.tolist()
        else:
            pi = np.nonzero(positive)[0]
            completions = (now + rem[pi] / c_rate_new[pi]).tolist()
            entry_epochs = epochs[pi].tolist()
            batch_index = ci[pi].tolist()
        m = len(batch_index)
        if m > 1:
            entry_tids = itemgetter(*batch_index)(kept_tids)
        else:
            entry_tids = [kept_tids[batch_index[0]]] if m else []
        # C-level tuple assembly, consumed exactly once below (extend or the
        # push loop); islice consumes exactly the m sequence numbers the
        # scalar loop's per-entry next() would
        entries = zip(completions, itertools.islice(self._seq, m),
                      entry_tids, entry_epochs)
        if trace is not None and (m or stall_new):
            # replay the scalar loop's record interleaving: per flight in
            # changed order, a stall record (if newly stalled) then a retime
            # record (if the value changed to a positive rate)
            retime_j = {bi: j for j, bi in enumerate(batch_index)}
            retime_rates = (c_rate_new if pi is None else c_rate_new[pi]).tolist()
            retime_rems = (rem if pi is None else rem[pi]).tolist()
            stall_set = set(stall_new) if stall_new else ()
            for i, tid in enumerate(kept_tids):
                if i in stall_set:
                    trace.emit(TraceRecord(now, "calendar.stall", tid,
                                           {"rate": float(rate_new[i])}))
                j = retime_j.get(i)
                if j is not None:
                    trace.emit(TraceRecord(now, "calendar.retime", tid, {
                        "rate": retime_rates[j],
                        "remaining": retime_rems[j],
                        "completion": completions[j],
                    }))
        if m:
            self.stats.retimed += m
            heap = self._heap
            if m >= self.BULK_HEAPIFY_MIN and 4 * m >= len(heap):
                # deferred bulk merge: append without sifting and let the
                # caller's _maybe_compact restore the invariant — one
                # heapify total instead of merge-heapify + compact-heapify
                heap.extend(entries)
                self.stats.bulk_merges += 1
                self.stats.bulk_entries += m
                return m
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return 0

    def _retry_stalled(self, now: float) -> None:
        """Force zero-rated flights back through the delta API.

        A departure immediately followed by an arrival of the same transfer
        dirties its conflict component, so a conforming provider must
        re-report it — the escape hatch for flights an under-reporting
        provider left at rate zero (they have no calendar entry and would
        otherwise only resurface when an unrelated delta touched their
        component).
        """
        arr = self._arr
        if arr is not None:
            slot_of = arr.slots.slot_of
            retry = [tid for tid in self._stalled if tid in slot_of]
            transfer = arr.transfer
            transfers = [transfer[slot_of[tid]] for tid in retry]
        else:
            retry = [tid for tid in self._stalled if tid in self._flights]
            transfers = [self._flights[tid].transfer for tid in retry]
        if not retry:
            return
        if (arr is not None and self._trace is None
                and self._update_slots is not None
                and self._rate_scale is None):
            # slot-tier retry: the departure+arrival cycle must re-register
            # each flight's slot handle with the provider (a dict-tier
            # re-add would strand the handle and break later slot flushes);
            # the flight keeps its store slot, only the provider re-tracks
            added_slots = [slot_of[tid] for tid in retry]
            tids, slots, rates = self._update_slots(
                transfers, added_slots, list(retry))
            self.stats.stall_retries += len(retry)
            self.stats.rate_updates += len(tids)
            self._apply_changed_array(tids, rates, now, None, slots=slots)
            return
        changed = self.provider.update(transfers, list(retry))
        self.stats.stall_retries += len(retry)
        self.stats.rate_updates += len(changed)
        if self._trace is not None:
            # a persistent stall re-emits this record every flush: bound the
            # payload to a count plus the first few ids
            self._trace.emit(TraceRecord(now, "calendar.stall_retry", None, {
                "count": len(retry),
                "ids": [str(tid)
                        for tid in retry[:self.STALL_RETRY_TRACE_IDS]],
            }))
        self._apply_changed(changed, now)

    def reprice(self, now: float) -> None:
        """Force a full re-rate of every in-flight transfer.

        The delta contract cannot express "every rate may have changed"
        (e.g. after a link-degradation window toggles the rate scale), so
        this resets the provider's tracked set and re-adds the whole active
        set in one delta; in full-query mode a plain re-query suffices.  Any
        pending delta is flushed first.

        The full re-add goes through the same tier dispatch as
        :meth:`flush`: once a rate-scale window ends (``set_rate_scale(None)``
        followed by this call), the reset+re-add re-seeds the provider's
        slot handles and subsequent flushes re-enter the slot tier instead
        of staying permanently downgraded.
        """
        self.flush(now)
        if not self.active_count:
            return
        if self._arr is not None:
            transfers = self._arr.transfers()
        else:
            transfers = [flight.transfer for flight in self._flights.values()]
        if self.delta:
            reset = getattr(self.provider, "reset", None)
            if not callable(reset):
                raise SimulationError(
                    "reprice() on a delta provider requires a reset() method"
                )
            reset()
            use_slots = (self._update_slots is not None
                         and self._rate_scale is None)
            if (self._arr is not None and self._trace is None
                    and (use_slots or self._update_arrays is not None)):
                slots = None
                if use_slots:
                    # re-seed every flight's slot handle with the freshly
                    # reset provider, so the slot tier resumes immediately
                    slot_of = self._arr.slots.slot_of
                    added_slots = [slot_of[t.transfer_id] for t in transfers]
                    tids, slots, rates = self._update_slots(
                        transfers, added_slots, [])
                    self.stats.handoff_tier_slots += 1
                else:
                    tids, rates = self._update_arrays(transfers, [])
                    self.stats.handoff_tier_arrays += 1
                self.stats.flushes += 1
                self.stats.rate_updates += len(tids)
                self.stats.active_at_flush += self.active_count
                self._apply_changed_array(tids, rates, now, None, slots=slots)
                return
            changed: Mapping[Hashable, float] = self.provider.update(transfers, [])
        else:
            changed = self.provider.rates(transfers)
        self.stats.flushes += 1
        self.stats.handoff_tier_dict += 1
        self.stats.rate_updates += len(changed)
        self.stats.active_at_flush += self.active_count
        if self._trace is not None:
            self._trace.emit(TraceRecord(now, "calendar.reprice", None, {
                "active": self.active_count, "changed": len(changed),
            }))
        self._apply_changed(changed, now)

    def _apply_rate(self, tid: Hashable, flight: _Flight, rate: float,
                    now: float) -> None:
        if self._rate_scale is not None:
            rate = rate * self._rate_scale(flight.transfer)
        if rate <= 0.0:
            if self._trace is not None and tid not in self._stalled:
                self._trace.emit(TraceRecord(now, "calendar.stall", tid,
                                             {"rate": rate}))
            self._stalled[tid] = None
        else:
            self._stalled.pop(tid, None)
        if flight.rated and rate == flight.rate:
            return  # value unchanged: the calendar entry stays valid
        self._integrate(flight, now)
        flight.rate = rate
        flight.rated = True
        self._retime(tid, flight, now)

    def pop_due(self, now: float) -> List[Transfer]:
        """Complete every transfer whose calendar entry is due at ``now``.

        Completed transfers leave the calendar and join the departure side
        of the next flush; the list preserves entry order (callers that need
        a different completion order sort it themselves).
        """
        if self._arr is not None:
            return self._pop_due_array(now)
        done: List[Transfer] = []
        while self._heap:
            time, _, tid, epoch = self._heap[0]
            flight = self._flights.get(tid)
            if flight is None or flight.epoch != epoch:
                heapq.heappop(self._heap)
                self.stats.stale_entries += 1
                continue
            if time > now + self.EPSILON:
                break
            heapq.heappop(self._heap)
            self._integrate(flight, now)
            clock_resolution = max(abs(now), 1.0) * 1e-12
            negligible = (
                flight.remaining <= max(self.EPSILON, self.EPSILON_BYTES)
                or (flight.rate > 0.0
                    and flight.remaining / flight.rate <= clock_resolution)
            )
            if not negligible:
                self._retime(tid, flight, now)  # fp drift: try again later
                self._maybe_compact(now)
                continue
            del self._flights[tid]
            self._stalled.pop(tid, None)
            self._pending_removed.append(tid)
            done.append(flight.transfer)
            self.stats.completions += 1
            if self._trace is not None:
                self._trace.emit(TraceRecord(now, "calendar.complete", tid, {}))
        return done

    def _pop_due_array(self, now: float) -> List[Transfer]:
        # the scalar pop loop over the SoA store; Python-float arithmetic on
        # values read out of the arrays (exact conversions both ways), so the
        # negligibility decisions match the scalar path bit for bit.  Every
        # invariant quantity is hoisted out of the loop (the stale-skip runs
        # thousands of iterations per call on churn-heavy workloads, where
        # attribute lookups and call frames dominate); _integrate_slot is
        # inlined with the identical numpy-scalar arithmetic
        arr = self._arr
        slot_of = arr.slots.slot_of
        heap = self._heap
        heappop = heapq.heappop
        epoch_arr = arr.epoch
        remaining_arr = arr.remaining
        rate_arr = arr.rate
        last_update_arr = arr.last_update
        rated_arr = arr.rated
        horizon = now + self.EPSILON
        eps_bytes = max(self.EPSILON, self.EPSILON_BYTES)
        clock_resolution = max(abs(now), 1.0) * 1e-12
        stale = 0
        done: List[Transfer] = []
        while heap:
            entry = heap[0]
            tid = entry[2]
            slot = slot_of.get(tid)
            if slot is None or epoch_arr[slot] != entry[3]:
                heappop(heap)
                stale += 1
                continue
            if entry[0] > horizon:
                break
            heappop(heap)
            if rated_arr[slot]:
                rate = rate_arr[slot]
                if rate > 0.0:
                    dt = now - last_update_arr[slot]
                    if dt > 0.0:
                        remaining_arr[slot] = remaining_arr[slot] - rate * dt
            last_update_arr[slot] = now
            remaining = float(remaining_arr[slot])
            rate = float(rate_arr[slot])
            negligible = (
                remaining <= eps_bytes
                or (rate > 0.0 and remaining / rate <= clock_resolution)
            )
            if not negligible:
                self._retime_slot(tid, slot, now)  # fp drift: try again later
                self._maybe_compact(now)
                heap = self._heap  # compaction rebuilds the heap in place
                continue
            transfer = arr.transfer[slot]
            arr.remove(tid)
            self._stalled.pop(tid, None)
            self._pending_removed.append(tid)
            done.append(transfer)
            self.stats.completions += 1
            if self._trace is not None:
                self._trace.emit(TraceRecord(now, "calendar.complete", tid, {}))
        if stale:
            self.stats.stale_entries += stale
        return done


class RateScaleRegistry:
    """Handle-keyed rate-scale bookkeeping shared by the injection surfaces.

    Both injection states (the engine's and the fluid simulator's) delegate
    ``add_rate_scale``/``remove_rate_scale`` here: scales are stored under
    opaque handles and their composition (see
    :func:`repro.simulator.interference.compose_rate_scales`) is installed
    on the calendar after every change — ``None`` (the bit-exact unscaled
    path) once the last scale is removed.
    """

    def __init__(self, calendar: TransferCalendar) -> None:
        self._calendar = calendar
        self._scales: Dict[int, Callable[[Transfer], float]] = {}
        self._seq = itertools.count()

    def add(self, scale: Callable[[Transfer], float]) -> int:
        handle = next(self._seq)
        self._scales[handle] = scale
        self._install()
        return handle

    def remove(self, handle: Optional[int]) -> None:
        self._scales.pop(handle, None)
        self._install()

    def _install(self) -> None:
        # local import: interference lives above this module (it imports
        # Transfer from here), so the composition helper resolves lazily at
        # the first injector apply
        from ..simulator.interference import compose_rate_scales

        self._calendar.set_rate_scale(
            compose_rate_scales(tuple(self._scales.values()))
        )


class _FluidInjectionState:
    """Injection surface of one :meth:`FluidTransferSimulator.run`.

    Implements the informal ``InjectionState`` protocol of
    :mod:`repro.simulator.interference` for a pure transfer simulation:
    background flows ride the same calendar (and thus the same provider
    delta path) as the foreground transfers; compute scaling is a no-op
    because nothing computes here.
    """

    def __init__(self, calendar: TransferCalendar, hosts: Tuple[int, ...],
                 trace: Optional[TraceSink] = None) -> None:
        self.now = 0.0
        self.hosts = hosts
        self.background: set = set()
        #: background flows started / injector firings (event-budget input)
        self.injected = 0
        self.fired = 0
        self._calendar = calendar
        self._flow_seq = itertools.count()
        self._rate_scales = RateScaleRegistry(calendar)
        self._trace = active_sink(trace)

    # ------------------------------------------------------------- flows
    def start_flow(self, src: int, dst: int, size: float,
                   owner: str = "background") -> Hashable:
        tid = f"{owner}#{next(self._flow_seq)}"
        if self._trace is not None:
            self._trace.emit(TraceRecord(self.now, "inject.flow_start", tid, {
                "src": src, "dst": dst, "size": float(size), "owner": owner,
            }))
        transfer = Transfer(transfer_id=tid, src=src, dst=dst, size=float(size),
                            start_time=self.now)
        self._calendar.activate(transfer, self.now)
        self.background.add(tid)
        self.injected += 1
        return tid

    def end_flow(self, tid: Hashable) -> None:
        if tid in self.background and self._calendar.is_active(tid):
            if self._trace is not None:
                self._trace.emit(TraceRecord(self.now, "inject.flow_end", tid, {}))
            self._calendar.cancel(tid, self.now)
        self.background.discard(tid)

    # ------------------------------------------------------------- scaling
    def add_rate_scale(self, scale: Callable[[Transfer], float],
                       info: Optional[Dict] = None) -> int:
        handle = self._rate_scales.add(scale)
        if self._trace is not None:
            self._trace.emit(TraceRecord(self.now, "inject.rate_scale_on",
                                         handle, dict(info or {})))
        return handle

    def remove_rate_scale(self, handle: Optional[int]) -> None:
        if self._trace is not None and handle is not None:
            self._trace.emit(TraceRecord(self.now, "inject.rate_scale_off",
                                         handle, {}))
        self._rate_scales.remove(handle)

    def add_compute_scale(self, scale, info: Optional[Dict] = None) -> Optional[int]:
        return None  # nothing computes in a pure transfer simulation

    def remove_compute_scale(self, handle) -> None:
        pass

    def reprice(self) -> None:
        if self._trace is not None:
            self._trace.emit(TraceRecord(self.now, "inject.reprice", None, {}))
        self._calendar.reprice(self.now)


class FluidTransferSimulator:
    """Event-calendar fluid simulation of a set of transfers.

    Parameters
    ----------
    rate_provider:
        Allocates instantaneous rates to the set of in-flight transfers.
    latency:
        Per-transfer startup latency in seconds, added before the first byte
        flows (one-way network latency plus protocol handshake).
    delta:
        Forwarded to :class:`TransferCalendar` — ``None`` auto-detects the
        provider's delta ``update`` API, ``False`` forces full-set
        re-queries (the verification mode; bit-exact with the delta path).
    injectors:
        Interference injectors (:mod:`repro.simulator.interference`) whose
        events interleave with the transfer calendar: background flows
        contend with the foreground transfers in the provider but are
        excluded from the returned completion records, and the run ends when
        the last *foreground* transfer completes.  With an empty sequence
        the loop is bit-exact with the injector-free simulator.
    trace:
        Optional :class:`repro.trace.TraceSink`; the calendar emits its
        ``calendar.*`` records through it, the loop adds ``step`` boundaries
        and ``inject.*`` events.  ``None`` (or a disabled sink) is the
        bit-exact untraced path.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  The calendar times its
        flush phase into it, the provider registers its stats surfaces
        (:meth:`~repro.simulator.providers.ModelRateProvider.
        register_metrics`) and the calendar counters join as the
        ``calendar`` source.  ``None`` is the bit-exact unmetered path.
    vectorized:
        Forwarded to :class:`TransferCalendar` — True (default) runs the
        structure-of-arrays calendar, ``False`` the scalar verification
        twin.  Bit-exact either way.
    """

    #: bytes below which a transfer is considered finished (numerical guard)
    EPSILON_BYTES = TransferCalendar.EPSILON_BYTES

    def __init__(self, rate_provider: RateProvider, latency: float = 0.0,
                 delta: Optional[bool] = None,
                 injectors: Sequence = (),
                 trace: Optional[TraceSink] = None,
                 metrics=None,
                 vectorized: bool = True) -> None:
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency}")
        self.rate_provider = rate_provider
        self.latency = latency
        self.delta = delta
        self.injectors = tuple(injectors)
        self.trace = active_sink(trace)
        self.metrics = metrics
        self.vectorized = bool(vectorized)
        #: calendar work counters of the most recent :meth:`run`
        self.last_calendar_stats: Optional[CalendarStatsSnapshot] = None

    # ------------------------------------------------------------------- run
    def run(self, transfers: Sequence[Transfer]) -> Dict[Hashable, TransferResult]:
        """Simulate all ``transfers`` and return their completion records."""
        ids = [t.transfer_id for t in transfers]
        if len(set(ids)) != len(ids):
            raise SimulationError("duplicate transfer ids in fluid simulation")
        if not transfers:
            return {}

        reset = getattr(self.rate_provider, "reset", None)
        if callable(reset):
            reset()
        trace = self.trace
        calendar = TransferCalendar(self.rate_provider, delta=self.delta,
                                    missing_rate="error", trace=trace,
                                    metrics=self.metrics,
                                    vectorized=self.vectorized)
        if self.metrics is not None:
            self.metrics.register_source("calendar", calendar.stats.snapshot)
            register = getattr(self.rate_provider, "register_metrics", None)
            if callable(register):
                register(self.metrics)

        state: Optional[_FluidInjectionState] = None
        inject_heap: List[Tuple[float, int]] = []
        if self.injectors:
            hosts = tuple(sorted({h for t in transfers for h in (t.src, t.dst)}))
            state = _FluidInjectionState(calendar, hosts, trace=trace)
            for index, injector in enumerate(self.injectors):
                injector.reset()
                when = injector.next_event(0.0)
                if when is not None:
                    heapq.heappush(inject_heap, (max(0.0, when), index))

        # transfers waiting for their (latency-shifted) start time
        pending: List[Tuple[float, int, Transfer]] = []
        counter = itertools.count()
        for transfer in transfers:
            heapq.heappush(pending, (transfer.start_time + self.latency, next(counter), transfer))

        results: Dict[Hashable, TransferResult] = {}
        now = 0.0
        guard = 0
        steps = 0

        def foreground_active() -> int:
            background = len(state.background) if state is not None else 0
            return calendar.active_count - background

        while pending or foreground_active() > 0:
            guard += 1
            injected = state.injected + state.fired if state is not None else 0
            if guard > 10 * (len(transfers) + injected) + 10:
                raise SimulationError("fluid simulation exceeded its event budget")

            # activate transfers whose start time has been reached; zero-byte
            # transfers finish immediately without entering the rate set
            while pending and pending[0][0] <= now + 1e-15:
                _, _, transfer = heapq.heappop(pending)
                if float(transfer.size) <= self.EPSILON_BYTES:
                    results[transfer.transfer_id] = TransferResult(
                        transfer.transfer_id, transfer.start_time, now
                    )
                else:
                    calendar.activate(transfer, now)

            # fire due injector events (may start background flows, toggle
            # rate scales, force reprices)
            while inject_heap and inject_heap[0][0] <= now + 1e-15:
                _, index = heapq.heappop(inject_heap)
                injector = self.injectors[index]
                state.now = now
                if trace is not None:
                    emit_inject_apply(trace, now, injector, index)
                injector.apply(state)
                state.fired += 1
                when = injector.next_event(now)
                if when is not None:
                    heapq.heappush(inject_heap, (max(when, now), index))

            if not calendar.active_count:
                targets = [t for t in (
                    pending[0][0] if pending else None,
                    inject_heap[0][0] if inject_heap else None,
                ) if t is not None]
                if not targets:
                    break
                now = max(now, min(targets))
                if trace is not None:
                    steps += 1
                    trace.emit(TraceRecord(now, "step", "fluid", {"step": steps}))
                continue

            calendar.flush(now)

            next_completion = calendar.next_time()
            next_start = pending[0][0] if pending else math.inf
            next_inject = inject_heap[0][0] if inject_heap else math.inf
            if next_completion is None and math.isinf(next_start) \
                    and math.isinf(next_inject):
                stalled = calendar.stalled_ids()
                detail = f"; zero-rated transfers: {list(stalled)!r}" if stalled else ""
                raise SimulationError(
                    "fluid simulation stalled: all active transfers have zero rate "
                    f"and no new transfer will start{detail}"
                )

            horizon = min(math.inf if next_completion is None else next_completion,
                          next_start, next_inject)
            now = max(now, horizon)
            if trace is not None:
                steps += 1
                trace.emit(TraceRecord(now, "step", "fluid", {"step": steps}))

            for transfer in calendar.pop_due(now):
                if state is not None and transfer.transfer_id in state.background:
                    state.background.discard(transfer.transfer_id)
                    continue
                results[transfer.transfer_id] = TransferResult(
                    transfer.transfer_id, transfer.start_time, now
                )

        self.last_calendar_stats = calendar.stats.freeze()
        return results

    # ------------------------------------------------------------ conveniences
    def durations(self, transfers: Sequence[Transfer]) -> Dict[Hashable, float]:
        """Duration (seconds) of every transfer, including the startup latency."""
        return {tid: result.duration for tid, result in self.run(transfers).items()}

    def makespan(self, transfers: Sequence[Transfer]) -> float:
        """Completion time of the last transfer."""
        results = self.run(transfers)
        return max((r.finish_time for r in results.values()), default=0.0)
