"""Command line interface: ``python -m repro <command>``.

Gives shell access to the three everyday operations of the library:

* ``predict`` — predict the penalties of a scheme (file or inline text) with a
  contention model;
* ``measure`` — measure a scheme on the calibrated cluster emulator (the
  paper's penalty tool);
* ``calibrate`` — run the §V.A calibration protocol against an emulated card
  and print the estimated (β, γo, γi);
* ``campaign`` — expand a declarative JSON campaign spec (sweeps over
  workloads × networks × models × host counts × placements, see
  :mod:`repro.campaign.spec`) and execute every scenario on a worker pool
  with a shared — optionally disk-persistent — penalty cache;
* ``trace`` — the structured-trace pipeline (:mod:`repro.trace`):
  ``trace record`` runs one workload and writes its per-event JSONL trace,
  ``trace summarize`` prints the timeline report of a trace file (``--json``
  for the machine-readable twin of the same report), ``trace tail``
  follows a live (still growing) trace with the streaming reader,
  ``trace diff`` locates the first diverging record of two traces that
  should be identical, and ``trace replay`` re-imposes a recorded
  interference schedule on the recorded workload through
  :class:`repro.trace.TraceReplayInjector` and checks the replay
  reproduces the recorded run.

Examples::

    python -m repro predict --model myrinet --scheme "0->1 0->2 0->3"
    python -m repro measure --network ethernet --scheme-file conflict.scm
    python -m repro calibrate --network ethernet
    python -m repro campaign --spec sweep.json --workers 4 --cache penalties.json
    python -m repro simulate --workload broadcast --hosts 8 --bg-rate 200 \\
        --bg-size 4M --degrade-factor 0.5 --degrade-until 0.2
    python -m repro trace record --workload ring-allgather --hosts 4 \\
        --bg-rate 100 --bg-max-flows 8 --out run.jsonl
    python -m repro trace summarize run.jsonl
    python -m repro trace replay run.jsonl

``simulate`` runs one application workload through the predictive (or
emulated) simulator, optionally on a *loaded* fabric: background traffic,
link degradation and node slowdown injectors
(:mod:`repro.simulator.interference`) are configured from flags and the
loaded run is reported next to its clean twin with the foreground slowdown;
``--trace`` additionally writes the loaded (or clean) run's structured
trace.  The ``campaign`` spec's ``interference`` axis does the same sweep
declaratively; ``campaign --trace-dir`` writes one trace file per
application scenario and prints a trace-summary table.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

from .analysis import (
    StreamingTimeline,
    interference_slowdown_table,
    placement_robustness,
    placement_robustness_table,
    render_table,
    timeline_record,
    timeline_summary,
    timeline_summary_table,
)
from .benchmark import PenaltyTool
from .campaign import (
    CampaignProgress,
    CampaignRunner,
    CampaignSpec,
    InterferenceSpec,
    PersistentPenaltyCache,
)
from .campaign.spec import COLLECTIVE_PATTERNS, ScenarioSpec, WorkloadSpec
from .cluster.spec import custom_cluster
from .core import LinearCostModel, calibrate_from_measurer, get_model, model_for_network
from .core.graph import CommunicationGraph
from .exceptions import ReproError
from .network import get_technology
from .scheme import parse_scheme
from .simulator import EngineConfig, Simulator
from .trace import (
    JsonlTraceSink,
    StreamingTraceReader,
    TraceRecord,
    TraceReplayInjector,
    diff_trace_files,
    format_trace_diff,
    read_trace_log,
)
from .units import MB, parse_size

__all__ = ["main", "build_parser"]


def _load_scheme(args: argparse.Namespace) -> CommunicationGraph:
    if args.scheme_file:
        text = Path(args.scheme_file).read_text(encoding="utf-8")
    elif args.scheme:
        # inline form: whitespace separated "src->dst" tokens
        text = "\n".join(token for token in args.scheme.replace(",", " ").split())
    else:
        raise ReproError("provide --scheme or --scheme-file")
    size = parse_size(args.size) if args.size else 20 * MB
    return parse_scheme(text, default_size=size)


def _cost_model(network: str) -> LinearCostModel:
    return LinearCostModel.for_technology(get_technology(network))


def cmd_predict(args: argparse.Namespace) -> int:
    graph = _load_scheme(args)
    try:
        model = model_for_network(args.model)
    except ReproError:
        model = get_model(args.model)
    prediction = model.predict(graph, _cost_model(args.network))
    rows = [
        [name, prediction.penalties[name], prediction.times.get(name, float("nan"))]
        for name in graph.names
    ]
    print(render_table(["com.", "penalty", "predicted T [s]"], rows,
                       title=f"{model.name} predictions on {args.network}",
                       float_format="{:.4f}"))
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    graph = _load_scheme(args)
    tool = PenaltyTool(args.network, iterations=args.iterations, num_hosts=args.hosts)
    measurement = tool.measure(graph)
    print(measurement.table())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_json(args.spec)
    cache = None
    if args.cache:
        cache = PersistentPenaltyCache.load(args.cache)
        if cache.load_error:
            print(f"warning: starting with an empty cache ({cache.load_error})",
                  file=sys.stderr)
        elif cache.loaded_entries:
            print(f"penalty cache: {cache.loaded_entries} entries from {args.cache}")
    trace_dir = args.trace_dir
    metrics_every = args.metrics_every
    if args.progress:
        # progress is read off the per-scenario traces: make sure they exist
        if trace_dir is None and spec.trace_dir is None:
            trace_dir = tempfile.mkdtemp(prefix="repro-campaign-")
            print(f"progress: tracing scenarios into {trace_dir}")
        if metrics_every == 0:
            metrics_every = 64  # light per-scenario metrics rollup
    runner = CampaignRunner(spec, cache=cache, max_workers=args.workers,
                            backend=args.backend, trace_dir=trace_dir,
                            metrics_every=metrics_every)
    if args.progress:
        store = _run_with_progress(runner, interval=args.progress_interval)
    else:
        store = runner.run()
    print(store.summary_table())
    if any(r.axes.get("interference") not in (None, "none") for r in store):
        print()
        print(interference_slowdown_table(store))
        robustness_rows = placement_robustness(store)
        if robustness_rows:
            print()
            print(placement_robustness_table(store, rows=robustness_rows))
    if runner.trace_dir is not None:
        print()
        print(_campaign_trace_table(runner))
    stats = store.stats
    print(
        f"\n{len(store)} scenarios | model evaluations: "
        f"{stats['comm_evaluations']} (components: {stats['component_evaluations']}) | "
        f"cache hits: {stats['cache_hits']}  misses: {stats['cache_misses']}"
    )
    if args.cache:
        cache_stats = cache.stats()
        print(
            "persistent cache: "
            f"entries: {cache_stats['entries']} "
            f"(loaded: {cache_stats['loaded_entries']}) | "
            f"lookups: {cache_stats['lookups']}  hits: {cache_stats['hits']} "
            f"(rate: {cache_stats['hit_rate']:.3f}) | "
            f"evictions: {cache_stats['evictions']}  "
            f"never hit: {cache_stats['entries_never_hit']}"
        )
        saved = cache.save(args.cache)
        print(f"penalty cache: {saved} entries saved to {args.cache}")
    if args.out:
        store.to_json(args.out)
        print(f"results written to {args.out}")
    if args.csv:
        store.to_csv(args.csv)
        print(f"CSV rows written to {args.csv}")
    return 0


def _run_with_progress(runner: CampaignRunner, interval: float):
    """Run a campaign while tailing its per-scenario traces.

    The campaign runs on a worker thread; the calling thread polls the
    streaming readers and prints one ``progress:`` line per interval (plus
    a final one when the campaign ends).  Purely observational — the
    watcher only reads the trace files the scenarios are writing.
    """
    progress = CampaignProgress(runner.trace_paths())
    outcome = {}

    def work() -> None:
        try:
            outcome["store"] = runner.run()
        except BaseException as exc:  # noqa: BLE001 - re-raised on the main thread
            outcome["error"] = exc

    worker = threading.Thread(target=work, name="campaign", daemon=True)
    worker.start()
    interval = max(0.05, float(interval))
    while worker.is_alive():
        worker.join(timeout=interval)
        progress.poll()
        print(progress.format_line(), flush=True)
    progress.poll()
    print(progress.format_line(), flush=True)
    if "error" in outcome:
        raise outcome["error"]
    return outcome["store"]


def _campaign_trace_table(runner: CampaignRunner) -> str:
    """Per-scenario trace summary of a traced campaign run."""
    rows = []
    for path in runner.trace_paths():
        if not path.exists():
            continue
        summary = timeline_summary(read_trace_log(path))
        rows.append([
            path.stem, summary["records"], summary["steps"],
            summary["activations"], summary["completions"],
            summary["retimings"], summary["background_flows"],
            summary["peak_active_transfers"], summary["duration"],
        ])
    return render_table(
        ["scenario", "records", "steps", "act", "done", "retime",
         "bg flows", "peak", "span [s]"],
        rows,
        title=(f"trace summary: {len(rows)} scenario traces in "
               f"{runner.trace_dir}"),
        float_format="{:.4f}",
    )


def _interference_from_args(args: argparse.Namespace) -> InterferenceSpec:
    """Fold the ``simulate`` injector flags into an InterferenceSpec."""
    background = {}
    if args.bg_rate > 0:
        background = {
            "rate": args.bg_rate,
            "size": parse_size(args.bg_size) if args.bg_size else 4 * MB,
            "seed": args.bg_seed,
        }
        if args.bg_max_flows is not None:
            background["max_flows"] = args.bg_max_flows
        if args.bg_until is not None:
            background["until"] = args.bg_until
    degradation = {}
    if args.degrade_factor != 1.0:
        degradation = {"factor": args.degrade_factor, "start": args.degrade_start}
        if args.degrade_until is not None:
            degradation["until"] = args.degrade_until
        if args.degrade_hosts:
            degradation["hosts"] = [int(h) for h in args.degrade_hosts.split(",")]
    slowdown = {}
    if args.slowdown_factor != 1.0:
        slowdown = {"factor": args.slowdown_factor, "start": args.slowdown_start}
        if args.slowdown_until is not None:
            slowdown["until"] = args.slowdown_until
        if args.slowdown_hosts:
            slowdown["hosts"] = [int(h) for h in args.slowdown_hosts.split(",")]
    spec = {"name": "loaded"}
    if background:
        spec["background"] = background
    if degradation:
        spec["link_degradation"] = degradation
    if slowdown:
        spec["node_slowdown"] = slowdown
    if len(spec) == 1:
        return InterferenceSpec()  # clean
    return InterferenceSpec.from_dict(spec)


def _scenario_from_args(args: argparse.Namespace,
                        scenario_id: str) -> ScenarioSpec:
    """Fold the shared workload flags into one :class:`ScenarioSpec`."""
    kind = "linpack" if args.workload == "linpack" else "collective"
    if kind == "collective" and args.workload not in COLLECTIVE_PATTERNS:
        raise ReproError(
            f"unknown workload {args.workload!r}; known: "
            f"{', '.join(COLLECTIVE_PATTERNS + ('linpack',))}"
        )
    params = {"num_tasks": args.tasks or args.hosts}
    if kind == "linpack":
        params["problem_size"] = args.problem_size
        params["block_size"] = args.block_size
    else:
        params["size"] = parse_size(args.size) if args.size else 1 * MB
    workload = WorkloadSpec(kind=kind, name=args.workload,
                            params=tuple(sorted(params.items())))
    return ScenarioSpec(
        scenario_id=scenario_id,
        workload=workload, network=args.network, model="auto",
        num_hosts=args.hosts, placement=args.placement, seed=args.seed,
        interference=_interference_from_args(args),
    )


def _run_meta(args: argparse.Namespace, scenario: ScenarioSpec) -> TraceRecord:
    """The ``run.meta`` header record: everything replay needs to rebuild
    the run (workload, cluster and injector flags)."""
    interference = scenario.interference.to_dict() if scenario.interference else "none"
    return TraceRecord(0.0, "run.meta", None, {
        "workload": args.workload,
        "hosts": args.hosts,
        "tasks": args.tasks or args.hosts,
        "size": args.size,
        "problem_size": args.problem_size,
        "block_size": args.block_size,
        "network": args.network,
        "placement": args.placement,
        "seed": args.seed,
        "cores_per_node": args.cores_per_node,
        "mode": args.mode,
        "interference": interference,
    })


def _run_scenario(args: argparse.Namespace, application,
                  injectors, trace=None):
    """One engine run of the (already built) application under ``injectors``."""
    cluster = custom_cluster(num_nodes=args.hosts,
                             cores_per_node=args.cores_per_node,
                             technology=args.network)
    config = EngineConfig(injectors=injectors, trace=trace)
    if args.mode == "emulated":
        simulator = Simulator.emulated(cluster, config=config)
    else:
        simulator = Simulator.predictive(cluster, config=config)
    report = simulator.run(application, placement=args.placement,
                           seed=args.seed)
    return report, simulator.last_engine_stats


def cmd_simulate(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args, f"simulate-{args.workload}")
    application = scenario.build_application()

    injectors = scenario.build_injectors()
    sink = JsonlTraceSink(args.trace) if args.trace else None
    if sink is not None:
        sink.emit(_run_meta(args, scenario))
    try:
        # with --trace, the traced run is the loaded one (the clean twin
        # stays untraced); on a clean-only invocation the clean run is traced
        clean_report, _ = _run_scenario(args, application, (),
                                        trace=None if injectors else sink)
        rows = [["clean", clean_report.total_time,
                 clean_report.average_penalty, 0, 0]]
        if injectors:
            loaded_report, stats = _run_scenario(args, application, injectors,
                                                 trace=sink)
            rows.append(["loaded", loaded_report.total_time,
                         loaded_report.average_penalty,
                         stats["background_flows"], stats["injected_events"]])
    finally:
        if sink is not None:
            sink.close()
    print(render_table(
        ["fabric", "total T [s]", "mean penalty", "bg flows", "events"],
        rows,
        title=(f"{application.name}: {application.num_tasks} tasks on "
               f"{args.hosts}x {args.network} ({args.mode}, {args.placement})"),
        float_format="{:.4f}",
    ))
    if injectors:
        for injector in injectors:
            print(f"injector: {injector.describe()}")
        if clean_report.total_time > 0:
            slowdown = loaded_report.total_time / clean_report.total_time
            print(f"foreground slowdown: {slowdown:.3f}x")
    if sink is not None:
        print(f"trace: {sink.emitted} records written to {args.trace}")
    return 0


def cmd_trace_record(args: argparse.Namespace) -> int:
    """``repro trace record``: run one workload, write its JSONL trace."""
    scenario = _scenario_from_args(args, f"trace-{args.workload}")
    application = scenario.build_application()
    injectors = scenario.build_injectors()
    with JsonlTraceSink(args.out) as sink:
        sink.emit(_run_meta(args, scenario))
        report, stats = _run_scenario(args, application, injectors, trace=sink)
        emitted = sink.emitted
    print(render_table(
        ["workload", "tasks", "fabric", "total T [s]", "records"],
        [[application.name, application.num_tasks,
          "loaded" if injectors else "clean", report.total_time, emitted]],
        title=f"trace recorded to {args.out}",
        float_format="{:.4f}",
    ))
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """``repro trace summarize``: timeline report of a trace file.

    Text and ``--json`` render the *same* in-memory
    :func:`~repro.analysis.timeline_record` bundle, so the two views cannot
    drift apart.
    """
    log = read_trace_log(args.trace_file)
    record = timeline_record(log, bins=args.bins)
    if args.as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(timeline_summary_table(record=record,
                                     title=f"trace timeline: {args.trace_file}"))
    return 0


def cmd_trace_tail(args: argparse.Namespace) -> int:
    """``repro trace tail``: follow a live trace with the streaming reader.

    Polls the file every ``--interval`` seconds, feeding each batch into a
    :class:`~repro.analysis.StreamingTimeline`; exits once the file has
    been quiet for ``--timeout`` seconds (or after one poll with
    ``--once``), then prints the timeline report of everything seen — the
    same report ``trace summarize`` prints on the finished file.
    """
    reader = StreamingTraceReader(args.trace_file)
    timeline = StreamingTimeline()
    interval = max(0.05, float(args.interval))
    quiet = 0.0
    while True:
        absorbed = timeline.feed(reader.poll())
        if absorbed:
            quiet = 0.0
            summary = timeline.summary()
            print(
                f"tail: +{absorbed} records ({summary['records']} total) | "
                f"steps: {summary['steps']} | "
                f"completions: {summary['completions']} | "
                f"peak active: {summary['peak_active_transfers']}",
                flush=True,
            )
        if args.once:
            break
        if not absorbed:
            quiet += interval
            if quiet >= args.timeout:
                break
            time.sleep(interval)
    print()
    print(timeline_summary_table(record=timeline.record(bins=args.bins),
                                 title=f"trace tail: {args.trace_file}"))
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    """``repro trace diff``: locate the first diverging record of two traces.

    Exit code 0 when the traces are identical, 1 when they diverge (the
    report names the diverging record, its JSONL line and the differing
    fields, with aligned context) — usable straight from CI.
    """
    diff = diff_trace_files(args.trace_a, args.trace_b, context=args.context)
    print(format_trace_diff(diff, label_a=args.trace_a, label_b=args.trace_b))
    return 0 if diff.identical else 1


def cmd_trace_replay(args: argparse.Namespace) -> int:
    """``repro trace replay``: re-impose a recorded interference schedule.

    The workload/cluster flags come from the trace's ``run.meta`` record
    (any explicitly passed flag overrides it); the injector schedule is the
    trace's own ``inject.*`` stream, replayed through
    :class:`~repro.trace.TraceReplayInjector`.  Replaying a run's own trace
    reproduces it bit-exactly, so the recorded and replayed makespans must
    agree.
    """
    log = read_trace_log(args.trace_file)
    meta = log.meta()
    if not meta:
        raise ReproError(
            f"{args.trace_file!r} has no run.meta record; re-record it with "
            "'repro trace record' (or pass a trace written by "
            "'repro simulate --trace')"
        )
    overridden = False
    for key in ("workload", "hosts", "tasks", "size", "problem_size",
                "block_size", "network", "placement", "seed",
                "cores_per_node", "mode"):
        if getattr(args, key, None) is None and key in meta:
            setattr(args, key, meta[key])
        elif getattr(args, key, None) is not None and \
                getattr(args, key) != meta.get(key):
            overridden = True  # cross-scenario replay: no bit-exactness claim
    scenario = _scenario_from_args(args, f"replay-{args.workload}")
    application = scenario.build_application()
    replay = TraceReplayInjector.from_log(log)
    injectors = (replay,) if replay.events else ()
    report, stats = _run_scenario(args, application, injectors)

    recorded_events = log.records_of("task.event")
    recorded_makespan = max((float(r.data.get("end", r.time))
                             for r in recorded_events), default=None)
    rows = [["replayed", report.total_time, len(replay.events),
             stats["background_flows"]]]
    if recorded_makespan is not None:
        rows.insert(0, ["recorded", recorded_makespan, len(replay.events),
                        sum(1 for r in log if r.kind == "inject.flow_start")])
    print(render_table(
        ["run", "total T [s]", "replayed events", "bg flows"],
        rows,
        title=(f"trace replay of {args.trace_file}: {application.name} on "
               f"{args.hosts}x {args.network}"),
        float_format="{:.6f}",
    ))
    if overridden:
        # the recorded schedule was imposed on a *different* scenario —
        # the whole point of cross-workload replay, so no reproduction
        # claim (and no failure exit) applies
        print("scenario overridden by flags: recorded and replayed runs are "
              "not comparable")
    elif recorded_makespan is not None:
        match = abs(recorded_makespan - report.total_time) <= 1e-9 * max(
            1.0, abs(recorded_makespan))
        print(f"replay reproduces the recorded run: {'yes' if match else 'NO'}")
        if not match:
            return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: the repo invariant linter (:mod:`repro.checks`).

    Reached only through the stub subparser (``repro --help`` discovery);
    the real dispatch short-circuits in :func:`main` so the linter owns its
    whole argument vector, ``--help`` included.
    """
    from .checks.cli import main as check_main

    return check_main(list(args.check_args))


def cmd_calibrate(args: argparse.Namespace) -> int:
    tool = PenaltyTool(args.network, iterations=args.iterations, num_hosts=args.hosts)
    parameters = calibrate_from_measurer(tool.measure_penalties)
    print(f"network  : {args.network}")
    print(f"beta     : {parameters.beta:.4f}")
    print(f"gamma_o  : {parameters.gamma_o:.4f}")
    print(f"gamma_i  : {parameters.gamma_i:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bandwidth-sharing penalty models (Vienne et al., Cluster 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scheme_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheme", help="inline scheme, e.g. '0->1 0->2 0->3'")
        p.add_argument("--scheme-file", help="path to a scheme description file")
        p.add_argument("--size", help="default message size (e.g. 20M, 4MB)", default=None)
        p.add_argument("--network", default="ethernet",
                       help="network technology (ethernet, myrinet, infiniband)")

    predict = sub.add_parser("predict", help="predict penalties with a contention model")
    add_scheme_arguments(predict)
    predict.add_argument("--model", default=None,
                         help="model name or network alias (defaults to the network's model)")
    predict.set_defaults(handler=cmd_predict)

    measure = sub.add_parser("measure", help="measure a scheme on the cluster emulator")
    add_scheme_arguments(measure)
    measure.add_argument("--iterations", type=int, default=3)
    measure.add_argument("--hosts", type=int, default=32)
    measure.set_defaults(handler=cmd_measure)

    campaign = sub.add_parser(
        "campaign",
        help="run a scenario campaign from a JSON spec (parallel, cached)",
    )
    campaign.add_argument("--spec", required=True,
                          help="path to the campaign spec (JSON)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker pool width (1 = serial)")
    campaign.add_argument("--backend", choices=["serial", "thread", "process"],
                          default="thread",
                          help="worker pool kind when --workers > 1")
    campaign.add_argument("--cache", default=None,
                          help="persistent penalty-cache file (created when missing)")
    campaign.add_argument("--out", default=None,
                          help="write the full results as JSON to this path")
    campaign.add_argument("--csv", default=None,
                          help="write summary rows as CSV to this path")
    campaign.add_argument("--trace-dir", default=None,
                          help="write one JSONL trace per application scenario "
                               "into this directory (overrides the spec's "
                               "trace_dir)")
    campaign.add_argument("--progress", action="store_true",
                          help="print live per-scenario progress (tails the "
                               "scenario traces; enables tracing into a "
                               "temporary directory when --trace-dir is off)")
    campaign.add_argument("--progress-interval", type=float, default=1.0,
                          help="seconds between progress lines (default 1.0)")
    campaign.add_argument("--metrics-every", type=int, default=0,
                          help="emit a metrics.sample trace record every N "
                               "engine steps per scenario (0 = off; the "
                               "samples carry wall-clock timings, so sampled "
                               "traces are not byte-reproducible)")
    campaign.set_defaults(handler=cmd_campaign)

    def add_workload_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", default="broadcast",
                       help="collective pattern (broadcast, ring-allgather, "
                            "flat-gather, alltoall) or 'linpack'")
        p.add_argument("--network", default="ethernet")
        p.add_argument("--hosts", type=int, default=8)
        p.add_argument("--tasks", type=int, default=None,
                       help="MPI tasks (defaults to --hosts)")
        p.add_argument("--size", default=None,
                       help="collective message size (e.g. 1M)")
        p.add_argument("--problem-size", type=int, default=4000)
        p.add_argument("--block-size", type=int, default=200)
        p.add_argument("--placement", default="RRP")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cores-per-node", type=int, default=2)
        p.add_argument("--mode", choices=["predictive", "emulated"],
                       default="predictive")

    def add_injector_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--bg-rate", type=float, default=0.0,
                       help="background flow arrivals per second (0 = off)")
        p.add_argument("--bg-size", default=None,
                       help="background flow size (default 4M)")
        p.add_argument("--bg-seed", type=int, default=0)
        p.add_argument("--bg-max-flows", type=int, default=None)
        p.add_argument("--bg-until", type=float, default=None)
        p.add_argument("--degrade-factor", type=float, default=1.0,
                       help="link capacity multiplier during the window (1 = off)")
        p.add_argument("--degrade-start", type=float, default=0.0)
        p.add_argument("--degrade-until", type=float, default=None)
        p.add_argument("--degrade-hosts", default=None,
                       help="comma-separated host ids (default: all)")
        p.add_argument("--slowdown-factor", type=float, default=1.0,
                       help="compute-rate multiplier during the window (1 = off)")
        p.add_argument("--slowdown-start", type=float, default=0.0)
        p.add_argument("--slowdown-until", type=float, default=None)
        p.add_argument("--slowdown-hosts", default=None,
                       help="comma-separated host ids (default: all)")

    simulate = sub.add_parser(
        "simulate",
        help="simulate one application workload, optionally on a loaded fabric",
    )
    add_workload_arguments(simulate)
    add_injector_arguments(simulate)
    simulate.add_argument("--trace", default=None,
                          help="write the run's structured JSONL trace to this "
                               "path (the loaded run when injectors are on)")
    simulate.set_defaults(handler=cmd_simulate)

    trace = sub.add_parser(
        "trace",
        help="record / summarize / replay structured simulation traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record", help="run one workload and write its JSONL trace")
    add_workload_arguments(record)
    add_injector_arguments(record)
    record.add_argument("--out", required=True,
                        help="trace output path (JSONL)")
    record.set_defaults(handler=cmd_trace_record)

    summarize = trace_sub.add_parser(
        "summarize", help="print the timeline summary of a trace file")
    summarize.add_argument("trace_file", help="JSONL trace path")
    summarize.add_argument("--bins", type=int, default=10,
                           help="timeline windows (default 10)")
    summarize.add_argument("--json", dest="as_json", action="store_true",
                           help="print the summary + bins as JSON instead of "
                                "the text tables (same underlying record)")
    summarize.set_defaults(handler=cmd_trace_summarize)

    tail = trace_sub.add_parser(
        "tail", help="follow a live (still growing) trace file")
    tail.add_argument("trace_file", help="JSONL trace path (may not exist yet)")
    tail.add_argument("--interval", type=float, default=0.5,
                      help="seconds between polls (default 0.5)")
    tail.add_argument("--timeout", type=float, default=10.0,
                      help="stop after this many quiet seconds (default 10)")
    tail.add_argument("--once", action="store_true",
                      help="poll once and print the report (no following)")
    tail.add_argument("--bins", type=int, default=10,
                      help="timeline windows of the final report (default 10)")
    tail.set_defaults(handler=cmd_trace_tail)

    diff = trace_sub.add_parser(
        "diff", help="locate the first diverging record of two traces")
    diff.add_argument("trace_a", help="left JSONL trace path")
    diff.add_argument("trace_b", help="right JSONL trace path")
    diff.add_argument("--context", type=int, default=3,
                      help="records of aligned context around the divergence "
                           "(default 3)")
    diff.set_defaults(handler=cmd_trace_diff)

    replay = trace_sub.add_parser(
        "replay",
        help="replay a recorded interference schedule through the engine")
    replay.add_argument("trace_file", help="JSONL trace path (needs run.meta)")
    for flag, kwargs in (
        ("--workload", {}), ("--network", {}), ("--hosts", {"type": int}),
        ("--tasks", {"type": int}), ("--size", {}),
        ("--problem-size", {"type": int}), ("--block-size", {"type": int}),
        ("--placement", {}), ("--seed", {"type": int}),
        ("--cores-per-node", {"type": int}),
        ("--mode", {"choices": ["predictive", "emulated"]}),
    ):
        replay.add_argument(flag, default=None,
                            help="override the trace's recorded value", **kwargs)
    # replay imposes the recorded schedule, not freshly built injectors
    replay.set_defaults(handler=cmd_trace_replay, bg_rate=0.0, bg_size=None,
                        bg_seed=0, bg_max_flows=None, bg_until=None,
                        degrade_factor=1.0, degrade_start=0.0,
                        degrade_until=None, degrade_hosts=None,
                        slowdown_factor=1.0, slowdown_start=0.0,
                        slowdown_until=None, slowdown_hosts=None)

    check = sub.add_parser(
        "check",
        help="run the repo invariant linter (RC01-RC06; see repro.checks)",
        add_help=False,
    )
    check.add_argument("check_args", nargs=argparse.REMAINDER)
    check.set_defaults(handler=cmd_check)

    calibrate = sub.add_parser("calibrate", help="estimate (beta, gamma_o, gamma_i)")
    calibrate.add_argument("--network", default="ethernet")
    calibrate.add_argument("--iterations", type=int, default=3)
    calibrate.add_argument("--hosts", type=int, default=32)
    calibrate.set_defaults(handler=cmd_calibrate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "check":
        # hand the linter its full argument vector untouched (argparse
        # REMAINDER mangles leading options like --format)
        from .checks.cli import main as check_main

        return check_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.command == "predict" and args.model is None:
        args.model = args.network
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
