"""RC01 — the trace-kind registry and its documentation stay in sync.

Two directions of drift, both fatal to the "one schema, documented" story
of :mod:`repro.trace`:

* a call site emitting a ``TraceRecord`` with a string-literal kind that is
  **not** in ``KNOWN_KINDS`` (a typo'd or unregistered kind silently
  producing records no reader vocabulary covers);
* a ``KNOWN_KINDS`` entry missing from the record-kind tables of
  ``docs/trace-format.md`` (code moved, docs didn't).

The registry is taken from a scanned file assigning ``KNOWN_KINDS`` when
one is in the scan set (the real tree, or a fixture tree shipping its own
mini registry); otherwise it is imported from :mod:`repro.trace.records`.
The documentation side runs only when a trace-format document is found
(``<root>/docs/trace-format.md`` or the ``--trace-doc`` override).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from .base import Checker, CheckContext, ParsedModule

__all__ = ["TraceKindChecker"]

#: a documented kind: the backticked first cell of a markdown table row
_DOC_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_]+(?:\.[a-z0-9_]+)*)`\s*\|")

#: shape of a plausible kind literal; anything else is not a kind at all
_KIND_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def _kind_argument(call: ast.Call) -> Optional[ast.Constant]:
    """The string-literal ``kind`` argument of a ``TraceRecord(...)`` call."""
    candidate: Optional[ast.expr] = None
    if len(call.args) >= 2:
        candidate = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "kind":
            candidate = keyword.value
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate
    return None


class TraceKindChecker(Checker):
    code = "RC01"
    name = "trace-kind-registry"
    description = ("string-literal TraceRecord kinds must be registered in "
                   "KNOWN_KINDS, and every registered kind must be documented "
                   "in docs/trace-format.md")

    def __init__(self) -> None:
        #: (module, line, kind) of every literal-kind TraceRecord call site
        self._call_sites: List[Tuple[ParsedModule, int, str]] = []
        #: kind -> (module, line) of its KNOWN_KINDS entry, when scanned
        self._registry: Optional[Dict[str, Tuple[ParsedModule, int]]] = None
        self._registry_module: Optional[ParsedModule] = None

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                func_name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None)
                if func_name == "TraceRecord":
                    literal = _kind_argument(node)
                    if literal is not None:
                        self._call_sites.append(
                            (module, literal.lineno, literal.value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == "KNOWN_KINDS":
                        self._load_registry(module, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name) and \
                        node.target.id == "KNOWN_KINDS":
                    self._load_registry(module, node.value)

    def _load_registry(self, module: ParsedModule, value: ast.expr) -> None:
        if not isinstance(value, (ast.Tuple, ast.List)):
            return
        registry: Dict[str, Tuple[ParsedModule, int]] = {}
        for element in value.elts:
            if isinstance(element, ast.Constant) and \
                    isinstance(element.value, str):
                registry[element.value] = (module, element.lineno)
        self._registry = registry
        self._registry_module = module

    # ------------------------------------------------------------- finalize
    def finalize(self, ctx: CheckContext) -> None:
        known = self._known_kinds()
        if known is None:
            return  # no registry reachable: nothing to check against
        for module, line, kind in self._call_sites:
            if kind not in known:
                ctx.report(module, line, self.code,
                           f"trace kind {kind!r} is not in KNOWN_KINDS "
                           "(repro.trace.records); register it and document "
                           "it in docs/trace-format.md")
        self._check_documentation(ctx, known)

    def _known_kinds(self) -> Optional[Set[str]]:
        if self._registry is not None:
            return set(self._registry)
        try:
            from ..trace.records import KNOWN_KINDS
        except Exception:  # pragma: no cover - only without repro importable
            return None
        return set(KNOWN_KINDS)

    def _check_documentation(self, ctx: CheckContext, known: Set[str]) -> None:
        doc = ctx.trace_doc
        if doc is None:
            candidate = ctx.root / "docs" / "trace-format.md"
            doc = candidate if candidate.is_file() else None
        if doc is None:
            return
        documented: Set[str] = set()
        try:
            text = doc.read_text(encoding="utf-8")
        except OSError as exc:
            ctx.report(None, 0, self.code,
                       f"cannot read trace-format document {doc}: {exc}",
                       rel=str(doc))
            return
        for line in text.splitlines():
            match = _DOC_ROW_RE.match(line.strip())
            if match and _KIND_RE.match(match.group(1)):
                documented.add(match.group(1))
        try:
            doc_rel = doc.resolve().relative_to(ctx.root.resolve()).as_posix()
        except ValueError:
            doc_rel = doc.as_posix()
        for kind in sorted(known - documented):
            module, line = (self._registry.get(kind, (None, 0))
                            if self._registry is not None else (None, 0))
            if module is not None:
                ctx.report(module, line, self.code,
                           f"KNOWN_KINDS entry {kind!r} is not documented in "
                           f"{doc_rel} (add a record-kind table row)")
            else:
                ctx.report(None, 0, self.code,
                           f"KNOWN_KINDS entry {kind!r} is not documented "
                           "(add a record-kind table row)", rel=doc_rel)
