"""RC02 — numpy is imported exactly once, behind :mod:`repro._numpy`.

The package declares numpy as a hard dependency but routes every import
through ``repro._numpy`` so a missing install fails with one actionable
message instead of a mid-simulation traceback (and so an optional-numpy
build stays a one-file change).  A bare ``import numpy`` anywhere else
reopens that hole; this rule closes it mechanically.

``repro check --fix`` rewrites the single-alias forms in place::

    import numpy as np      ->  from repro._numpy import np
    import numpy            ->  from repro._numpy import np as numpy

``from numpy import X`` cannot be rewritten mechanically (the guard module
only exports the ``np`` namespace) and stays a reported finding.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from .base import Checker, CheckContext, ParsedModule

__all__ = ["NumpyGuardChecker", "FIXABLE_FORMS"]

#: forms fix() can rewrite: (single-alias plain import of numpy itself)
FIXABLE_FORMS = ("import numpy", "import numpy as <name>")


def numpy_import_findings(tree: ast.Module) -> List[Tuple[int, str, bool]]:
    """(line, message, fixable) for every direct numpy import in ``tree``."""
    out: List[Tuple[int, str, bool]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    bound = alias.asname or alias.name.split(".")[0]
                    fixable = (alias.name == "numpy" and len(node.names) == 1)
                    out.append((
                        node.lineno,
                        f"direct 'import {alias.name}' (binds {bound!r}); "
                        "route it through the guard: "
                        "'from repro._numpy import np'",
                        fixable,
                    ))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (module == "numpy" or
                                    module.startswith("numpy.")):
                names = ", ".join(alias.name for alias in node.names)
                out.append((
                    node.lineno,
                    f"direct 'from {module} import {names}'; import the "
                    "guarded namespace instead: 'from repro._numpy import np' "
                    "and use np.<name>",
                    False,
                ))
    return out


class NumpyGuardChecker(Checker):
    code = "RC02"
    name = "numpy-guard"
    description = ("'import numpy' is permitted only inside repro/_numpy.py; "
                   "everything else must use 'from repro._numpy import np'")

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        if module.basename == "_numpy.py":
            return  # the guard module itself is the one sanctioned import
        for line, message, _fixable in numpy_import_findings(module.tree):
            ctx.report(module, line, self.code, message)
