"""Command line entry point: ``repro check`` / ``python -m repro.checks``.

Exit codes: 0 — clean; 1 — findings reported; 2 — usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .fixes import fix_paths
from .runner import (
    ALL_CHECKERS,
    DEFAULT_EXCLUDED_DIRS,
    collect_files,
    format_findings,
    run_check,
)

__all__ = ["main", "build_parser"]

#: scanned when no paths are given: the whole maintained tree
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=("repo-specific invariant linter: trace registry, numpy "
                     "guard, guarded emission, delta contract, vectorized "
                     "parity manifest, benchmark emit discipline"),
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to check "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--root", default=None,
                        help="repository root findings are reported relative "
                             "to (default: the working directory)")
    parser.add_argument("--format", dest="fmt", choices=["text", "json"],
                        default="text", help="output format (default text)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--trace-doc", default=None,
                        help="trace-format document RC01 checks against "
                             "(default: <root>/docs/trace-format.md)")
    parser.add_argument("--parity-manifest", default=None,
                        help="parity manifest RC05 checks against (default: "
                             "the checked-in src/repro/checks/"
                             "parity_manifest.json)")
    parser.add_argument("--no-default-excludes", action="store_true",
                        help="descend into fixture/build directories that "
                             "are pruned by default")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (RC02 import rewrites) "
                             "before checking")
    parser.add_argument("--list-checks", action="store_true",
                        help="list the shipped rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checks:
        for cls in ALL_CHECKERS:
            print(f"{cls.code}  {cls.name}: {cls.description}")
        return 0

    root = Path(args.root) if args.root else Path.cwd()
    raw_paths = args.paths if args.paths else list(DEFAULT_PATHS)
    paths = [Path(p) for p in raw_paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    checkers = None
    if args.select:
        wanted = {code.strip().upper()
                  for code in args.select.split(",") if code.strip()}
        checkers = [cls for cls in ALL_CHECKERS if cls.code in wanted]
        unknown = wanted - {cls.code for cls in ALL_CHECKERS}
        if unknown:
            print(f"error: unknown rule codes: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    excluded: Sequence[str] = (
        () if args.no_default_excludes else DEFAULT_EXCLUDED_DIRS)

    if args.fix:
        try:
            files = collect_files(paths, excluded_dirs=excluded)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for path, rewrites in fix_paths(files):
            print(f"fixed: {path} ({rewrites} import"
                  f"{'' if rewrites == 1 else 's'} rewritten)")

    try:
        findings, ctx = run_check(
            paths,
            root=root,
            checkers=checkers,
            trace_doc=Path(args.trace_doc) if args.trace_doc else None,
            parity_manifest=(Path(args.parity_manifest)
                             if args.parity_manifest else None),
            excluded_dirs=excluded,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(format_findings(findings, ctx, fmt=args.fmt))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
