"""File collection and orchestration of one ``repro check`` run."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Type

from .base import Checker, CheckContext, Finding, ParsedModule
from .bench_emit import BenchEmitChecker
from .delta_contract import DeltaContractChecker
from .guarded_emission import GuardedEmissionChecker
from .numpy_guard import NumpyGuardChecker
from .parity import ParityManifestChecker
from .trace_kinds import TraceKindChecker

__all__ = [
    "ALL_CHECKERS",
    "DEFAULT_EXCLUDED_DIRS",
    "collect_files",
    "run_check",
    "format_findings",
]

#: every shipped rule, in code order
ALL_CHECKERS: Tuple[Type[Checker], ...] = (
    TraceKindChecker,
    NumpyGuardChecker,
    GuardedEmissionChecker,
    DeltaContractChecker,
    ParityManifestChecker,
    BenchEmitChecker,
)

#: directory names skipped during recursive collection: seeded-violation
#: fixture trees (they *must* contain findings) and the usual build noise
DEFAULT_EXCLUDED_DIRS: Tuple[str, ...] = (
    "fixtures", "__pycache__", ".git", ".hypothesis", "build", "dist",
)


def collect_files(paths: Sequence[Path], *,
                  excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
                  ) -> List[Path]:
    """Python files under ``paths``, sorted, fixture/virtual dirs pruned.

    A path given *explicitly* is always included, even inside an excluded
    directory — that is how the fixture tests point the checker at the
    seeded trees.
    """
    excluded = set(excluded_dirs)
    out: List[Path] = []
    seen = set()

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(path)

    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            relative_parts = candidate.relative_to(path).parts[:-1]
            if any(part in excluded for part in relative_parts):
                continue
            add(candidate)
    return out


def run_check(paths: Sequence[Path], *,
              root: Optional[Path] = None,
              checkers: Optional[Iterable[Type[Checker]]] = None,
              trace_doc: Optional[Path] = None,
              parity_manifest: Optional[Path] = None,
              hot_modules: Optional[Sequence[str]] = None,
              excluded_dirs: Sequence[str] = DEFAULT_EXCLUDED_DIRS,
              ) -> Tuple[List[Finding], CheckContext]:
    """Parse every file once, run every checker, return sorted findings.

    A file that fails to parse produces a single ``RC00`` syntax finding
    instead of aborting the run — the gate reports, CI fails, the author
    sees the real traceback from the test suite anyway.
    """
    resolved_root = (root if root is not None else Path.cwd()).resolve()
    ctx = CheckContext(resolved_root, trace_doc=trace_doc,
                       parity_manifest=parity_manifest,
                       hot_modules=hot_modules)
    active = [cls() for cls in (checkers if checkers is not None
                                else ALL_CHECKERS)]
    for path in collect_files(paths, excluded_dirs=excluded_dirs):
        try:
            module = ParsedModule.load(path, resolved_root)
        except SyntaxError as exc:
            rel = _rel(path, resolved_root)
            ctx.findings.append(Finding(
                path=rel, line=exc.lineno or 0, code="RC00",
                message=f"file does not parse: {exc.msg}"))
            continue
        ctx.modules.append(module)
        for checker in active:
            checker.visit_module(ctx, module)
    for checker in active:
        checker.finalize(ctx)
    ctx.findings.sort()
    return ctx.findings, ctx


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def format_findings(findings: Sequence[Finding], ctx: CheckContext, *,
                    fmt: str = "text") -> str:
    """Render a finished run: one line per finding, or the JSON bundle."""
    if fmt == "json":
        return json.dumps({
            "version": 1,
            "checked_files": len(ctx.modules),
            "suppressed": ctx.suppressed_count,
            "findings": [finding.to_dict() for finding in findings],
        }, indent=2, sort_keys=True)
    lines = [finding.format() for finding in findings]
    summary = (f"repro check: {len(findings)} finding"
               f"{'' if len(findings) == 1 else 's'} in "
               f"{len(ctx.modules)} files")
    if ctx.suppressed_count:
        summary += f" ({ctx.suppressed_count} suppressed)"
    lines.append(summary)
    return "\n".join(lines)
