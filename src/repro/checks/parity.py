"""RC05 — every ``vectorized`` toggle is named in the parity manifest.

Every batch path in the codebase ships behind a ``vectorized`` toggle that
is property-tested bit-exact against its scalar twin (PRs 6/8).  The
manifest (``src/repro/checks/parity_manifest.json``) is the checked-in map
from toggle module to its scalar-vs-array property-test file; this rule
makes the pairing mechanical:

* a library module that grows a ``vectorized`` toggle (a function/method
  parameter named ``vectorized``, or a class attribute starting with
  ``vectorized``) must appear in the manifest — a new batch path cannot
  land untested;
* every manifest entry must point at an existing module and an existing
  test file, and the module must still contain a toggle — the manifest
  cannot go stale in either direction.

Test and benchmark files (``test_*``, ``bench_*``, ``conftest.py``) are
exempt: they *are* the parity evidence, not new batch paths.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .base import Checker, CheckContext, ParsedModule

__all__ = ["ParityManifestChecker", "DEFAULT_MANIFEST"]

#: the checked-in manifest shipped next to this module
DEFAULT_MANIFEST = Path(__file__).with_name("parity_manifest.json")


def module_toggle_line(tree: ast.Module) -> Optional[int]:
    """First line defining a ``vectorized`` toggle, or None.

    A toggle is a function/method parameter named ``vectorized`` or a
    class-body assignment to a name starting with ``vectorized`` (covers
    ``EngineConfig.vectorized_calendar``).  Local variables inside function
    bodies do not count — they are plumbing, not a public toggle.
    """
    best: Optional[int] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                if arg.arg == "vectorized":
                    line = arg.lineno
                    best = line if best is None else min(best, line)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name) and \
                            target.id.startswith("vectorized"):
                        best = (stmt.lineno if best is None
                                else min(best, stmt.lineno))
    return best


def _is_exempt(basename: str) -> bool:
    return (basename.startswith("test_") or basename.startswith("bench_")
            or basename == "conftest.py")


class ParityManifestChecker(Checker):
    code = "RC05"
    name = "vectorized-parity-manifest"
    description = ("modules with a 'vectorized' toggle must be mapped to "
                   "their scalar-vs-array property-test file in the parity "
                   "manifest (and the manifest must not go stale)")

    def __init__(self) -> None:
        #: rel-path -> (module, toggle line) of every scanned toggle module
        self._toggles: Dict[str, Tuple[ParsedModule, int]] = {}
        #: rel-path of every scanned module (stale-entry detection)
        self._scanned: Dict[str, ParsedModule] = {}

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        if _is_exempt(module.basename):
            return
        self._scanned[module.rel] = module
        line = module_toggle_line(module.tree)
        if line is not None:
            self._toggles[module.rel] = (module, line)

    def finalize(self, ctx: CheckContext) -> None:
        manifest_path = ctx.parity_manifest or DEFAULT_MANIFEST
        if ctx.parity_manifest is None:
            try:
                manifest_path.resolve().relative_to(ctx.root.resolve())
            except ValueError:
                # the checked-in manifest belongs to a different tree than
                # the one being scanned (a fixture root, a tmp dir): its
                # entries cannot be resolved here, so the rule stands down
                return
        try:
            manifest_rel = manifest_path.resolve().relative_to(
                ctx.root.resolve()).as_posix()
        except ValueError:
            manifest_rel = manifest_path.as_posix()
        try:
            raw = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            ctx.report(None, 0, self.code,
                       f"parity manifest unreadable: {exc}", rel=manifest_rel)
            return
        except json.JSONDecodeError as exc:
            ctx.report(None, 0, self.code,
                       f"parity manifest is not valid JSON: {exc}",
                       rel=manifest_rel)
            return
        entries = raw.get("modules") if isinstance(raw, dict) else None
        if not isinstance(entries, dict):
            ctx.report(None, 0, self.code,
                       "parity manifest must be an object with a 'modules' "
                       "mapping of {module: property-test file}",
                       rel=manifest_rel)
            return

        for rel, (module, line) in sorted(self._toggles.items()):
            if rel not in entries:
                ctx.report(module, line, self.code,
                           f"module {rel!r} defines a 'vectorized' toggle "
                           f"but is not in the parity manifest "
                           f"({manifest_rel}); map it to its "
                           "scalar-vs-array property-test file")

        for rel, test_rel in sorted(entries.items()):
            if not isinstance(test_rel, str):
                ctx.report(None, 0, self.code,
                           f"parity manifest entry {rel!r} must map to a "
                           "test-file path string", rel=manifest_rel)
                continue
            if not (ctx.root / rel).is_file():
                ctx.report(None, 0, self.code,
                           f"parity manifest names missing module {rel!r}",
                           rel=manifest_rel)
            elif rel in self._scanned and rel not in self._toggles:
                module = self._scanned[rel]
                ctx.report(module, 1, self.code,
                           f"module {rel!r} is in the parity manifest but no "
                           "longer defines a 'vectorized' toggle; drop the "
                           "stale entry")
            if not (ctx.root / test_rel).is_file():
                ctx.report(None, 0, self.code,
                           f"parity manifest maps {rel!r} to missing test "
                           f"file {test_rel!r}", rel=manifest_rel)
