"""RC03 — hot-path observability calls are dominated by ``is not None``.

The trace/metrics contract of PRs 5/7: with tracing and metrics disabled,
the simulation hot paths pay exactly one pointer test per potential
emission — so every ``.emit(...)``, ``.sample_record(...)``, phase-timer
use (``.timer(...)``, ``.observe(...)``, ``.due(...)``) and
``emit_inject_apply(...)`` call in the hot modules must sit under an
explicit ``is not None`` guard on the handle it dereferences.  The rule
also keeps anyone from "simplifying" a guard into truthiness (``if
trace:``) or dropping it during a refactor — the bit-exactness suites only
catch that when the unguarded path happens to crash.

Hot modules are matched by basename (``fluid.py``, ``engine.py``,
``incremental.py``, ``sharing.py``, ``allocator.py`` by default) so the
rule follows the files through refactors and applies to fixture twins.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import Checker, CheckContext, ParsedModule, dotted_name
from .guards import GuardIndex

__all__ = ["GuardedEmissionChecker"]

#: attribute calls whose receiver must be guarded: the trace-sink writes and
#: the PhaseTimer / registry surface of repro.obs
_GUARDED_METHODS = frozenset({"emit", "sample_record", "timer", "observe", "due"})

#: plain-name helper whose first argument is the trace handle
_GUARDED_HELPERS = frozenset({"emit_inject_apply"})


class GuardedEmissionChecker(Checker):
    code = "RC03"
    name = "guarded-emission"
    description = ("in hot-path modules every .emit/.sample_record/PhaseTimer "
                   "use must be dominated by an 'is not None' test on the "
                   "same name (the disabled path stays one pointer test)")

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        if module.basename not in ctx.hot_modules:
            return
        index: Optional[GuardIndex] = None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver: Optional[ast.expr] = None
            label = ""
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in _GUARDED_METHODS:
                receiver = func.value
                label = f".{func.attr}()"
            elif isinstance(func, ast.Name) and func.id in _GUARDED_HELPERS \
                    and node.args:
                receiver = node.args[0]
                label = f"{func.id}(...)"
            if receiver is None:
                continue
            recv_name = dotted_name(receiver)
            if recv_name is None:
                # a computed receiver (call/subscript chain) cannot be
                # pointer-guarded at all: always a finding
                ctx.report(module, node.lineno, self.code,
                           f"{label} on a computed receiver cannot satisfy "
                           "the one-pointer-test contract; bind it to a "
                           "name and guard that name with 'is not None'")
                continue
            if self._receiver_exempt(recv_name):
                continue
            if index is None:
                index = GuardIndex(module.tree)
            if not index.is_guarded(node, recv_name):
                ctx.report(module, node.lineno, self.code,
                           f"{label} on {recv_name!r} is not dominated by an "
                           f"'{recv_name} is not None' test; hot-path "
                           "emissions must keep the disabled path to one "
                           "pointer test")

    @staticmethod
    def _receiver_exempt(recv_name: str) -> bool:
        """Receivers that are never None by construction.

        ``self.stats``-style always-present counter objects don't have an
        ``emit``; nothing to exempt today, but the hook keeps the policy in
        one place.
        """
        return False
