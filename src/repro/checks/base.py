"""Core vocabulary of the invariant linter: findings, parsed modules, checkers.

``repro check`` (:mod:`repro.checks`) is a repo-specific static-analysis
gate: each :class:`Checker` encodes one convention the codebase relies on
but Python itself cannot enforce — the trace-kind registry staying in sync
with its documentation, the ``repro._numpy`` import guard, the
"disabled path is one pointer test" emission contract, the three-tier
``RateProvider`` delta contract, the vectorized-parity manifest and the
benchmark emit discipline.  The checkers operate on plain :mod:`ast` trees
(per-file ``visit`` hooks plus a cross-file ``finalize``), so the gate runs
anywhere the stdlib runs — no third-party linter required.

Suppressions
------------
A finding can be silenced at the exact line it is reported on (or the line
directly above, for statements that would overflow the line with the
comment)::

    trace.emit(record)  # repro-check: ignore[RC03]

or for a whole file with a module-level comment::

    # repro-check: ignore-file[RC04]

``ignore`` / ``ignore-file`` without a bracketed code list silences every
rule.  Codes are comma-separated (``ignore[RC01, RC02]``).  Suppressions
are deliberately loud in review diffs — the convention is to attach a
rationale on the same comment line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = [
    "Finding",
    "ParsedModule",
    "Suppressions",
    "Checker",
    "CheckContext",
    "dotted_name",
]

#: matches one suppression comment; group(1) is ``ignore`` or ``ignore-file``,
#: group(2) the optional bracketed code list
_SUPPRESS_RE = re.compile(
    r"#\s*repro-check:\s*(ignore-file|ignore)\s*(?:\[([^\]]*)\])?"
)

#: the sentinel meaning "every code is suppressed"
_ALL_CODES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation: where, which rule, and what went wrong."""

    path: str  #: repo-root-relative POSIX path
    line: int  #: 1-based line number (0 for file-scoped findings)
    code: str  #: rule code, e.g. ``"RC02"``
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }


class Suppressions:
    """Per-file suppression table parsed from ``# repro-check:`` comments."""

    def __init__(self, file_codes: FrozenSet[str],
                 line_codes: Dict[int, FrozenSet[str]]) -> None:
        self._file_codes = file_codes
        self._line_codes = line_codes

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        file_codes: Set[str] = set()
        line_codes: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "repro-check" not in line:
                continue
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            raw = match.group(2)
            codes = (
                frozenset(code.strip().upper()
                          for code in raw.split(",") if code.strip())
                if raw is not None and raw.strip() else _ALL_CODES
            )
            if match.group(1) == "ignore-file":
                file_codes |= codes
            else:
                line_codes.setdefault(lineno, set()).update(codes)
        return cls(frozenset(file_codes),
                   {line: frozenset(codes) for line, codes in line_codes.items()})

    def _hits(self, codes: FrozenSet[str], code: str) -> bool:
        return "*" in codes or code.upper() in codes

    def suppressed(self, line: int, code: str) -> bool:
        """Is ``code`` silenced at ``line`` (same line, line above, or file)?"""
        if self._file_codes and self._hits(self._file_codes, code):
            return True
        for candidate in (line, line - 1):
            codes = self._line_codes.get(candidate)
            if codes is not None and self._hits(codes, code):
                return True
        return False


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every checker."""

    path: Path  #: absolute path on disk
    rel: str  #: root-relative POSIX path (the one findings carry)
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def load(cls, path: Path, root: Path) -> "ParsedModule":
        with tokenize.open(path) as handle:  # honors PEP 263 coding cookies
            source = handle.read()
        tree = ast.parse(source, filename=str(path))
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path=path, rel=rel, source=source, tree=tree,
                   suppressions=Suppressions.parse(source))

    @property
    def basename(self) -> str:
        return self.path.name


class CheckContext:
    """Shared state of one ``repro check`` run.

    Holds the scan root (findings are reported relative to it), the parsed
    modules, configuration knobs the checkers consult, and the finding
    sink.  ``report()`` applies line/file suppressions at emission time, so
    checkers never need to know about them.
    """

    def __init__(self, root: Path, *,
                 trace_doc: Optional[Path] = None,
                 parity_manifest: Optional[Path] = None,
                 hot_modules: Optional[Iterable[str]] = None) -> None:
        self.root = root
        self.trace_doc = trace_doc
        self.parity_manifest = parity_manifest
        self.hot_modules: Tuple[str, ...] = tuple(
            hot_modules if hot_modules is not None else DEFAULT_HOT_MODULES
        )
        self.modules: List[ParsedModule] = []
        self.findings: List[Finding] = []
        self.suppressed_count = 0

    def report(self, module: Optional[ParsedModule], line: int, code: str,
               message: str, *, rel: Optional[str] = None) -> None:
        """Record one finding unless a suppression comment covers it."""
        if module is not None and module.suppressions.suppressed(line, code):
            self.suppressed_count += 1
            return
        path = rel if rel is not None else (module.rel if module else "<unknown>")
        self.findings.append(Finding(path=path, line=line, code=code,
                                     message=message))


#: the hot-path modules RC03 polices (basename match): the files whose
#: disabled-observability path must stay "one pointer test" (PRs 5/7)
DEFAULT_HOT_MODULES: Tuple[str, ...] = (
    "fluid.py",
    "engine.py",
    "incremental.py",
    "sharing.py",
    "allocator.py",
)


class Checker:
    """Base class of one invariant rule.

    Subclasses set ``code``/``name``/``description`` and override
    :meth:`visit_module` (called once per parsed file, in scan order) and
    optionally :meth:`finalize` (called once after every file was visited —
    the place for cross-file invariants).  Checkers are instantiated per
    run, so instance attributes are safe accumulation state.
    """

    code: ClassVar[str] = "RC00"
    name: ClassVar[str] = "base"
    description: ClassVar[str] = ""

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        """Per-file hook; default does nothing."""

    def finalize(self, ctx: CheckContext) -> None:
        """Cross-file hook; default does nothing."""


def dotted_name(node: ast.expr) -> Optional[str]:
    """Stringify a ``Name``/``Attribute`` chain (``self._trace``), else None.

    The helper every guard-sensitive checker uses to compare "the thing
    being called" against "the thing being None-tested" — only plain
    attribute chains rooted at a name are comparable; anything with calls
    or subscripts in it is not.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
