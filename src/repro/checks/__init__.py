"""``repro.checks`` — the repo-specific invariant linter (``repro check``).

Eight PRs of conventions, enforced mechanically:

========  ============================  ==========================================
code      name                          invariant
========  ============================  ==========================================
``RC01``  trace-kind-registry           literal ``TraceRecord`` kinds ∈
                                        ``KNOWN_KINDS``; every registered kind
                                        documented in ``docs/trace-format.md``
``RC02``  numpy-guard                   ``import numpy`` only in
                                        ``repro/_numpy.py``; everyone else uses
                                        ``from repro._numpy import np``
``RC03``  guarded-emission              hot-path ``.emit`` / ``.sample_record`` /
                                        PhaseTimer use dominated by an
                                        ``is not None`` test on the same name
``RC04``  delta-contract                ``update_slots`` ⇒ ``update_arrays``;
                                        ``rates()`` routes through ``update()``;
                                        ``reset()`` is zero-arg
``RC05``  vectorized-parity-manifest    every ``vectorized`` toggle mapped to its
                                        property-test file in the parity manifest
``RC06``  bench-emit-discipline         benchmarks write results only through the
                                        shared ``emit`` fixture
========  ============================  ==========================================

See ``docs/static-analysis.md`` for the rules, the suppression syntax
(``# repro-check: ignore[CODE]``) and how to add a checker.
"""

from .base import Checker, CheckContext, Finding, ParsedModule, Suppressions
from .cli import main
from .fixes import fix_paths, rewrite_numpy_imports
from .runner import ALL_CHECKERS, collect_files, format_findings, run_check

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "CheckContext",
    "Finding",
    "ParsedModule",
    "Suppressions",
    "collect_files",
    "fix_paths",
    "format_findings",
    "main",
    "rewrite_numpy_imports",
    "run_check",
]
