"""RC04 — structural shape of the three-tier ``RateProvider`` delta contract.

The calendar probes providers for ``update`` → ``update_arrays`` →
``update_slots`` (fastest available wins; see the
:mod:`repro.network.fluid` docstring).  Three structural rules keep a
provider from quietly landing outside the contract:

* **slots-implies-arrays** — a class speaking the slot tier must also speak
  the array tier: when a rate-scale hook is installed the calendar skips
  ``update_slots`` and falls back to ``update_arrays``; a provider without
  it silently drops to the dict tier and the "no hash gather" claim is
  void.  (Deliberate single-tier *test* providers suppress with a
  rationale.)
* **slots-invariant-methods** — a class speaking the slot tier must also
  maintain the slot-map invariant method set: ``update`` (the calendar's
  stall retry re-registers handles through the departure+arrival cycle,
  and a scale window downgrades to the dict tier mid-run) and ``reset``
  (the :meth:`~repro.network.fluid.TransferCalendar.reprice` that ends a
  scale window re-seeds every handle through reset + full re-add).
  Without both, a slot provider's handle bookkeeping cannot survive those
  calendar paths.
* **rates-is-a-shim** — a class defining both ``update`` and ``rates`` must
  route ``rates`` through ``update`` (directly or via helpers reachable by
  ``self.``-calls): two independent pricing paths are exactly the drift the
  delta contract forbids, since the tiers must stay bit-exact.
* **reset-is-zero-arg** — ``reset()`` takes no arguments beyond ``self``:
  the calendar and the campaign runner call it blind between runs.

Class bodies are resolved through same-file base classes (simple-name
inheritance), so tiered test hierarchies are judged on their effective
method set.  ``Protocol`` definitions are skipped — they declare the
contract, they don't implement it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .base import Checker, CheckContext, ParsedModule, dotted_name

__all__ = ["DeltaContractChecker"]

_CONTRACT_METHODS = frozenset({"update", "update_arrays", "update_slots",
                               "rates"})


def _method_defs(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    out: Dict[str, ast.FunctionDef] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node  # type: ignore[assignment]
    return out


def _is_protocol(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] == "Protocol":
            return True
    return False


def _self_calls(func: ast.FunctionDef) -> Set[str]:
    """Names of ``self.<m>(...)`` methods called anywhere inside ``func``."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = node.func.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                out.add(node.func.attr)
    return out


def _extra_parameters(func: ast.FunctionDef) -> List[str]:
    """Parameter names beyond ``self`` (including *args/**kwargs markers)."""
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args][1:]  # drop self
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg is not None:
        names.append("*" + args.vararg.arg)
    if args.kwarg is not None:
        names.append("**" + args.kwarg.arg)
    return names


class DeltaContractChecker(Checker):
    code = "RC04"
    name = "delta-contract"
    description = ("RateProvider structure: update_slots implies "
                   "update_arrays and the slot-map invariant methods "
                   "(update/reset); rates() must be a shim over update(); "
                   "reset() must be zero-arg")

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            if _is_protocol(cls):
                continue
            own = _method_defs(cls)
            effective = self._effective_methods(cls, classes)
            if not (_CONTRACT_METHODS & set(effective)):
                continue  # not a rate provider at all
            self._check_class(ctx, module, cls, own, effective)

    def _effective_methods(self, cls: ast.ClassDef,
                           classes: Dict[str, ast.ClassDef],
                           _seen: Optional[Set[str]] = None
                           ) -> Dict[str, ast.FunctionDef]:
        """Own methods plus same-file base-class methods (depth-first MRO-ish)."""
        seen = _seen if _seen is not None else set()
        if cls.name in seen:
            return {}
        seen.add(cls.name)
        merged: Dict[str, ast.FunctionDef] = {}
        for base in cls.bases:
            base_name = dotted_name(base)
            if base_name in classes:
                for name, func in self._effective_methods(
                        classes[base_name], classes, seen).items():
                    merged.setdefault(name, func)
        merged.update(_method_defs(cls))
        return merged

    def _check_class(self, ctx: CheckContext, module: ParsedModule,
                     cls: ast.ClassDef, own: Dict[str, ast.FunctionDef],
                     effective: Dict[str, ast.FunctionDef]) -> None:
        if "update_slots" in effective and "update_arrays" not in effective:
            anchor = own.get("update_slots")
            ctx.report(module,
                       anchor.lineno if anchor is not None else cls.lineno,
                       self.code,
                       f"class {cls.name!r} defines update_slots() without "
                       "update_arrays(): with a rate-scale hook installed "
                       "the calendar skips the slot tier and needs the "
                       "array tier to fall back to")
        if "update_slots" in effective:
            missing = [m for m in ("update", "reset") if m not in effective]
            if missing:
                anchor = own.get("update_slots")
                ctx.report(module,
                           anchor.lineno if anchor is not None else cls.lineno,
                           self.code,
                           f"class {cls.name!r} defines update_slots() "
                           "without the slot-map invariant method set "
                           f"(missing: {', '.join(missing)}); stall retries "
                           "and the reprice ending a rate-scale window "
                           "re-seed slot handles through update()/reset()")
        if "update" in effective and "rates" in effective:
            if not self._reaches_update(effective):
                anchor = own.get("rates") or own.get("update")
                ctx.report(module,
                           anchor.lineno if anchor is not None else cls.lineno,
                           self.code,
                           f"class {cls.name!r} defines rates() that does "
                           "not route through update(): the full-set shim "
                           "must delegate to the delta path or the two "
                           "pricings can drift")
        reset = effective.get("reset")
        if reset is not None:
            extra = _extra_parameters(reset)
            if extra:
                anchor = own.get("reset", reset)
                ctx.report(module, anchor.lineno, self.code,
                           f"class {cls.name!r} reset() must be zero-arg "
                           f"(found parameters: {', '.join(extra)}); the "
                           "calendar and campaign runner call it blind")

    @staticmethod
    def _reaches_update(effective: Dict[str, ast.FunctionDef]) -> bool:
        """Is ``update`` reachable from ``rates`` via self-method calls?"""
        queue = ["rates"]
        visited: Set[str] = set()
        while queue:
            name = queue.pop()
            if name in visited:
                continue
            visited.add(name)
            func = effective.get(name)
            if func is None:
                continue
            calls = _self_calls(func)
            if "update" in calls:
                return True
            queue.extend(call for call in calls if call in effective)
        return False
