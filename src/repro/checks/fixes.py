"""``repro check --fix``: mechanical rewrites for the fixable rule subset.

Today that is RC02 import rewriting: single-alias ``import numpy`` forms
become guarded imports through :mod:`repro._numpy`.  The rewrite is
line-oriented and conservative — it touches only statements that occupy
exactly the line the AST says they do, keeps any trailing comment, and
leaves every other form (``from numpy import X``, multi-alias imports) as
reported findings for a human.

Fixing is idempotent: a fixed file re-checks clean, and running ``--fix``
again rewrites nothing.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Tuple

__all__ = ["rewrite_numpy_imports", "fix_paths"]


def rewrite_numpy_imports(source: str) -> Tuple[str, int]:
    """Rewrite fixable RC02 violations in ``source``.

    Returns ``(new_source, rewrites)``; the source is returned unchanged
    when nothing was fixable (including when it does not parse).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    lines = source.splitlines(keepends=True)
    rewrites = 0
    for node in ast.walk(tree):
        if not isinstance(node, ast.Import) or len(node.names) != 1:
            continue
        alias = node.names[0]
        if alias.name != "numpy":
            continue
        if node.end_lineno != node.lineno:  # pragma: no cover - one-liner form
            continue
        index = node.lineno - 1
        line = lines[index]
        newline = "\n" if line.endswith("\n") else ""
        stripped = line.rstrip("\n")
        comment = ""
        # keep a trailing comment (suppressions excepted: the fix removes
        # the violation, so an ignore[RC02] comment would be stale)
        hash_pos = stripped.find("#")
        if hash_pos != -1:
            tail = stripped[hash_pos:]
            if "repro-check" not in tail:
                comment = "  " + tail.strip()
        indent = stripped[:len(stripped) - len(stripped.lstrip())]
        bound = alias.asname or "numpy"
        replacement = ("from repro._numpy import np"
                       if bound == "np"
                       else f"from repro._numpy import np as {bound}")
        lines[index] = f"{indent}{replacement}{comment}{newline}"
        rewrites += 1
    return "".join(lines), rewrites


def fix_paths(paths: List[Path]) -> List[Tuple[Path, int]]:
    """Apply every mechanical fix to ``paths`` in place.

    Returns the ``(path, rewrites)`` pairs of the files actually changed.
    The guard module itself is never rewritten — its ``import numpy`` *is*
    the sanctioned one.
    """
    changed: List[Tuple[Path, int]] = []
    for path in paths:
        if path.name == "_numpy.py":
            continue
        source = path.read_text(encoding="utf-8")
        fixed, rewrites = rewrite_numpy_imports(source)
        if rewrites:
            path.write_text(fixed, encoding="utf-8")
            changed.append((path, rewrites))
    return changed
