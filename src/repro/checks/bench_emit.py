"""RC06 — benchmarks publish results only through the shared ``emit`` fixture.

The PR 6 drift-impossible rule: every ``benchmarks/results/*.txt`` report
and every ``BENCH_*.json`` trajectory record is written from the **same
in-memory object** by the ``emit`` fixture (``benchmarks/conftest.py``).  A
benchmark that hand-``json.dump``\\ s a record — or opens a ``BENCH_*``
file itself — reintroduces the possibility of the text report and the JSON
trajectory disagreeing, which is exactly what the fixture exists to make
impossible.

The rule applies to ``bench_*`` files only; ``conftest.py`` *implements*
the fixture and is exempt by name.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import Checker, CheckContext, ParsedModule, dotted_name

__all__ = ["BenchEmitChecker"]

#: file-writing calls that may smuggle a record past the fixture
_WRITE_METHODS = frozenset({"write_text", "write", "dump"})


def _mentions_bench_target(node: ast.AST) -> bool:
    """Does any sub-expression reference a ``BENCH_*`` name or path?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.startswith("BENCH_"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.startswith("BENCH_"):
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str) and \
                "BENCH_" in sub.value:
            return True
    return False


class BenchEmitChecker(Checker):
    code = "RC06"
    name = "bench-emit-discipline"
    description = ("benchmarks must write results through the shared emit "
                   "fixture; hand-written json.dump / BENCH_*.json writes "
                   "can drift from the text report")

    def visit_module(self, ctx: CheckContext, module: ParsedModule) -> None:
        if not module.basename.startswith("bench_"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._offending_call(node)
            if target is not None:
                ctx.report(module, node.lineno, self.code, target)

    def _offending_call(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            owner = dotted_name(func.value)
            if owner == "json" and func.attr in ("dump", "dumps"):
                return (f"hand-rolled json.{func.attr}(...) in a benchmark; "
                        "pass record=/bench_json= to the shared emit fixture "
                        "so the text report and the trajectory JSON are "
                        "written from the same object")
            if func.attr in _WRITE_METHODS and (
                    _mentions_bench_target(call) or
                    (owner is not None and owner.startswith("BENCH_"))):
                return (f".{func.attr}(...) targeting a BENCH_* trajectory "
                        "file; only the emit fixture may append trajectory "
                        "records")
        elif isinstance(func, ast.Name) and func.id == "open":
            if _mentions_bench_target(call):
                return ("open(...) on a BENCH_* trajectory file; only the "
                        "emit fixture may touch trajectory files")
        return None
