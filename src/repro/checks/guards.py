"""Pointer-guard dominance analysis for the hot-path emission contract.

The tracing/metrics layers keep their disabled path down to *one pointer
test* (``if self._trace is not None: ...``, PRs 5/7).  RC03 enforces the
shape of that test: every use of an observability handle must be dominated
by an explicit ``is not None`` check **on the same name**.  This module
answers the one question the checker asks: *is this call expression
guaranteed, syntactically, to run only when ``recv`` is not None?*

Recognised guard shapes (``X`` is the receiver's dotted name)::

    if X is not None:                 # ancestor if, call in the body
        X.emit(...)

    if X is None:                     # ancestor if, call in the else branch
        ...
    else:
        X.emit(...)

    y = X.timer("...") if X is not None else None     # conditional expression

    if X is not None and other:       # and-chain: every operand must hold
        X.emit(...)

    if X is None or not X.due():      # or-chain short-circuit inside the test
        return ...                    # …and early-return: X non-None below
    X.observe(...)

The analysis is deliberately *syntactic*: it never tracks assignments
(rebinding ``X`` after the guard defeats it — and also defeats the
convention the rule exists to protect), and unknown shapes count as
unguarded.  False positives are silenced with an explicit
``# repro-check: ignore[RC03]`` carrying a rationale, which is exactly the
review speed bump the contract wants.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .base import dotted_name

__all__ = ["GuardIndex"]

#: statements that terminate the fallthrough path of an early-return guard
_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _is_none_test(node: ast.expr, recv: str, *, negated: bool) -> bool:
    """``X is None`` (negated=False) or ``X is not None`` (negated=True)."""
    if not isinstance(node, ast.Compare) or len(node.ops) != 1:
        return False
    op = node.ops[0]
    wanted = ast.IsNot if negated else ast.Is
    if not isinstance(op, wanted):
        return False
    left, right = node.left, node.comparators[0]
    none_side = right if _is_none_const(right) else (
        left if _is_none_const(left) else None)
    name_side = left if none_side is right else right
    if none_side is None:
        return False
    return dotted_name(name_side) == recv


def _is_none_const(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _test_implies_nonnull(test: ast.expr, recv: str) -> bool:
    """When ``test`` evaluates true, is ``recv`` guaranteed non-None?"""
    if _is_none_test(test, recv, negated=True):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_test_implies_nonnull(value, recv) for value in test.values)
    return False


def _test_false_implies_nonnull(test: ast.expr, recv: str) -> bool:
    """When ``test`` evaluates false, is ``recv`` guaranteed non-None?"""
    if _is_none_test(test, recv, negated=False):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        return any(_is_none_test(value, recv, negated=False)
                   for value in test.values)
    return False


def _body_terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], _TERMINATORS)


class GuardIndex:
    """Parent links + guard queries over one module's AST."""

    def __init__(self, tree: ast.Module) -> None:
        self._parent: Dict[ast.AST, Tuple[ast.AST, str, Optional[int]]] = {}
        for parent in ast.walk(tree):
            for fieldname, value in ast.iter_fields(parent):
                if isinstance(value, ast.AST):
                    self._parent[value] = (parent, fieldname, None)
                elif isinstance(value, list):
                    for index, item in enumerate(value):
                        if isinstance(item, ast.AST):
                            self._parent[item] = (parent, fieldname, index)

    def is_guarded(self, node: ast.AST, recv: str) -> bool:
        """Is ``node`` dominated by an ``is not None`` test on ``recv``?"""
        child = node
        while child in self._parent:
            parent, fieldname, index = self._parent[child]
            if isinstance(parent, ast.If):
                if fieldname == "body" and _test_implies_nonnull(parent.test, recv):
                    return True
                if fieldname == "orelse" and \
                        _test_false_implies_nonnull(parent.test, recv):
                    return True
            elif isinstance(parent, ast.IfExp):
                if fieldname == "body" and _test_implies_nonnull(parent.test, recv):
                    return True
                if fieldname == "orelse" and \
                        _test_false_implies_nonnull(parent.test, recv):
                    return True
            elif isinstance(parent, ast.BoolOp) and index is not None and index > 0:
                # short-circuit: operand i runs only after 0..i-1 resolved
                earlier = parent.values[:index]
                if isinstance(parent.op, ast.And) and any(
                        _test_implies_nonnull(value, recv) for value in earlier):
                    return True
                if isinstance(parent.op, ast.Or) and any(
                        _is_none_test(value, recv, negated=False)
                        for value in earlier):
                    return True
            if index is not None and isinstance(parent, ast.AST) and \
                    self._early_return_guard(parent, fieldname, index, recv):
                return True
            # stop climbing out of the enclosing function: a guard in an
            # *outer* function does not dominate calls in a nested one
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                return False
            child = parent
        return False

    def _early_return_guard(self, parent: ast.AST, fieldname: str,
                            index: int, recv: str) -> bool:
        """A preceding ``if X is None: return/raise/...`` sibling statement."""
        siblings = getattr(parent, fieldname, None)
        if not isinstance(siblings, list):
            return False
        for prior in siblings[:index]:
            if isinstance(prior, ast.If) and _body_terminates(prior.body) and \
                    _test_false_implies_nonnull(prior.test, recv):
                return True
        return False
