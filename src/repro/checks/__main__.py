"""``python -m repro.checks`` — the invariant linter as a module."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
