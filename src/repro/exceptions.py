"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors (``TypeError``, ``ValueError`` raised by NumPy, etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "ModelError",
    "CalibrationError",
    "TopologyError",
    "SchedulingError",
    "SchemeParseError",
    "SimulationError",
    "DeadlockError",
    "TraceError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Invalid communication graph (unknown node, self loop where forbidden, ...)."""


class ModelError(ReproError):
    """A contention model was given inconsistent parameters or inputs."""


class CalibrationError(ModelError):
    """Parameter estimation failed (degenerate measurements, wrong scheme shape)."""


class TopologyError(ReproError):
    """Invalid cluster / network topology description."""


class SchedulingError(ReproError):
    """Task placement request that cannot be satisfied."""


class SchemeParseError(ReproError):
    """The communication-scheme description language could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class SimulationError(ReproError):
    """The discrete-event / fluid simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All simulated tasks are blocked and no event can make progress."""

    def __init__(self, message: str, blocked_tasks=None):
        self.blocked_tasks = list(blocked_tasks) if blocked_tasks is not None else []
        super().__init__(message)


class TraceError(ReproError):
    """An application trace is malformed (bad event, negative duration, ...)."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""
