"""Baseline models from the related work (§II of the paper).

The paper motivates its contention models by showing that the classic linear
communication models predict concurrent communications poorly.  To be able to
reproduce that comparison, this module implements the baselines:

* :class:`NoContentionModel` — the plain "wormhole" linear model (overhead +
  rate × length) with no sharing at all: every penalty is 1.
* :class:`LogPCostModel` / :class:`LogGPCostModel` — the LogP [4] and
  LogGP [5] cost models.  They are *cost* models (size → time), not
  contention models; :class:`LogGPContentionAdapter` exposes them behind the
  :class:`~repro.core.penalty.ContentionModel` interface with unit penalties
  so that the benchmark harness can sweep them alongside the paper's models.
* :class:`KimLeeModel` — the path-sharing model of Kim & Lee [7]: the linear
  cost of a communication is multiplied by the maximum number of
  communications inside any sharing conflict it traverses.  On a
  full-bisection fat tree the sharing conflicts are located at the end-point
  NICs, so the multiplier reduces to ``max(Δo(i), Δi(i))``; an optional
  ``path_provider`` lets callers add switch-level sharing for oversubscribed
  topologies.
* :class:`FairShareModel` — ideal max-min sharing of the NIC: penalty equals
  the number of flows sharing the most loaded endpoint, without any
  technology-specific inefficiency.  Used by the ablation benchmarks as the
  "perfect fair sharing" reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .._numpy import np
from ..exceptions import ModelError
from .ethernet_model import split_batch, structural_arrays
from .graph import Communication, CommunicationGraph, ConflictRule
from .penalty import ContentionModel, LinearCostModel

__all__ = [
    "NoContentionModel",
    "FairShareModel",
    "KimLeeModel",
    "LogPCostModel",
    "LogGPCostModel",
    "LogGPContentionAdapter",
]


class NoContentionModel(ContentionModel):
    """Linear model without any bandwidth sharing: every penalty is exactly 1."""

    name = "no-contention"
    network = "any (linear model)"
    component_rule = ConflictRule.ENDPOINT
    structural_penalties = True

    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        return {comm.name: 1.0 for comm in graph}

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        return [{name: 1.0 for name in names} for names in components]


class FairShareModel(ContentionModel):
    """Ideal max-min fair sharing of the end-point NICs.

    The penalty of a communication is the number of communications sharing
    its most loaded endpoint, ``max(Δo(i), Δi(i))`` — what a perfectly fair,
    perfectly efficient NIC would do.  Real technologies deviate from this
    (GigE by the factor β < 1, Myrinet by Stop & Go serialisation), which is
    exactly what the paper's models capture.
    """

    name = "fair-share"
    network = "ideal NIC"
    component_rule = ConflictRule.ENDPOINT
    structural_penalties = True

    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        result: Dict[str, float] = {}
        for comm in graph:
            if comm.is_intra_node:
                result[comm.name] = 1.0
            else:
                result[comm.name] = float(max(1, graph.delta_o(comm), graph.delta_i(comm)))
        return result

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        results, inter, owner = split_batch(graph, components)
        if inter:
            arrays = structural_arrays(inter)
            penalties = np.maximum(
                1, np.maximum(arrays["delta_o"], arrays["delta_i"])
            ).astype(np.float64).tolist()
            for (which, name), value in zip(owner, penalties):
                results[which][name] = value
        return results


PathProvider = Callable[[Communication], Sequence[Tuple[int, int]]]


class KimLeeModel(ContentionModel):
    """Path-sharing model of Kim & Lee (J. Parallel Distrib. Comput. 2001, [7]).

    The communication delay is a piece-wise linear function of the message
    length; when the communication shares part of its path with others, the
    delay is multiplied by the **maximum number of communications within the
    sharing conflict**.

    Parameters
    ----------
    path_provider:
        Optional callable returning, for a communication, the sequence of
        directed network segments it traverses (e.g. switch-to-switch links).
        When omitted, only the source NIC and the destination NIC are
        considered shared segments, which is exact for non-blocking fat
        trees such as the paper's clusters.
    """

    name = "kim-lee"
    network = "Myrinet (GM/BIP workstation network)"

    def __init__(self, path_provider: Optional[PathProvider] = None) -> None:
        self.path_provider = path_provider
        # with a custom path provider, communications may share switch-level
        # segments without sharing endpoints: no locality promise then.
        self.component_rule = None if path_provider is not None else ConflictRule.ENDPOINT
        self.structural_penalties = path_provider is None

    def _segments(self, comm: Communication) -> Sequence[Tuple[int, int]]:
        if self.path_provider is not None:
            return tuple(self.path_provider(comm))
        # endpoint NICs only: the TX port of the source and the RX port of
        # the destination, encoded as (node, direction) pairs.
        return ((comm.src, 0), (comm.dst, 1))

    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        usage: Dict[Tuple[int, int], int] = {}
        segments: Dict[str, Sequence[Tuple[int, int]]] = {}
        for comm in graph:
            if comm.is_intra_node:
                segments[comm.name] = ()
                continue
            segs = self._segments(comm)
            segments[comm.name] = segs
            for seg in segs:
                usage[seg] = usage.get(seg, 0) + 1
        result: Dict[str, float] = {}
        for comm in graph:
            segs = segments[comm.name]
            if not segs:
                result[comm.name] = 1.0
            else:
                result[comm.name] = float(max(usage[seg] for seg in segs))
        return result

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        if self.path_provider is not None:
            # switch-level segments have no locality promise: scalar path
            return super().penalties_batch(graph, components)
        # endpoint-NIC segments only: the sharing-conflict maximum is the
        # larger of the TX usage at the source and the RX usage at the
        # destination, i.e. max(Δo, Δi)
        results, inter, owner = split_batch(graph, components)
        if inter:
            arrays = structural_arrays(inter)
            penalties = np.maximum(
                arrays["delta_o"], arrays["delta_i"]
            ).astype(np.float64).tolist()
            for (which, name), value in zip(owner, penalties):
                results[which][name] = value
        return results


@dataclass(frozen=True)
class LogPCostModel:
    """The LogP model of Culler et al. [4].

    ``L`` is the network delay, ``o`` the send/receive CPU overhead, ``g``
    the minimum gap between consecutive messages and ``P`` the number of
    processors.  A single short-message transmission costs ``L + 2o``; a
    message of ``n`` fragments costs ``L + 2o + (n - 1) · max(g, o)``.
    """

    L: float
    o: float
    g: float
    P: int = 2
    fragment_size: int = 1024

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g) < 0:
            raise ModelError("LogP parameters must be non-negative")
        if self.P < 1:
            raise ModelError(f"P must be >= 1, got {self.P}")
        if self.fragment_size <= 0:
            raise ModelError(f"fragment_size must be positive, got {self.fragment_size}")

    def time(self, size: int) -> float:
        """Transfer time of a ``size``-byte message split into fragments."""
        if size < 0:
            raise ModelError(f"negative message size {size}")
        fragments = max(1, -(-size // self.fragment_size))
        return self.L + 2 * self.o + (fragments - 1) * max(self.g, self.o)

    def to_linear(self) -> LinearCostModel:
        """Equivalent latency/bandwidth model for large messages."""
        per_byte = max(self.g, self.o) / self.fragment_size
        return LinearCostModel(latency=self.L + 2 * self.o, bandwidth=1.0 / per_byte)


@dataclass(frozen=True)
class LogGPCostModel:
    """The LogGP model of Alexandrov et al. [5] (LogP + a per-byte Gap ``G``).

    A ``k``-byte message costs ``L + 2o + (k - 1) · G``; consecutive messages
    are separated by ``g``.
    """

    L: float
    o: float
    g: float
    G: float
    P: int = 2

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g, self.G) < 0:
            raise ModelError("LogGP parameters must be non-negative")
        if self.P < 1:
            raise ModelError(f"P must be >= 1, got {self.P}")

    def time(self, size: int) -> float:
        if size < 0:
            raise ModelError(f"negative message size {size}")
        if size == 0:
            return self.L + 2 * self.o
        return self.L + 2 * self.o + (size - 1) * self.G

    def gap_between_messages(self) -> float:
        return self.g

    def to_linear(self) -> LinearCostModel:
        """Equivalent latency/bandwidth model (bandwidth = 1/G)."""
        if self.G == 0:
            raise ModelError("cannot convert a LogGP model with G=0 to a linear model")
        return LinearCostModel(latency=self.L + 2 * self.o, bandwidth=1.0 / self.G)

    @classmethod
    def from_linear(cls, cost: LinearCostModel, overhead_fraction: float = 0.1) -> "LogGPCostModel":
        """Build a LogGP model matching a latency/bandwidth description."""
        if not (0 <= overhead_fraction < 1):
            raise ModelError("overhead_fraction must lie in [0, 1)")
        o = cost.latency * overhead_fraction / 2.0
        L = cost.latency * (1.0 - overhead_fraction)
        return cls(L=L, o=o, g=o, G=1.0 / cost.bandwidth)


class LogGPContentionAdapter(ContentionModel):
    """Expose a LogP/LogGP cost model behind the contention-model interface.

    The adapter predicts *no* contention (penalty 1 everywhere), which is the
    behaviour the paper criticises: "these linear models poorly predict
    communication delays" when messages overlap.  It is used by the baseline
    ablation benchmark to quantify that gap.
    """

    name = "loggp"
    network = "any (LogGP linear model)"
    component_rule = ConflictRule.ENDPOINT
    structural_penalties = True

    def __init__(self, cost_model: LogGPCostModel | LogPCostModel) -> None:
        self.cost_model = cost_model

    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        return {comm.name: 1.0 for comm in graph}

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        return [{name: 1.0 for name in names} for names in components]

    def predict_times_loggp(self, graph: CommunicationGraph) -> Dict[str, float]:
        """Predicted durations using the wrapped LogP/LogGP cost directly."""
        return {comm.name: self.cost_model.time(comm.size) for comm in graph}
