"""Gigabit Ethernet contention model (§V.A of the paper).

The model is *quantitative*: it combines the structure of the communication
graph (degrees and strongly-slowed sets) with three parameters measured once
per NIC:

* ``β`` ("beta") — the basic resource-sharing penalty factor.  It is measured
  from simple outgoing conflicts: with ``k`` concurrent outgoing
  communications each one is slowed by ``k·β`` (Figure 2 gives ``β = 0.75``:
  ``1.5/2 = 2.25/3 = 0.75``).
* ``γ_o`` ("gamma_o") — the additional spread between strongly-slowed and
  other *outgoing* communications.
* ``γ_i`` ("gamma_i") — the same for *incoming* communications.

For a communication ``c_i`` with ``Δo(i)`` outgoing siblings at its source
and ``Δi(i)`` incoming siblings at its destination (Definition 1 gives the
strongly-slowed sets ``C^m_o`` / ``C^m_i``):

.. math::

   p_o = \\begin{cases}
       1 & \\text{if } Δo(i) = 1 \\\\
       Δo(i)\\,β\\,(1 + γ_o (Δo(i) - |C^m_o|)) & \\text{if } c_i ∈ C^m_o \\\\
       Δo(i)\\,β\\,(1 - γ_o / |C^m_o|) & \\text{otherwise}
   \\end{cases}

``p_i`` is defined symmetrically with ``Δi`` and ``γ_i``, and the penalty of
the communication is ``p = max(p_o, p_i)``.

The default parameters are the ones the paper estimates on its IBM e326 /
BCM5704 cluster (β = 0.75, γ_o = 0.115, γ_i = 0.036); use
:mod:`repro.core.calibration` to estimate them for another emulated or real
card.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..exceptions import ModelError
from .graph import Communication, CommunicationGraph, ConflictRule
from .penalty import ContentionModel

__all__ = ["EthernetParameters", "GigabitEthernetModel"]


@dataclass(frozen=True)
class EthernetParameters:
    """The three card-specific parameters of the Gigabit Ethernet model."""

    beta: float = 0.75
    gamma_o: float = 0.115
    gamma_i: float = 0.036

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ModelError(f"beta must be positive, got {self.beta}")
        if not (0 <= self.gamma_o < 1):
            raise ModelError(f"gamma_o must lie in [0, 1), got {self.gamma_o}")
        if not (0 <= self.gamma_i < 1):
            raise ModelError(f"gamma_i must lie in [0, 1), got {self.gamma_i}")

    #: parameters published in the paper for the BCM5704 Gigabit Ethernet card
    @classmethod
    def paper(cls) -> "EthernetParameters":
        return cls(beta=0.75, gamma_o=0.115, gamma_i=0.036)


class GigabitEthernetModel(ContentionModel):
    """Analytic penalty model for TCP over Gigabit Ethernet (§V.A)."""

    name = "gigabit-ethernet"
    network = "Gigabit Ethernet (TCP)"
    # p depends on Δo/Δi and the strongly-slowed sets, all of which are
    # contained in the ENDPOINT conflict component of the communication.
    component_rule = ConflictRule.ENDPOINT
    structural_penalties = True

    def __init__(self, parameters: EthernetParameters | None = None) -> None:
        self.parameters = parameters or EthernetParameters.paper()

    def memo_key(self) -> tuple:
        return super().memo_key() + (self.parameters,)

    # ------------------------------------------------------------------ model
    def outgoing_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """``p_o``: penalty contribution of the conflict in emission."""
        comm = graph[comm] if isinstance(comm, str) else graph[comm.name]
        if comm.is_intra_node:
            return 1.0
        delta_o = graph.delta_o(comm)
        if delta_o <= 1:
            return 1.0
        params = self.parameters
        strongly = graph.strongly_slowed_outgoing(comm)
        card = max(1, len(strongly))
        if graph.is_strongly_slowed_outgoing(comm):
            return delta_o * params.beta * (1.0 + params.gamma_o * (delta_o - card))
        return delta_o * params.beta * (1.0 - params.gamma_o / card)

    def incoming_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """``p_i``: penalty contribution of the conflict in reception."""
        comm = graph[comm] if isinstance(comm, str) else graph[comm.name]
        if comm.is_intra_node:
            return 1.0
        delta_i = graph.delta_i(comm)
        if delta_i <= 1:
            return 1.0
        params = self.parameters
        strongly = graph.strongly_slowed_incoming(comm)
        card = max(1, len(strongly))
        if graph.is_strongly_slowed_incoming(comm):
            return delta_i * params.beta * (1.0 + params.gamma_i * (delta_i - card))
        return delta_i * params.beta * (1.0 - params.gamma_i / card)

    def communication_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """``p = max(p_o, p_i)`` clamped to at least 1 (a transfer cannot speed up)."""
        po = self.outgoing_penalty(graph, comm)
        pi = self.incoming_penalty(graph, comm)
        return max(1.0, po, pi)

    # -------------------------------------------------------------- interface
    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        return {comm.name: self.communication_penalty(graph, comm) for comm in graph}

    def details(self, graph: CommunicationGraph) -> Dict[str, Mapping[str, float]]:
        """Per-communication diagnostics: Δ degrees, p_o/p_i, memberships, cards."""
        result: Dict[str, Mapping[str, float]] = {}
        for comm in graph:
            po = self.outgoing_penalty(graph, comm)
            pi = self.incoming_penalty(graph, comm)
            result[comm.name] = {
                "delta_o": float(graph.delta_o(comm)),
                "delta_i": float(graph.delta_i(comm)),
                "p_o": po,
                "p_i": pi,
                "penalty": max(1.0, po, pi),
                "in_cmo": float(graph.is_strongly_slowed_outgoing(comm)),
                "in_cmi": float(graph.is_strongly_slowed_incoming(comm)),
                "card_cmo": float(len(graph.strongly_slowed_outgoing(comm))),
                "card_cmi": float(len(graph.strongly_slowed_incoming(comm))),
            }
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.parameters
        return (
            f"GigabitEthernetModel(beta={p.beta}, gamma_o={p.gamma_o}, gamma_i={p.gamma_i})"
        )
