"""Gigabit Ethernet contention model (§V.A of the paper).

The model is *quantitative*: it combines the structure of the communication
graph (degrees and strongly-slowed sets) with three parameters measured once
per NIC:

* ``β`` ("beta") — the basic resource-sharing penalty factor.  It is measured
  from simple outgoing conflicts: with ``k`` concurrent outgoing
  communications each one is slowed by ``k·β`` (Figure 2 gives ``β = 0.75``:
  ``1.5/2 = 2.25/3 = 0.75``).
* ``γ_o`` ("gamma_o") — the additional spread between strongly-slowed and
  other *outgoing* communications.
* ``γ_i`` ("gamma_i") — the same for *incoming* communications.

For a communication ``c_i`` with ``Δo(i)`` outgoing siblings at its source
and ``Δi(i)`` incoming siblings at its destination (Definition 1 gives the
strongly-slowed sets ``C^m_o`` / ``C^m_i``):

.. math::

   p_o = \\begin{cases}
       1 & \\text{if } Δo(i) = 1 \\\\
       Δo(i)\\,β\\,(1 + γ_o (Δo(i) - |C^m_o|)) & \\text{if } c_i ∈ C^m_o \\\\
       Δo(i)\\,β\\,(1 - γ_o / |C^m_o|) & \\text{otherwise}
   \\end{cases}

``p_i`` is defined symmetrically with ``Δi`` and ``γ_i``, and the penalty of
the communication is ``p = max(p_o, p_i)``.

The default parameters are the ones the paper estimates on its IBM e326 /
BCM5704 cluster (β = 0.75, γ_o = 0.115, γ_i = 0.036); use
:mod:`repro.core.calibration` to estimate them for another emulated or real
card.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .._numpy import np
from ..exceptions import ModelError
from .graph import Communication, CommunicationGraph, ConflictRule
from .penalty import ContentionModel

__all__ = ["EthernetParameters", "GigabitEthernetModel"]


def structural_arrays(comms: Sequence[Communication]) -> Dict[str, "np.ndarray"]:
    """Vectorized Δ degrees and Definition-1 memberships of ``comms``.

    ``comms`` must be the inter-node communications of a selection closed
    under endpoint sharing (a union of ENDPOINT — or coarser — conflict
    components): the degree of a node is then the same whether counted in
    the selection or in the full graph.  Returns arrays aligned with
    ``comms``:

    * ``delta_o`` / ``delta_i`` — out-degree of the source / in-degree of
      the destination (``Δo(i)`` / ``Δi(i)``);
    * ``in_cmo`` / ``card_o`` — membership in the strongly-slowed outgoing
      set ``C^m_o`` of the source node, and that set's cardinality (same for
      ``in_cmi`` / ``card_i`` on the destination side);
    * ``rev_src`` / ``fwd_dst`` — in-degree of the source / out-degree of
      the destination (the InfiniBand cross-term counts; only meaningful
      when the selection is closed under the ``ANY_NODE`` rule).
    """
    n = len(comms)
    src = np.empty(n, dtype=np.int64)
    dst = np.empty(n, dtype=np.int64)
    index_of: Dict[object, int] = {}
    for k, comm in enumerate(comms):
        src[k] = index_of.setdefault(comm.src, len(index_of))
        dst[k] = index_of.setdefault(comm.dst, len(index_of))
    num_nodes = len(index_of)
    out_deg = np.bincount(src, minlength=num_nodes)
    in_deg = np.bincount(dst, minlength=num_nodes)
    delta_o = out_deg[src]
    delta_i = in_deg[dst]
    # C^m_o: among the communications leaving one source node, those whose
    # destination in-degree Δi is maximal (Definition 1 of the paper)
    max_di_at_src = np.zeros(num_nodes, dtype=np.int64)
    np.maximum.at(max_di_at_src, src, delta_i)
    in_cmo = delta_i == max_di_at_src[src]
    card_o = np.bincount(src[in_cmo], minlength=num_nodes)[src]
    max_do_at_dst = np.zeros(num_nodes, dtype=np.int64)
    np.maximum.at(max_do_at_dst, dst, delta_o)
    in_cmi = delta_o == max_do_at_dst[dst]
    card_i = np.bincount(dst[in_cmi], minlength=num_nodes)[dst]
    return {
        "delta_o": delta_o,
        "delta_i": delta_i,
        "in_cmo": in_cmo,
        "card_o": card_o,
        "in_cmi": in_cmi,
        "card_i": card_i,
        "rev_src": in_deg[src],
        "fwd_dst": out_deg[dst],
    }


def po_pi_arrays(
    arrays: Mapping[str, "np.ndarray"], params: "EthernetParameters"
) -> Tuple["np.ndarray", "np.ndarray"]:
    """``p_o`` / ``p_i`` arrays from :func:`structural_arrays` output.

    Replicates the scalar :meth:`GigabitEthernetModel.outgoing_penalty`
    arithmetic operation for operation (same association order), so the
    results are bit-identical to the scalar path.  Neither array carries the
    final ``max(1, ·)`` clamp — the InfiniBand model applies its cross
    terms to the unclamped values.
    """
    delta_o = arrays["delta_o"].astype(np.float64)
    delta_i = arrays["delta_i"].astype(np.float64)
    card_o = arrays["card_o"].astype(np.float64)
    card_i = arrays["card_i"].astype(np.float64)
    po = np.where(
        arrays["delta_o"] <= 1,
        1.0,
        np.where(
            arrays["in_cmo"],
            (delta_o * params.beta) * (1.0 + params.gamma_o * (delta_o - card_o)),
            (delta_o * params.beta) * (1.0 - params.gamma_o / card_o),
        ),
    )
    pi = np.where(
        arrays["delta_i"] <= 1,
        1.0,
        np.where(
            arrays["in_cmi"],
            (delta_i * params.beta) * (1.0 + params.gamma_i * (delta_i - card_i)),
            (delta_i * params.beta) * (1.0 - params.gamma_i / card_i),
        ),
    )
    return po, pi


def split_batch(
    graph: CommunicationGraph, components: Iterable[Iterable[str]]
) -> Tuple[List[Dict[str, float]], List[Communication], List[Tuple[int, str]]]:
    """Partition a batch of selections into result dicts and inter-node work.

    Intra-node communications are priced 1.0 immediately; the returned
    ``inter`` list (with its ``(selection index, name)`` owner per entry) is
    what the array formulations operate on.
    """
    results: List[Dict[str, float]] = []
    inter: List[Communication] = []
    owner: List[Tuple[int, str]] = []
    for which, names in enumerate(components):
        result: Dict[str, float] = {}
        results.append(result)
        for name in names:
            comm = graph[name]
            if comm.is_intra_node:
                result[name] = 1.0
            else:
                inter.append(comm)
                owner.append((which, name))
    return results, inter, owner


@dataclass(frozen=True)
class EthernetParameters:
    """The three card-specific parameters of the Gigabit Ethernet model."""

    beta: float = 0.75
    gamma_o: float = 0.115
    gamma_i: float = 0.036

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ModelError(f"beta must be positive, got {self.beta}")
        if not (0 <= self.gamma_o < 1):
            raise ModelError(f"gamma_o must lie in [0, 1), got {self.gamma_o}")
        if not (0 <= self.gamma_i < 1):
            raise ModelError(f"gamma_i must lie in [0, 1), got {self.gamma_i}")

    #: parameters published in the paper for the BCM5704 Gigabit Ethernet card
    @classmethod
    def paper(cls) -> "EthernetParameters":
        return cls(beta=0.75, gamma_o=0.115, gamma_i=0.036)


class GigabitEthernetModel(ContentionModel):
    """Analytic penalty model for TCP over Gigabit Ethernet (§V.A)."""

    name = "gigabit-ethernet"
    network = "Gigabit Ethernet (TCP)"
    # p depends on Δo/Δi and the strongly-slowed sets, all of which are
    # contained in the ENDPOINT conflict component of the communication.
    component_rule = ConflictRule.ENDPOINT
    structural_penalties = True

    def __init__(self, parameters: EthernetParameters | None = None) -> None:
        self.parameters = parameters or EthernetParameters.paper()

    def memo_key(self) -> tuple:
        return super().memo_key() + (self.parameters,)

    # ------------------------------------------------------------------ model
    def outgoing_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """``p_o``: penalty contribution of the conflict in emission."""
        comm = graph[comm] if isinstance(comm, str) else graph[comm.name]
        if comm.is_intra_node:
            return 1.0
        delta_o = graph.delta_o(comm)
        if delta_o <= 1:
            return 1.0
        params = self.parameters
        strongly = graph.strongly_slowed_outgoing(comm)
        card = max(1, len(strongly))
        if graph.is_strongly_slowed_outgoing(comm):
            return delta_o * params.beta * (1.0 + params.gamma_o * (delta_o - card))
        return delta_o * params.beta * (1.0 - params.gamma_o / card)

    def incoming_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """``p_i``: penalty contribution of the conflict in reception."""
        comm = graph[comm] if isinstance(comm, str) else graph[comm.name]
        if comm.is_intra_node:
            return 1.0
        delta_i = graph.delta_i(comm)
        if delta_i <= 1:
            return 1.0
        params = self.parameters
        strongly = graph.strongly_slowed_incoming(comm)
        card = max(1, len(strongly))
        if graph.is_strongly_slowed_incoming(comm):
            return delta_i * params.beta * (1.0 + params.gamma_i * (delta_i - card))
        return delta_i * params.beta * (1.0 - params.gamma_i / card)

    def communication_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """``p = max(p_o, p_i)`` clamped to at least 1 (a transfer cannot speed up)."""
        po = self.outgoing_penalty(graph, comm)
        pi = self.incoming_penalty(graph, comm)
        return max(1.0, po, pi)

    # -------------------------------------------------------------- interface
    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        return {comm.name: self.communication_penalty(graph, comm) for comm in graph}

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        """Numpy batch path: degree counts and penalties of every selection
        in one array dispatch (bit-exact with :meth:`component_penalties`)."""
        results, inter, owner = split_batch(graph, components)
        if inter:
            po, pi = po_pi_arrays(structural_arrays(inter), self.parameters)
            penalties = np.maximum(1.0, np.maximum(po, pi)).tolist()
            for (which, name), value in zip(owner, penalties):
                results[which][name] = value
        return results

    def details(self, graph: CommunicationGraph) -> Dict[str, Mapping[str, float]]:
        """Per-communication diagnostics: Δ degrees, p_o/p_i, memberships, cards."""
        result: Dict[str, Mapping[str, float]] = {}
        for comm in graph:
            po = self.outgoing_penalty(graph, comm)
            pi = self.incoming_penalty(graph, comm)
            result[comm.name] = {
                "delta_o": float(graph.delta_o(comm)),
                "delta_i": float(graph.delta_i(comm)),
                "p_o": po,
                "p_i": pi,
                "penalty": max(1.0, po, pi),
                "in_cmo": float(graph.is_strongly_slowed_outgoing(comm)),
                "in_cmi": float(graph.is_strongly_slowed_incoming(comm)),
                "card_cmo": float(len(graph.strongly_slowed_outgoing(comm))),
                "card_cmi": float(len(graph.strongly_slowed_incoming(comm))),
            }
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.parameters
        return (
            f"GigabitEthernetModel(beta={p.beta}, gamma_o={p.gamma_o}, gamma_i={p.gamma_i})"
        )
