"""Penalty abstractions shared by every contention model.

The paper's central quantity is the *penalty* of a communication,

.. math::  P_i = T_i / T_{ref}

the ratio between the duration of the communication under contention and the
duration of the same transfer alone on the network (§IV.B).  A model
therefore needs two ingredients:

* a **contention-free cost model** turning a message size into a reference
  time ``T_ref`` (a classic linear latency/bandwidth model, the wormhole
  "overhead + rate" model discussed in §II), and
* a **penalty function** mapping a communication graph to one penalty per
  communication.

:class:`ContentionModel` is the abstract interface implemented by the
Gigabit Ethernet model, the Myrinet model, the InfiniBand extension and the
baselines; :class:`LinearCostModel` is the shared reference-time model;
:class:`PenaltyPrediction` packages the result.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from ..exceptions import ModelError
from ..units import MB, format_time
from .graph import Communication, CommunicationGraph

__all__ = [
    "LinearCostModel",
    "PenaltyPrediction",
    "ContentionModel",
]


@dataclass(frozen=True)
class LinearCostModel:
    """Contention-free communication cost: ``T_ref(L) = latency + L / bandwidth``.

    Parameters
    ----------
    latency:
        Per-message overhead in seconds (the ``o`` / ``L`` terms of LogP).
    bandwidth:
        Sustained single-stream bandwidth in bytes per second.  This is the
        bandwidth a *single* MPI_Send achieves on an idle network, i.e. the
        quantity measured by the paper's "referential time" of a 20 MB send.
    envelope:
        Constant number of bytes added by the MPI implementation to every
        message (the paper notes the effective length is always greater than
        the specified length, so a 0-byte send is not free).
    """

    latency: float
    bandwidth: float
    envelope: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ModelError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ModelError(f"latency must be non-negative, got {self.latency}")
        if self.envelope < 0:
            raise ModelError(f"envelope must be non-negative, got {self.envelope}")

    @classmethod
    def for_technology(cls, technology) -> "LinearCostModel":
        """Cost model of a :class:`~repro.network.technologies.NetworkTechnology`.

        The single construction used by the CLI, the experiment runner and
        the campaign runner, so the technology → (latency, bandwidth,
        envelope) mapping lives in one place.
        """
        return cls(
            latency=technology.latency,
            bandwidth=technology.single_stream_bandwidth,
            envelope=technology.mpi_envelope,
        )

    def time(self, size: int) -> float:
        """Reference (uncontended) duration of a ``size``-byte message."""
        if size < 0:
            raise ModelError(f"negative message size {size}")
        return self.latency + (size + self.envelope) / self.bandwidth

    def reference_time(self, size: int = 20 * MB) -> float:
        """``T_ref``: duration of the paper's reference 20 MB message."""
        return self.time(size)

    def effective_bandwidth(self, size: int) -> float:
        """Achieved bandwidth (bytes/s) for a message of ``size`` bytes."""
        duration = self.time(size)
        if duration == 0:
            return float("inf")
        return size / duration


@dataclass
class PenaltyPrediction:
    """Result of applying a contention model to a communication graph."""

    model_name: str
    graph_name: str
    penalties: Dict[str, float]
    #: predicted durations in seconds; empty when no cost model was supplied
    times: Dict[str, float] = field(default_factory=dict)
    #: optional per-communication diagnostic details (model specific)
    details: Dict[str, Mapping[str, float]] = field(default_factory=dict)

    def penalty(self, name: str) -> float:
        try:
            return self.penalties[name]
        except KeyError:
            raise ModelError(f"no penalty predicted for communication {name!r}") from None

    def time(self, name: str) -> float:
        try:
            return self.times[name]
        except KeyError:
            raise ModelError(f"no time predicted for communication {name!r}") from None

    @property
    def mean_penalty(self) -> float:
        if not self.penalties:
            return 0.0
        return sum(self.penalties.values()) / len(self.penalties)

    @property
    def max_penalty(self) -> float:
        return max(self.penalties.values(), default=0.0)

    def as_table(self) -> str:
        """Paper-style two-column table: communication name, penalty (and time)."""
        lines = [f"{self.model_name} on {self.graph_name or '(unnamed graph)'}"]
        for name in self.penalties:
            row = f"  {name:>4s}  penalty = {self.penalties[name]:6.3f}"
            if name in self.times:
                row += f"  predicted T = {format_time(self.times[name])}"
            lines.append(row)
        return "\n".join(lines)


class ContentionModel(abc.ABC):
    """Abstract contention model: communication graph → per-communication penalties."""

    #: short machine-readable identifier ("ethernet", "myrinet", ...)
    name: str = "abstract"
    #: network technology the model was designed for (free-form label)
    network: str = "generic"
    #: conflict rule under which the model is *component-local*: the penalty
    #: of a communication only depends on the connected component of the
    #: conflict graph (under this rule) it belongs to.  ``None`` means the
    #: model makes no locality promise and :meth:`component_penalties` falls
    #: back to whole-graph evaluation.  All shipped models are local under
    #: :data:`~repro.core.graph.ConflictRule.ENDPOINT` except the InfiniBand
    #: extension, whose income/outgo cross terms couple communications that
    #: merely share a node (→ ``ANY_NODE``).
    component_rule: str | None = None
    #: True when penalties depend only on the *structure* of the graph (node
    #: identities up to relabelling; never on message sizes or names), which
    #: makes evaluations memoizable by canonical component snapshot
    #: (:meth:`CommunicationGraph.structural_key`).  Every model of the paper
    #: has this property (penalties are size-free ratios); the conservative
    #: default for third-party subclasses is False.
    structural_penalties: bool = False

    @abc.abstractmethod
    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        """Return the penalty of every communication of ``graph`` (≥ 1).

        Contract: intra-node communications never touch the NIC and must be
        given penalty exactly 1.0 (every shipped model does).  The
        incremental engine relies on this and prices intra-node flows
        without consulting the model.
        """

    def memo_key(self) -> tuple:
        """Hashable identity of the model *and its parameters*.

        Namespaces shared penalty caches: two models may only exchange
        memoized component evaluations when their ``memo_key`` is equal.
        Subclasses with tunable parameters that change penalties must
        include them (see the ethernet/myrinet/infiniband overrides).
        """
        return (type(self).__module__, type(self).__qualname__)

    def component_penalties(
        self, graph: CommunicationGraph, names: Iterable[str]
    ) -> Dict[str, float]:
        """Penalties of the named communications only.

        When :attr:`component_rule` is set, ``names`` must be a union of
        connected components of the conflict graph under that rule (plus any
        intra-node communications); evaluation is then scoped to their
        subgraph, which is exactly equivalent to evaluating the whole graph.
        Models without a locality promise evaluate the whole graph and
        restrict the result.
        """
        names = list(names)
        if self.component_rule is None:
            full = self.penalties(graph)
            return {n: full[n] for n in names}
        return self.penalties(graph.subgraph(names))

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> list:
        """Price several component selections of ``graph`` in one call.

        Each entry of ``components`` follows the :meth:`component_penalties`
        contract (a union of conflict components under
        :attr:`component_rule`, plus any intra-node communications); the
        result is one penalty dict per entry, in order.  The base
        implementation loops :meth:`component_penalties`; the analytic
        models override it with a numpy formulation that computes the degree
        counts and penalties of *all* selections as array operations — the
        incremental engine uses it to price a whole dirty set in one
        dispatch.  Overrides must be bit-exact with the scalar path
        (``tests/property/test_vectorized_pricing.py`` cross-checks them).
        """
        return [self.component_penalties(graph, names) for names in components]

    def penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        """Penalty of a single communication (convenience wrapper)."""
        name = comm if isinstance(comm, str) else comm.name
        return self.penalties(graph)[name]

    def details(self, graph: CommunicationGraph) -> Dict[str, Mapping[str, float]]:
        """Optional per-communication diagnostics; empty by default."""
        return {}

    def predict(
        self,
        graph: CommunicationGraph,
        cost_model: Optional[LinearCostModel] = None,
    ) -> PenaltyPrediction:
        """Predict penalties and, when a cost model is given, durations.

        The predicted duration of communication ``c`` is
        ``penalty(c) × T_ref(size(c))`` — contention multiplies the
        contention-free transfer time, which is how the paper converts
        penalties back into seconds for Figures 4 and 7.
        """
        pens = self.penalties(graph)
        times: Dict[str, float] = {}
        if cost_model is not None:
            for comm in graph:
                times[comm.name] = pens[comm.name] * cost_model.time(comm.size)
        return PenaltyPrediction(
            model_name=self.name,
            graph_name=graph.name,
            penalties=pens,
            times=times,
            details=self.details(graph),
        )

    def predict_times(
        self, graph: CommunicationGraph, cost_model: LinearCostModel
    ) -> Dict[str, float]:
        """Predicted duration (seconds) of every communication of ``graph``."""
        return self.predict(graph, cost_model).times

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} network={self.network!r}>"
