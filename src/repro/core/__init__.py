"""Core contention models — the paper's primary contribution.

This subpackage contains the communication-graph data structure, the conflict
taxonomy (§IV.A), the Gigabit Ethernet model (§V.A), the Myrinet state-set
model (§V.B), the InfiniBand extension (§VII future work), the related-work
baselines (§II) and the parameter-estimation utilities.
"""

from .baselines import (
    FairShareModel,
    KimLeeModel,
    LogGPContentionAdapter,
    LogGPCostModel,
    LogPCostModel,
    NoContentionModel,
)
from .calibration import (
    CalibrationMeasurement,
    calibrate_from_measurer,
    estimate_beta,
    estimate_beta_from_times,
    estimate_gammas,
    fit_ethernet_parameters,
    fit_infiniband_parameters,
)
from .conflicts import (
    CommunicationConflicts,
    ConflictKind,
    ConflictReport,
    classify_communication,
    classify_graph,
)
from .ethernet_model import EthernetParameters, GigabitEthernetModel
from .graph import Communication, CommunicationGraph, ConflictRule
from .incremental import (
    EngineStats,
    IncrementalPenaltyEngine,
    PenaltyCache,
    cached_penalties,
    cached_predict,
)
from .infiniband_model import InfinibandModel, InfinibandParameters
from .myrinet_model import MyrinetModel, StateSetAnalysis, maximal_independent_sets
from .penalty import ContentionModel, LinearCostModel, PenaltyPrediction
from .registry import (
    available_models,
    available_networks,
    get_model,
    model_for_network,
    register_model,
)

__all__ = [
    "Communication",
    "CommunicationGraph",
    "ConflictRule",
    "ConflictKind",
    "CommunicationConflicts",
    "ConflictReport",
    "classify_communication",
    "classify_graph",
    "ContentionModel",
    "LinearCostModel",
    "PenaltyPrediction",
    "EngineStats",
    "IncrementalPenaltyEngine",
    "PenaltyCache",
    "cached_penalties",
    "cached_predict",
    "EthernetParameters",
    "GigabitEthernetModel",
    "MyrinetModel",
    "StateSetAnalysis",
    "maximal_independent_sets",
    "InfinibandModel",
    "InfinibandParameters",
    "NoContentionModel",
    "FairShareModel",
    "KimLeeModel",
    "LogPCostModel",
    "LogGPCostModel",
    "LogGPContentionAdapter",
    "CalibrationMeasurement",
    "estimate_beta",
    "estimate_beta_from_times",
    "estimate_gammas",
    "fit_ethernet_parameters",
    "fit_infiniband_parameters",
    "calibrate_from_measurer",
    "register_model",
    "get_model",
    "available_models",
    "available_networks",
    "model_for_network",
]
