"""Elementary conflict taxonomy (§IV.A of the paper).

A communication can be seized by one of the following elementary conflicts:

* **outgoing conflict** ``C←X→`` — it leaves a node together with other
  outgoing communications (node 0 of Figure 1);
* **incoming conflict** ``C→X←`` — it arrives at a node together with other
  incoming communications (node 1 of Figure 1);
* **income/outgo conflict** ``C→X→`` / ``C←X←`` — it shares a node with
  communications flowing in the opposite direction (node 2 of Figure 1).

A communication may be involved in several elementary conflicts at once (for
instance it can be in an outgoing conflict at its source *and* an incoming
conflict at its destination).  :func:`classify_communication` returns the
full set, and :func:`classify_graph` summarises a whole graph — this is the
"kind of conflicts" statistic reported by the paper's simulator (§VI.A).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Tuple

from .graph import Communication, CommunicationGraph

__all__ = [
    "ConflictKind",
    "CommunicationConflicts",
    "ConflictReport",
    "classify_communication",
    "classify_graph",
]


class ConflictKind(str, Enum):
    """The elementary conflicts of §IV.A plus the no-conflict case."""

    NONE = "none"
    OUTGOING = "outgoing"            # C<-X->  : shares its source with other outgoing comms
    INCOMING = "incoming"            # C->X<-  : shares its destination with other incoming comms
    INCOME_OUTGO_SOURCE = "income-outgo-source"       # its source node also receives traffic
    INCOME_OUTGO_DESTINATION = "income-outgo-destination"  # its destination node also sends traffic

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CommunicationConflicts:
    """Conflicts a single communication is involved in."""

    name: str
    kinds: FrozenSet[ConflictKind]
    delta_o: int
    delta_i: int
    #: number of communications entering the source node (income/outgo pressure)
    source_in_degree: int
    #: number of communications leaving the destination node
    destination_out_degree: int

    @property
    def is_conflicted(self) -> bool:
        return ConflictKind.NONE not in self.kinds

    @property
    def degree_product(self) -> int:
        """A simple severity proxy: Δo(i) × Δi(i)."""
        return self.delta_o * self.delta_i


def classify_communication(graph: CommunicationGraph, comm: Communication | str) -> CommunicationConflicts:
    """Classify one communication of ``graph`` into the §IV.A taxonomy."""
    comm = graph[comm] if isinstance(comm, str) else graph[comm.name]
    delta_o = graph.delta_o(comm)
    delta_i = graph.delta_i(comm)
    source_in = graph.in_degree(comm.src)
    dest_out = graph.out_degree(comm.dst)

    kinds: set = set()
    if delta_o > 1:
        kinds.add(ConflictKind.OUTGOING)
    if delta_i > 1:
        kinds.add(ConflictKind.INCOMING)
    if source_in > 0 and not comm.is_intra_node:
        kinds.add(ConflictKind.INCOME_OUTGO_SOURCE)
    if dest_out > 0 and not comm.is_intra_node:
        kinds.add(ConflictKind.INCOME_OUTGO_DESTINATION)
    if not kinds:
        kinds.add(ConflictKind.NONE)

    return CommunicationConflicts(
        name=comm.name,
        kinds=frozenset(kinds),
        delta_o=delta_o,
        delta_i=delta_i,
        source_in_degree=source_in,
        destination_out_degree=dest_out,
    )


@dataclass
class ConflictReport:
    """Summary of the conflicts present in a communication graph."""

    graph_name: str
    per_communication: Dict[str, CommunicationConflicts] = field(default_factory=dict)

    @property
    def kind_counts(self) -> Counter:
        """How many communications are involved in each elementary conflict."""
        counter: Counter = Counter()
        for conflicts in self.per_communication.values():
            for kind in conflicts.kinds:
                counter[kind] += 1
        return counter

    @property
    def conflicted_names(self) -> Tuple[str, ...]:
        return tuple(name for name, c in self.per_communication.items() if c.is_conflicted)

    @property
    def conflict_free_names(self) -> Tuple[str, ...]:
        return tuple(name for name, c in self.per_communication.items() if not c.is_conflicted)

    @property
    def max_out_degree(self) -> int:
        return max((c.delta_o for c in self.per_communication.values()), default=0)

    @property
    def max_in_degree(self) -> int:
        return max((c.delta_i for c in self.per_communication.values()), default=0)

    def summary(self) -> str:
        """Human readable report used by examples and the simulator output."""
        counts = self.kind_counts
        lines = [f"Conflict report for {self.graph_name or '(unnamed graph)'}:"]
        lines.append(f"  communications          : {len(self.per_communication)}")
        lines.append(f"  conflict-free           : {counts.get(ConflictKind.NONE, 0)}")
        lines.append(f"  outgoing conflicts      : {counts.get(ConflictKind.OUTGOING, 0)}")
        lines.append(f"  incoming conflicts      : {counts.get(ConflictKind.INCOMING, 0)}")
        lines.append(
            "  income/outgo conflicts  : "
            f"{counts.get(ConflictKind.INCOME_OUTGO_SOURCE, 0)} at source, "
            f"{counts.get(ConflictKind.INCOME_OUTGO_DESTINATION, 0)} at destination"
        )
        lines.append(f"  max Δo / max Δi         : {self.max_out_degree} / {self.max_in_degree}")
        return "\n".join(lines)


def classify_graph(graph: CommunicationGraph) -> ConflictReport:
    """Classify every communication of ``graph``.

    >>> from repro.core.graph import CommunicationGraph
    >>> g = CommunicationGraph.from_edges([(0, 1), (0, 2)])
    >>> report = classify_graph(g)
    >>> report.per_communication['a'].kinds == frozenset({ConflictKind.OUTGOING})
    True
    """
    report = ConflictReport(graph_name=graph.name)
    for comm in graph:
        report.per_communication[comm.name] = classify_communication(graph, comm)
    return report
