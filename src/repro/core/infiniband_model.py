"""InfiniBand (InfiniHost III) contention model.

The paper measures InfiniBand penalties (Figure 2) but leaves the model as
future work (§VII: *"We are working too on the model of the Infiniband
InfinihostIII and ConnectX interconnect"*).  This module implements that
extension in the same spirit as the published Gigabit Ethernet model:

* the credit-based flow control of InfiniBand shares the HCA fairly, so the
  basic penalty of ``k`` concurrent outgoing (or incoming) communications is
  ``k · β`` with ``β ≈ 0.87`` (Figure 2: ``1.725/2 = 0.86``, ``2.61/3 =
  0.87``) — the single-stream transfer only reaches ~87 % of what the HCA
  sustains under aggregate load;
* unlike TCP/GigE the measured ladder is symmetric (every communication of a
  conflict gets the same penalty), so the spread parameters ``γ_o``/``γ_i``
  default to zero;
* the measured income/outgo coupling is weak for a single reverse stream and
  significant from the second one on (scheme 4 leaves the outgoing penalties
  untouched, scheme 5 raises them from 2.61 to ≈3.66): this is captured by
  two cross terms ``λ_o`` and ``λ_i`` applied beyond the first reverse
  communication.

Formally, with the same notation as the Ethernet model and writing
``r = Δi(v_s)`` for the number of communications *entering* the source node
and ``s = Δo(v_d)`` for the number of communications *leaving* the
destination node:

.. math::

   p_o' = p_o (1 + λ_o \\max(0, r - 1)),\\qquad
   p_i' = p_i (1 + λ_i \\, s),\\qquad
   p = \\max(1, p_o', p_i')

The default parameters are calibrated on the Figure 2 InfiniHost III column;
:func:`repro.core.calibration.fit_crossterm_parameters` can recalibrate them
against any measured or emulated penalty set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from .._numpy import np
from ..exceptions import ModelError
from .ethernet_model import (
    EthernetParameters,
    GigabitEthernetModel,
    po_pi_arrays,
    split_batch,
    structural_arrays,
)
from .graph import Communication, CommunicationGraph, ConflictRule
from .penalty import ContentionModel

__all__ = ["InfinibandParameters", "InfinibandModel"]


@dataclass(frozen=True)
class InfinibandParameters:
    """Parameters of the InfiniBand extension model."""

    beta: float = 0.87
    gamma_o: float = 0.0
    gamma_i: float = 0.0
    #: slowdown of outgoing communications per reverse (incoming) communication
    #: at their source node, beyond the first one
    lambda_o: float = 0.42
    #: slowdown of incoming communications per outgoing communication at their
    #: destination node
    lambda_i: float = 0.047

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ModelError(f"beta must be positive, got {self.beta}")
        for label, value in (("gamma_o", self.gamma_o), ("gamma_i", self.gamma_i)):
            if not (0 <= value < 1):
                raise ModelError(f"{label} must lie in [0, 1), got {value}")
        for label, value in (("lambda_o", self.lambda_o), ("lambda_i", self.lambda_i)):
            if value < 0:
                raise ModelError(f"{label} must be non-negative, got {value}")

    @classmethod
    def infinihost3(cls) -> "InfinibandParameters":
        """Parameters calibrated on the paper's InfiniHost III column of Figure 2."""
        return cls()

    def base_parameters(self) -> EthernetParameters:
        """The (β, γo, γi) triple reused from the Ethernet functional form."""
        return EthernetParameters(beta=self.beta, gamma_o=self.gamma_o, gamma_i=self.gamma_i)


class InfinibandModel(ContentionModel):
    """Credit-based flow-control penalty model for InfiniBand HCAs."""

    name = "infiniband"
    network = "InfiniBand (InfiniHost III)"
    # the λ cross terms couple a communication to the flows *entering its
    # source* and *leaving its destination*, which are not ENDPOINT
    # conflicts — the model is only local under the coarser ANY_NODE
    # components (connected host groups).
    component_rule = ConflictRule.ANY_NODE
    structural_penalties = True

    def __init__(self, parameters: InfinibandParameters | None = None) -> None:
        self.parameters = parameters or InfinibandParameters.infinihost3()
        self._base = GigabitEthernetModel(self.parameters.base_parameters())

    def memo_key(self) -> tuple:
        return super().memo_key() + (self.parameters,)

    def communication_penalty(self, graph: CommunicationGraph, comm: Communication | str) -> float:
        comm = graph[comm] if isinstance(comm, str) else graph[comm.name]
        if comm.is_intra_node:
            return 1.0
        params = self.parameters
        po = self._base.outgoing_penalty(graph, comm)
        pi = self._base.incoming_penalty(graph, comm)
        reverse_at_source = graph.in_degree(comm.src)
        forward_at_destination = graph.out_degree(comm.dst)
        po_prime = po * (1.0 + params.lambda_o * max(0, reverse_at_source - 1))
        pi_prime = pi * (1.0 + params.lambda_i * forward_at_destination)
        return max(1.0, po_prime, pi_prime)

    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        graph.validate()
        return {comm.name: self.communication_penalty(graph, comm) for comm in graph}

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        """Numpy batch path: the Ethernet base arrays plus the λ cross terms
        (bit-exact with :meth:`component_penalties`).  The ANY_NODE closure
        of the selections guarantees the ``rev_src``/``fwd_dst`` counts match
        the whole-graph degrees."""
        results, inter, owner = split_batch(graph, components)
        if inter:
            params = self.parameters
            arrays = structural_arrays(inter)
            po, pi = po_pi_arrays(arrays, self._base.parameters)
            rev = arrays["rev_src"]
            fwd = arrays["fwd_dst"].astype(np.float64)
            po_prime = po * (1.0 + params.lambda_o * np.maximum(0, rev - 1).astype(np.float64))
            pi_prime = pi * (1.0 + params.lambda_i * fwd)
            penalties = np.maximum(1.0, np.maximum(po_prime, pi_prime)).tolist()
            for (which, name), value in zip(owner, penalties):
                results[which][name] = value
        return results

    def details(self, graph: CommunicationGraph) -> Dict[str, Mapping[str, float]]:
        result: Dict[str, Mapping[str, float]] = {}
        for comm in graph:
            po = self._base.outgoing_penalty(graph, comm)
            pi = self._base.incoming_penalty(graph, comm)
            result[comm.name] = {
                "delta_o": float(graph.delta_o(comm)),
                "delta_i": float(graph.delta_i(comm)),
                "p_o": po,
                "p_i": pi,
                "reverse_at_source": float(graph.in_degree(comm.src)),
                "forward_at_destination": float(graph.out_degree(comm.dst)),
                "penalty": self.communication_penalty(graph, comm),
            }
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.parameters
        return (
            f"InfinibandModel(beta={p.beta}, lambda_o={p.lambda_o}, lambda_i={p.lambda_i})"
        )
