"""Myrinet 2000 contention model (§V.B of the paper).

Myrinet NICs use a *Stop & Go* flow control with cut-through routing: while a
communication is transmitting ("send" state), the communications that share
its source node or its destination node are blocked ("wait" state).  The
model is *descriptive*: it enumerates every possible combination of
communication states allowed by that single rule and derives penalties from
the combinatorics.

Algorithm (Figures 5 and 6 of the paper):

1. Build the **conflict graph**: one vertex per communication, an edge
   between two communications that share a source node or share a
   destination node.
2. Enumerate all **state sets** — maximal sets of communications that can be
   simultaneously in the "send" state, i.e. maximal independent sets of the
   conflict graph.
3. The **emission coefficient** of a communication is the number of state
   sets in which it sends.
4. Communications leaving the same node share the NIC fairly, so each of
   them is aligned on the **minimum** emission coefficient of the outgoing
   communications of that node (worst case assumption of the paper).
5. ``penalty = (number of state sets) / (adjusted emission coefficient)``.

Enumerating maximal independent sets is exponential in the worst case; the
implementation therefore decomposes the conflict graph into connected
components first (the penalty of a communication only depends on its own
component: the total number of state sets and the emission coefficient are
both multiplied by the same product over the other components) and uses a
Bron–Kerbosch search with pivoting inside each component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence, Tuple

from ..exceptions import ModelError
from .graph import CommunicationGraph, ConflictRule
from .penalty import ContentionModel

__all__ = [
    "maximal_independent_sets",
    "StateSetAnalysis",
    "MyrinetModel",
]


def maximal_independent_sets(adjacency: Mapping[str, FrozenSet[str]]) -> List[FrozenSet[str]]:
    """Enumerate the maximal independent sets of an undirected graph.

    ``adjacency`` maps each vertex to the frozenset of its neighbours.  The
    maximal independent sets of a graph are exactly the maximal cliques of
    its complement; we run Bron–Kerbosch with pivoting on the complement.

    The result is returned in a deterministic order (sorted by the sorted
    tuple of members) so that downstream reports are reproducible.
    """
    vertices = list(adjacency)
    vertex_set = set(vertices)
    # complement adjacency: neighbours in the complement graph
    complement: Dict[str, set] = {
        v: (vertex_set - set(adjacency[v]) - {v}) for v in vertices
    }

    results: List[FrozenSet[str]] = []

    def bron_kerbosch(r: set, p: set, x: set) -> None:
        if not p and not x:
            results.append(frozenset(r))
            return
        # pivot on the vertex of P ∪ X with the most complement-neighbours in P
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda v: len(complement[v] & p))
        for v in list(p - complement[pivot]):
            bron_kerbosch(r | {v}, p & complement[v], x & complement[v])
            p.remove(v)
            x.add(v)

    if vertices:
        bron_kerbosch(set(), set(vertices), set())
    return sorted(results, key=lambda s: tuple(sorted(s)))


@dataclass
class StateSetAnalysis:
    """Full result of the Myrinet state-set analysis of one communication graph.

    Attributes
    ----------
    state_sets:
        The maximal sets of simultaneously sending communications.  When the
        analysis was run per connected component (the default for the model),
        these are the state sets of the *whole* graph only if
        ``decomposed`` is False; otherwise they are per-component sets glued
        together for reporting and their count is ``num_state_sets``.
    emission:
        Raw emission coefficient of each communication (number of state sets
        in which it sends).
    adjusted_emission:
        Emission after the per-source-node minimum alignment (step 4).
    penalties:
        ``num_state_sets / adjusted_emission`` for each communication.
    """

    graph_name: str
    state_sets: Tuple[FrozenSet[str], ...]
    num_state_sets: int
    emission: Dict[str, int]
    adjusted_emission: Dict[str, int]
    penalties: Dict[str, float]
    decomposed: bool = False

    def table(self) -> str:
        """Figure 6 style table: Sum / Minimum / penalty rows."""
        names = list(self.emission)
        header = "Communications".ljust(16) + "".join(f"{n:>8s}" for n in names)
        sum_row = "Sum".ljust(16) + "".join(f"{self.emission[n]:>8d}" for n in names)
        min_row = "Minimum".ljust(16) + "".join(f"{self.adjusted_emission[n]:>8d}" for n in names)
        pen_row = "penalty".ljust(16) + "".join(f"{self.penalties[n]:>8.2f}" for n in names)
        title = f"state sets: {self.num_state_sets}"
        return "\n".join([title, header, sum_row, min_row, pen_row])


def _analyse_component(
    graph: CommunicationGraph,
    component: Sequence[str],
    adjacency: Mapping[str, FrozenSet[str]],
) -> Tuple[List[FrozenSet[str]], Dict[str, int], Dict[str, int], Dict[str, float]]:
    """Run steps 2–5 of the model on one connected component of the conflict graph."""
    sub_adj = {name: adjacency[name] & frozenset(component) for name in component}
    sets = maximal_independent_sets(sub_adj)
    num_sets = len(sets)
    emission = {name: sum(1 for s in sets if name in s) for name in component}

    # step 4: per-source-node minimum among outgoing communications
    adjusted: Dict[str, int] = dict(emission)
    by_source: Dict[int, List[str]] = {}
    for name in component:
        by_source.setdefault(graph[name].src, []).append(name)
    for names in by_source.values():
        minimum = min(emission[n] for n in names)
        for n in names:
            adjusted[n] = minimum

    penalties = {name: num_sets / adjusted[name] for name in component}
    return sets, emission, adjusted, penalties


def _selection_adjacency(
    graph: CommunicationGraph, names: Sequence[str], rule: str
) -> Dict[str, FrozenSet[str]]:
    """Conflict adjacency restricted to a selection of inter-node comms.

    Equivalent to ``graph.subgraph(names).conflict_adjacency(rule)`` without
    materialising the subgraph: the selection's endpoint groups are rebuilt
    locally from the named communications.
    """
    groups: Dict[Hashable, List[str]] = {}
    if rule == ConflictRule.ENDPOINT:
        for name in names:
            comm = graph[name]
            groups.setdefault(("s", comm.src), []).append(name)
            groups.setdefault(("d", comm.dst), []).append(name)
    else:  # ANY_NODE: sharing any endpoint
        for name in names:
            comm = graph[name]
            groups.setdefault(comm.src, []).append(name)
            if comm.dst != comm.src:
                groups.setdefault(comm.dst, []).append(name)
    adjacency: Dict[str, set] = {name: set() for name in names}
    for members in groups.values():
        for member in members:
            adjacency[member].update(members)
    return {
        name: frozenset(neighbours - {name})
        for name, neighbours in adjacency.items()
    }


class MyrinetModel(ContentionModel):
    """Descriptive Stop & Go state-set model for Myrinet 2000 (§V.B)."""

    name = "myrinet"
    network = "Myrinet 2000 (MX)"
    structural_penalties = True

    def __init__(
        self,
        conflict_rule: str = ConflictRule.ENDPOINT,
        max_component_size: int = 26,
        decompose: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        conflict_rule:
            Which sharing rule defines a conflict; the paper's rule is
            :data:`ConflictRule.ENDPOINT` (same source node or same
            destination node).
        max_component_size:
            Safety cap on the size of a conflict-graph component handed to
            the exponential enumeration.  Larger components raise
            :class:`ModelError` so callers notice they need coarser phases.
        decompose:
            Analyse each connected component of the conflict graph
            separately (recommended; mathematically equivalent penalties).
        """
        if conflict_rule not in ConflictRule.ALL:
            raise ModelError(f"unknown conflict rule {conflict_rule!r}")
        self.conflict_rule = conflict_rule
        self.max_component_size = int(max_component_size)
        self.decompose = bool(decompose)
        # the state-set analysis is component-local under the model's own
        # conflict rule (it decomposes along exactly these components).  With
        # decompose=False the caller explicitly asked for whole-graph
        # analysis — declaring locality would let the incremental engine
        # decompose anyway, which keeps the penalties identical but changes
        # the max_component_size error semantics vs a full recomputation.
        self.component_rule = conflict_rule if self.decompose else None

    def memo_key(self) -> tuple:
        return super().memo_key() + (
            self.conflict_rule, self.max_component_size, self.decompose,
        )

    # -------------------------------------------------------------- analysis
    def analyse(self, graph: CommunicationGraph) -> StateSetAnalysis:
        """Run the full state-set analysis and return every intermediate quantity."""
        graph.validate()
        adjacency = graph.conflict_adjacency(self.conflict_rule)
        inter = [c.name for c in graph if not c.is_intra_node]
        intra = [c.name for c in graph if c.is_intra_node]

        if not self.decompose:
            components: List[Tuple[str, ...]] = [tuple(inter)] if inter else []
        else:
            components = graph.conflict_components(self.conflict_rule)

        all_sets: List[FrozenSet[str]] = []
        emission: Dict[str, int] = {}
        adjusted: Dict[str, int] = {}
        penalties: Dict[str, float] = {}
        num_sets_global = 1 if inter else 0

        for component in components:
            if len(component) > self.max_component_size:
                raise ModelError(
                    f"conflict component of size {len(component)} exceeds the "
                    f"enumeration cap ({self.max_component_size}); split the phase "
                    "or raise max_component_size"
                )
            sets, em, adj, pen = _analyse_component(graph, component, adjacency)
            all_sets.extend(sets)
            emission.update(em)
            adjusted.update(adj)
            penalties.update(pen)
            num_sets_global *= max(1, len(sets))

        if not self.decompose and components:
            num_sets_global = len(all_sets)

        # intra-node communications never conflict on the NIC: penalty 1
        for name in intra:
            emission[name] = max(1, num_sets_global)
            adjusted[name] = max(1, num_sets_global)
            penalties[name] = 1.0

        # preserve the insertion order of the graph for reporting
        order = [c.name for c in graph]
        return StateSetAnalysis(
            graph_name=graph.name,
            state_sets=tuple(all_sets),
            num_state_sets=(len(all_sets) if not self.decompose else num_sets_global),
            emission={n: emission[n] for n in order},
            adjusted_emission={n: adjusted[n] for n in order},
            penalties={n: max(1.0, penalties[n]) for n in order},
            decomposed=self.decompose,
        )

    # -------------------------------------------------------------- interface
    def penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        return self.analyse(graph).penalties

    def penalties_batch(
        self, graph: CommunicationGraph, components: Iterable[Iterable[str]]
    ) -> List[Dict[str, float]]:
        """Batch path without per-selection subgraph copies.

        The state-set enumeration itself stays combinatorial (Bron–Kerbosch
        is not an array operation), but each selection's conflict adjacency
        is rebuilt locally from the parent graph instead of materialising
        and re-indexing a subgraph per component.  Bit-exact with
        :meth:`component_penalties`.
        """
        if self.component_rule is None:
            return super().penalties_batch(graph, components)
        results: List[Dict[str, float]] = []
        for names in components:
            names = list(names)
            result: Dict[str, float] = {}
            inter: List[str] = []
            for name in names:
                if graph[name].is_intra_node:
                    result[name] = 1.0
                else:
                    inter.append(name)
            adjacency = _selection_adjacency(graph, inter, self.conflict_rule)
            seen: set = set()
            for start in inter:
                if start in seen:
                    continue
                seen.add(start)
                component = [start]
                stack = [start]
                while stack:
                    for neighbour in adjacency[stack.pop()]:
                        if neighbour not in seen:
                            seen.add(neighbour)
                            component.append(neighbour)
                            stack.append(neighbour)
                if len(component) > self.max_component_size:
                    raise ModelError(
                        f"conflict component of size {len(component)} exceeds the "
                        f"enumeration cap ({self.max_component_size}); split the phase "
                        "or raise max_component_size"
                    )
                _, _, _, penalties = _analyse_component(graph, component, adjacency)
                for name, penalty in penalties.items():
                    result[name] = max(1.0, penalty)
            results.append(result)
        return results

    def details(self, graph: CommunicationGraph) -> Dict[str, Mapping[str, float]]:
        analysis = self.analyse(graph)
        return {
            name: {
                "emission": float(analysis.emission[name]),
                "adjusted_emission": float(analysis.adjusted_emission[name]),
                "num_state_sets": float(analysis.num_state_sets),
                "penalty": analysis.penalties[name],
            }
            for name in analysis.penalties
        }
