"""Communication graphs.

The contention models of the paper reason about a *communication graph*: a
directed multigraph whose vertices are **cluster nodes** (hosts, not MPI
ranks) and whose arcs are the point-to-point communications that are in
flight during a given interval of time.

This module provides :class:`Communication` (one arc) and
:class:`CommunicationGraph` (the multigraph) together with every structural
quantity the models need:

* out-degree ``Δo(v)`` and in-degree ``Δi(v)`` of a node,
* the per-communication degrees ``Δo(i) = Δo(src)`` and ``Δi(i) = Δi(dst)``,
* the sets ``Co`` (same source) and ``Ci`` (same destination),
* the *strongly slowed* sets ``C^m_o`` / ``C^m_i`` of Definition 1 (§V.A),
* the Myrinet conflict graph (communications sharing a source node or a
  destination node) and its connected components.

Graphs are hashable snapshots of a contention situation and are therefore
kept immutable after :meth:`CommunicationGraph.freeze` (the models freeze
them defensively).

To support the incremental contention engine
(:mod:`repro.core.incremental`) the graph additionally maintains per-node
endpoint indices (so every degree/conflict query is proportional to the
local neighbourhood, not to the whole graph), offers a mutation/delta API
(:meth:`CommunicationGraph.remove` next to :meth:`CommunicationGraph.add`)
and exposes a canonical, order-independent :meth:`structural_key` used to
memoize per-component penalty evaluations across repeated contention
situations.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

import networkx as nx

from ..exceptions import GraphError
from ..units import MB

__all__ = ["Communication", "CommunicationGraph", "ConflictRule"]


NodeId = int


@dataclass(frozen=True)
class Communication:
    """A single point-to-point communication between two cluster nodes.

    Parameters
    ----------
    name:
        Unique label of the communication inside its graph (the paper labels
        them ``a``, ``b``, ``c``...).
    src, dst:
        Identifiers of the source and destination *nodes* (hosts).
    size:
        Message length in bytes as specified to ``MPI_Send`` (the effective
        wire length includes a small envelope, handled by
        :mod:`repro.mpi.message`).
    task_src, task_dst:
        Optional MPI rank identifiers, kept for reporting purposes when the
        graph is derived from an application trace.
    """

    name: str
    src: NodeId
    dst: NodeId
    size: int = 20 * MB
    task_src: int | None = None
    task_dst: int | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise GraphError(f"communication {self.name!r} has negative size {self.size}")

    @property
    def is_intra_node(self) -> bool:
        """True when source and destination are the same host."""
        return self.src == self.dst

    @property
    def endpoints(self) -> Tuple[NodeId, NodeId]:
        return (self.src, self.dst)

    def with_size(self, size: int) -> "Communication":
        """Return a copy with a different message size."""
        return replace(self, size=size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.src}->{self.dst} ({self.size} B)"


class ConflictRule:
    """Rules deciding when two communications conflict.

    ``ENDPOINT`` is the rule of the Myrinet model (§V.B): a sending
    communication forces into the *wait* state every communication that has
    the same source node **or** the same destination node.  ``ANY_NODE`` is a
    stricter alternative (sharing any endpoint) kept for ablation studies.
    """

    ENDPOINT = "endpoint"
    ANY_NODE = "any-node"

    ALL = (ENDPOINT, ANY_NODE)

    @staticmethod
    def conflicts(rule: str, a: Communication, b: Communication) -> bool:
        """Return True when ``a`` and ``b`` conflict under ``rule``."""
        if rule == ConflictRule.ENDPOINT:
            return a.src == b.src or a.dst == b.dst
        if rule == ConflictRule.ANY_NODE:
            return bool({a.src, a.dst} & {b.src, b.dst})
        raise GraphError(f"unknown conflict rule {rule!r}")


class CommunicationGraph:
    """A directed multigraph of concurrent communications between nodes.

    The graph is the single input of every contention model.  It can be built
    programmatically (:meth:`add`, :meth:`add_edge`), from a compact edge
    list (:meth:`from_edges`) or from the scheme description language
    (:mod:`repro.scheme.language`).
    """

    def __init__(self, communications: Iterable[Communication] = (), name: str = "") -> None:
        self.name = name
        self._comms: Dict[str, Communication] = {}
        # endpoint indices over *inter-node* communications; the inner dicts
        # are used as ordered sets (name -> None) so per-node query results
        # preserve graph insertion order.
        self._by_src: Dict[NodeId, Dict[str, None]] = defaultdict(dict)
        self._by_dst: Dict[NodeId, Dict[str, None]] = defaultdict(dict)
        self._frozen = False
        for comm in communications:
            self.add(comm)

    # ------------------------------------------------------------------ build
    def add(self, comm: Communication) -> Communication:
        """Add a prebuilt :class:`Communication` to the graph."""
        if self._frozen:
            raise GraphError("cannot modify a frozen communication graph")
        if comm.name in self._comms:
            raise GraphError(f"duplicate communication name {comm.name!r}")
        self._comms[comm.name] = comm
        if not comm.is_intra_node:
            self._by_src[comm.src][comm.name] = None
            self._by_dst[comm.dst][comm.name] = None
        return comm

    def remove(self, name: str) -> Communication:
        """Remove (and return) the named communication — the delta API.

        Together with :meth:`add` this lets a caller mutate a live graph one
        flow arrival/departure at a time instead of rebuilding it from
        scratch on every event; :class:`repro.core.incremental.IncrementalPenaltyEngine`
        uses it to keep track of dirty conflict components.
        """
        if self._frozen:
            raise GraphError("cannot modify a frozen communication graph")
        comm = self._comms.pop(name, None)
        if comm is None:
            raise GraphError(f"unknown communication {name!r}")
        if not comm.is_intra_node:
            del self._by_src[comm.src][comm.name]
            if not self._by_src[comm.src]:
                del self._by_src[comm.src]
            del self._by_dst[comm.dst][comm.name]
            if not self._by_dst[comm.dst]:
                del self._by_dst[comm.dst]
        return comm

    def add_edge(
        self,
        src: NodeId,
        dst: NodeId,
        size: int = 20 * MB,
        name: str | None = None,
        task_src: int | None = None,
        task_dst: int | None = None,
    ) -> Communication:
        """Create and add a communication; auto-name it ``a``, ``b``, ... if needed."""
        if name is None:
            name = self._auto_name()
        comm = Communication(name=name, src=src, dst=dst, size=size,
                             task_src=task_src, task_dst=task_dst)
        return self.add(comm)

    def _auto_name(self) -> str:
        index = len(self._comms)
        letters = "abcdefghijklmnopqrstuvwxyz"
        name = ""
        while True:
            name = letters[index % 26] + name
            index = index // 26 - 1
            if index < 0:
                break
        candidate = name
        counter = 1
        while candidate in self._comms:
            candidate = f"{name}{counter}"
            counter += 1
        return candidate

    def freeze(self) -> "CommunicationGraph":
        """Make the graph immutable (idempotent); returns ``self``."""
        self._frozen = True
        return self

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Tuple[NodeId, NodeId]] | Sequence[Tuple[NodeId, NodeId, int]],
        size: int = 20 * MB,
        name: str = "",
        names: Sequence[str] | None = None,
    ) -> "CommunicationGraph":
        """Build a graph from ``(src, dst)`` or ``(src, dst, size)`` tuples.

        >>> g = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        >>> sorted(c.name for c in g)
        ['a', 'b']
        """
        graph = cls(name=name)
        for i, edge in enumerate(edges):
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                sz = size
            elif len(edge) == 3:
                src, dst, sz = edge  # type: ignore[misc]
            else:
                raise GraphError(f"edge {edge!r} must be (src, dst) or (src, dst, size)")
            comm_name = names[i] if names is not None else None
            graph.add_edge(src, dst, size=sz, name=comm_name)
        return graph

    def subgraph(self, names: Iterable[str]) -> "CommunicationGraph":
        """Return the sub-multigraph containing only the named communications."""
        wanted = set(names)
        missing = wanted - set(self._comms)
        if missing:
            raise GraphError(f"unknown communications {sorted(missing)!r}")
        return CommunicationGraph(
            (self._comms[n] for n in self._comms if n in wanted),
            name=self.name,
        )

    def with_sizes(self, size: int) -> "CommunicationGraph":
        """Return a copy of the graph where every message has ``size`` bytes."""
        return CommunicationGraph((c.with_size(size) for c in self), name=self.name)

    # -------------------------------------------------------------- container
    def __len__(self) -> int:
        return len(self._comms)

    def __iter__(self) -> Iterator[Communication]:
        return iter(self._comms.values())

    def __contains__(self, name: object) -> bool:
        return name in self._comms

    def __getitem__(self, name: str) -> Communication:
        try:
            return self._comms[name]
        except KeyError:
            raise GraphError(f"unknown communication {name!r}") from None

    @property
    def communications(self) -> Tuple[Communication, ...]:
        return tuple(self._comms.values())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._comms.keys())

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        seen: Dict[NodeId, None] = {}
        for comm in self:
            seen.setdefault(comm.src)
            seen.setdefault(comm.dst)
        return tuple(seen)

    @property
    def inter_node_communications(self) -> Tuple[Communication, ...]:
        """Communications whose endpoints are on different hosts."""
        return tuple(c for c in self if not c.is_intra_node)

    @property
    def intra_node_communications(self) -> Tuple[Communication, ...]:
        return tuple(c for c in self if c.is_intra_node)

    # ---------------------------------------------------------------- degrees
    def out_degree(self, node: NodeId) -> int:
        """Number of communications leaving ``node`` (``Δo(v)`` in the paper)."""
        return len(self._by_src.get(node, ()))

    def in_degree(self, node: NodeId) -> int:
        """Number of communications entering ``node`` (``Δi(v)`` in the paper)."""
        return len(self._by_dst.get(node, ()))

    def delta_o(self, comm: Communication | str) -> int:
        """``Δo(i)``: out-degree of the source node of communication ``i``."""
        comm = self._resolve(comm)
        return self.out_degree(comm.src)

    def delta_i(self, comm: Communication | str) -> int:
        """``Δi(i)``: in-degree of the destination node of communication ``i``."""
        comm = self._resolve(comm)
        return self.in_degree(comm.dst)

    def _resolve(self, comm: Communication | str) -> Communication:
        if isinstance(comm, str):
            return self[comm]
        if comm.name in self._comms and self._comms[comm.name].endpoints == comm.endpoints:
            return self._comms[comm.name]
        raise GraphError(f"communication {comm!r} does not belong to this graph")

    # --------------------------------------------------------- conflict sets
    def outgoing_set(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``Co``: communications sharing the source node of ``comm`` (including it)."""
        comm = self._resolve(comm)
        return tuple(self._comms[n] for n in self._by_src.get(comm.src, ()))

    def incoming_set(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``Ci``: communications sharing the destination node of ``comm`` (including it)."""
        comm = self._resolve(comm)
        return tuple(self._comms[n] for n in self._by_dst.get(comm.dst, ()))

    def strongly_slowed_outgoing(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``C^m_o`` restricted to the source node of ``comm``.

        Definition 1 of the paper: among the communications leaving the same
        source node, those whose destination in-degree ``Δi`` is maximal are
        *strongly slowed outgoing* communications.
        """
        comm = self._resolve(comm)
        co = self.outgoing_set(comm)
        if not co:
            return ()
        max_delta_i = max(self.delta_i(c) for c in co)
        return tuple(c for c in co if self.delta_i(c) == max_delta_i)

    def strongly_slowed_incoming(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``C^m_i`` restricted to the destination node of ``comm`` (Definition 1)."""
        comm = self._resolve(comm)
        ci = self.incoming_set(comm)
        if not ci:
            return ()
        max_delta_o = max(self.delta_o(c) for c in ci)
        return tuple(c for c in ci if self.delta_o(c) == max_delta_o)

    def is_strongly_slowed_outgoing(self, comm: Communication | str) -> bool:
        comm = self._resolve(comm)
        return any(c.name == comm.name for c in self.strongly_slowed_outgoing(comm))

    def is_strongly_slowed_incoming(self, comm: Communication | str) -> bool:
        comm = self._resolve(comm)
        return any(c.name == comm.name for c in self.strongly_slowed_incoming(comm))

    # --------------------------------------------------------- conflict graph
    def conflict_adjacency(self, rule: str = ConflictRule.ENDPOINT) -> Dict[str, FrozenSet[str]]:
        """Undirected conflict graph between communications.

        Two communications are adjacent when they conflict under ``rule``
        (sharing a source node or a destination node for the Myrinet model).
        Intra-node communications never conflict (they do not use the NIC).
        """
        comms = [c for c in self if not c.is_intra_node]
        adjacency: Dict[str, set] = {c.name: set() for c in comms}
        if rule == ConflictRule.ENDPOINT:
            groups: Iterable[Iterable[str]] = itertools.chain(
                self._by_src.values(), self._by_dst.values()
            )
        elif rule == ConflictRule.ANY_NODE:
            by_node: Dict[NodeId, List[str]] = defaultdict(list)
            for c in comms:
                by_node[c.src].append(c.name)
                by_node[c.dst].append(c.name)
            groups = by_node.values()
        else:
            raise GraphError(f"unknown conflict rule {rule!r}")
        for group in groups:
            for a, b in itertools.combinations(group, 2):
                if a != b:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        return {k: frozenset(v) for k, v in adjacency.items()}

    def conflict_components(self, rule: str = ConflictRule.ENDPOINT) -> List[Tuple[str, ...]]:
        """Connected components of the conflict graph (lists of communication names)."""
        adjacency = self.conflict_adjacency(rule)
        seen: set = set()
        components: List[Tuple[str, ...]] = []
        for start in adjacency:
            if start in seen:
                continue
            stack = [start]
            component: List[str] = []
            seen.add(start)
            while stack:
                current = stack.pop()
                component.append(current)
                for neighbour in adjacency[current]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(tuple(sorted(component)))
        return components

    @staticmethod
    def conflict_resources(comm: Communication, rule: str = ConflictRule.ENDPOINT) -> Tuple[Tuple[str, NodeId], ...]:
        """The endpoint resources ``comm`` occupies under ``rule``.

        Two inter-node communications conflict exactly when they share one of
        these opaque resource keys, so connected components of the conflict
        graph are equivalence classes of resource co-occupancy.  The
        incremental engine uses this to merge/split components on flow
        arrival/departure without rebuilding the adjacency.
        """
        if rule == ConflictRule.ENDPOINT:
            return (("src", comm.src), ("dst", comm.dst))
        if rule == ConflictRule.ANY_NODE:
            return (("node", comm.src), ("node", comm.dst))
        raise GraphError(f"unknown conflict rule {rule!r}")

    # ----------------------------------------------------------- canonical key
    def structural_key(
        self,
        names: Iterable[str] | None = None,
        include_sizes: bool = False,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Canonical, order-independent key of the (sub)graph structure.

        Nodes are relabelled by their rank among the sorted node identifiers
        of the selection and the resulting ``(src_rank, dst_rank[, size])``
        edges are returned sorted, so two selections receive the same key
        whenever the order-preserving relabelling of their node identifiers
        maps one onto the other — regardless of communication names or
        insertion order.  Key equality therefore implies graph isomorphism
        (the converse is not attempted: canonical labelling of arbitrary
        graphs is as hard as isomorphism testing), which makes the key safe
        to memoize structural penalty evaluations on.

        >>> g1 = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        >>> g2 = CommunicationGraph.from_edges([(7, 9), (7, 8)])
        >>> g1.structural_key() == g2.structural_key()
        True
        """
        if include_sizes:
            comms = list(self._comms.values()) if names is None else [self[n] for n in names]
            nodes = sorted({c.src for c in comms} | {c.dst for c in comms})
            rank = {node: i for i, node in enumerate(nodes)}
            return tuple(sorted((rank[c.src], rank[c.dst], c.size) for c in comms))
        key, _ = self.canonical_component(self.names if names is None else names)
        return key

    def canonical_component(
        self, names: Iterable[str]
    ) -> Tuple[Tuple[Tuple[int, int], ...], Dict[str, Tuple[int, int]]]:
        """Canonical key of a selection plus each member's canonical endpoints.

        The second element maps every selected communication to its
        ``(src_rank, dst_rank)`` pair under the same node relabelling the key
        is built from, so a memoized result for an isomorphic selection can
        be transported back onto these communications.  Keeping key and
        per-communication ranks derived from one relabelling in one place is
        what makes the penalty cache sound.
        """
        comms = [self[n] for n in names]
        nodes = sorted({c.src for c in comms} | {c.dst for c in comms})
        rank = {node: i for i, node in enumerate(nodes)}
        endpoint_ranks = {c.name: (rank[c.src], rank[c.dst]) for c in comms}
        key = tuple(sorted(endpoint_ranks.values()))
        return key, endpoint_ranks

    # ------------------------------------------------------------ conversions
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a :class:`networkx.MultiDiGraph` (nodes = hosts, edges = comms)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node)
        for comm in self:
            graph.add_edge(comm.src, comm.dst, key=comm.name, size=comm.size,
                           task_src=comm.task_src, task_dst=comm.task_dst)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.MultiDiGraph, name: str = "") -> "CommunicationGraph":
        """Build from a networkx multi-digraph produced by :meth:`to_networkx`."""
        result = cls(name=name or graph.name or "")
        for src, dst, key, data in graph.edges(keys=True, data=True):
            result.add_edge(src, dst, size=int(data.get("size", 20 * MB)), name=str(key),
                            task_src=data.get("task_src"), task_dst=data.get("task_dst"))
        return result

    def to_edge_list(self) -> List[Tuple[NodeId, NodeId, int]]:
        """Return ``(src, dst, size)`` tuples in insertion order."""
        return [(c.src, c.dst, c.size) for c in self]

    # ------------------------------------------------------------- validation
    def validate(self, allow_intra_node: bool = True) -> None:
        """Raise :class:`GraphError` if the graph violates basic invariants."""
        for comm in self:
            if comm.size < 0:
                raise GraphError(f"negative size on {comm.name!r}")
            if not allow_intra_node and comm.is_intra_node:
                raise GraphError(f"intra-node communication {comm.name!r} not allowed here")

    # -------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationGraph):
            return NotImplemented
        return self.to_edge_list() == other.to_edge_list() and self.names == other.names

    def __hash__(self) -> int:
        return hash((self.names, tuple(self.to_edge_list())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<CommunicationGraph{label} {len(self)} communications on {len(self.nodes)} nodes>"

    def describe(self) -> str:
        """Multi-line human readable description (used by examples and reports)."""
        lines = [f"CommunicationGraph {self.name or '(unnamed)'}"]
        for comm in self:
            lines.append(
                f"  {comm.name}: node {comm.src} -> node {comm.dst}"
                f"  size={comm.size} B  Δo={self.delta_o(comm)} Δi={self.delta_i(comm)}"
            )
        return "\n".join(lines)
