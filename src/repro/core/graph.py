"""Communication graphs.

The contention models of the paper reason about a *communication graph*: a
directed multigraph whose vertices are **cluster nodes** (hosts, not MPI
ranks) and whose arcs are the point-to-point communications that are in
flight during a given interval of time.

This module provides :class:`Communication` (one arc) and
:class:`CommunicationGraph` (the multigraph) together with every structural
quantity the models need:

* out-degree ``Δo(v)`` and in-degree ``Δi(v)`` of a node,
* the per-communication degrees ``Δo(i) = Δo(src)`` and ``Δi(i) = Δi(dst)``,
* the sets ``Co`` (same source) and ``Ci`` (same destination),
* the *strongly slowed* sets ``C^m_o`` / ``C^m_i`` of Definition 1 (§V.A),
* the Myrinet conflict graph (communications sharing a source node or a
  destination node) and its connected components.

Graphs are hashable snapshots of a contention situation and are therefore
kept immutable after :meth:`CommunicationGraph.freeze` (the models freeze
them defensively).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

import networkx as nx

from ..exceptions import GraphError
from ..units import MB

__all__ = ["Communication", "CommunicationGraph", "ConflictRule"]


NodeId = int


@dataclass(frozen=True)
class Communication:
    """A single point-to-point communication between two cluster nodes.

    Parameters
    ----------
    name:
        Unique label of the communication inside its graph (the paper labels
        them ``a``, ``b``, ``c``...).
    src, dst:
        Identifiers of the source and destination *nodes* (hosts).
    size:
        Message length in bytes as specified to ``MPI_Send`` (the effective
        wire length includes a small envelope, handled by
        :mod:`repro.mpi.message`).
    task_src, task_dst:
        Optional MPI rank identifiers, kept for reporting purposes when the
        graph is derived from an application trace.
    """

    name: str
    src: NodeId
    dst: NodeId
    size: int = 20 * MB
    task_src: int | None = None
    task_dst: int | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise GraphError(f"communication {self.name!r} has negative size {self.size}")

    @property
    def is_intra_node(self) -> bool:
        """True when source and destination are the same host."""
        return self.src == self.dst

    @property
    def endpoints(self) -> Tuple[NodeId, NodeId]:
        return (self.src, self.dst)

    def with_size(self, size: int) -> "Communication":
        """Return a copy with a different message size."""
        return replace(self, size=size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.src}->{self.dst} ({self.size} B)"


class ConflictRule:
    """Rules deciding when two communications conflict.

    ``ENDPOINT`` is the rule of the Myrinet model (§V.B): a sending
    communication forces into the *wait* state every communication that has
    the same source node **or** the same destination node.  ``ANY_NODE`` is a
    stricter alternative (sharing any endpoint) kept for ablation studies.
    """

    ENDPOINT = "endpoint"
    ANY_NODE = "any-node"

    ALL = (ENDPOINT, ANY_NODE)

    @staticmethod
    def conflicts(rule: str, a: Communication, b: Communication) -> bool:
        """Return True when ``a`` and ``b`` conflict under ``rule``."""
        if rule == ConflictRule.ENDPOINT:
            return a.src == b.src or a.dst == b.dst
        if rule == ConflictRule.ANY_NODE:
            return bool({a.src, a.dst} & {b.src, b.dst})
        raise GraphError(f"unknown conflict rule {rule!r}")


class CommunicationGraph:
    """A directed multigraph of concurrent communications between nodes.

    The graph is the single input of every contention model.  It can be built
    programmatically (:meth:`add`, :meth:`add_edge`), from a compact edge
    list (:meth:`from_edges`) or from the scheme description language
    (:mod:`repro.scheme.language`).
    """

    def __init__(self, communications: Iterable[Communication] = (), name: str = "") -> None:
        self.name = name
        self._comms: Dict[str, Communication] = {}
        self._frozen = False
        for comm in communications:
            self.add(comm)

    # ------------------------------------------------------------------ build
    def add(self, comm: Communication) -> Communication:
        """Add a prebuilt :class:`Communication` to the graph."""
        if self._frozen:
            raise GraphError("cannot modify a frozen communication graph")
        if comm.name in self._comms:
            raise GraphError(f"duplicate communication name {comm.name!r}")
        self._comms[comm.name] = comm
        return comm

    def add_edge(
        self,
        src: NodeId,
        dst: NodeId,
        size: int = 20 * MB,
        name: str | None = None,
        task_src: int | None = None,
        task_dst: int | None = None,
    ) -> Communication:
        """Create and add a communication; auto-name it ``a``, ``b``, ... if needed."""
        if name is None:
            name = self._auto_name()
        comm = Communication(name=name, src=src, dst=dst, size=size,
                             task_src=task_src, task_dst=task_dst)
        return self.add(comm)

    def _auto_name(self) -> str:
        index = len(self._comms)
        letters = "abcdefghijklmnopqrstuvwxyz"
        name = ""
        while True:
            name = letters[index % 26] + name
            index = index // 26 - 1
            if index < 0:
                break
        candidate = name
        counter = 1
        while candidate in self._comms:
            candidate = f"{name}{counter}"
            counter += 1
        return candidate

    def freeze(self) -> "CommunicationGraph":
        """Make the graph immutable (idempotent); returns ``self``."""
        self._frozen = True
        return self

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[Tuple[NodeId, NodeId]] | Sequence[Tuple[NodeId, NodeId, int]],
        size: int = 20 * MB,
        name: str = "",
        names: Sequence[str] | None = None,
    ) -> "CommunicationGraph":
        """Build a graph from ``(src, dst)`` or ``(src, dst, size)`` tuples.

        >>> g = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        >>> sorted(c.name for c in g)
        ['a', 'b']
        """
        graph = cls(name=name)
        for i, edge in enumerate(edges):
            if len(edge) == 2:
                src, dst = edge  # type: ignore[misc]
                sz = size
            elif len(edge) == 3:
                src, dst, sz = edge  # type: ignore[misc]
            else:
                raise GraphError(f"edge {edge!r} must be (src, dst) or (src, dst, size)")
            comm_name = names[i] if names is not None else None
            graph.add_edge(src, dst, size=sz, name=comm_name)
        return graph

    def subgraph(self, names: Iterable[str]) -> "CommunicationGraph":
        """Return the sub-multigraph containing only the named communications."""
        wanted = set(names)
        missing = wanted - set(self._comms)
        if missing:
            raise GraphError(f"unknown communications {sorted(missing)!r}")
        return CommunicationGraph(
            (self._comms[n] for n in self._comms if n in wanted),
            name=self.name,
        )

    def with_sizes(self, size: int) -> "CommunicationGraph":
        """Return a copy of the graph where every message has ``size`` bytes."""
        return CommunicationGraph((c.with_size(size) for c in self), name=self.name)

    # -------------------------------------------------------------- container
    def __len__(self) -> int:
        return len(self._comms)

    def __iter__(self) -> Iterator[Communication]:
        return iter(self._comms.values())

    def __contains__(self, name: object) -> bool:
        return name in self._comms

    def __getitem__(self, name: str) -> Communication:
        try:
            return self._comms[name]
        except KeyError:
            raise GraphError(f"unknown communication {name!r}") from None

    @property
    def communications(self) -> Tuple[Communication, ...]:
        return tuple(self._comms.values())

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._comms.keys())

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        seen: Dict[NodeId, None] = {}
        for comm in self:
            seen.setdefault(comm.src)
            seen.setdefault(comm.dst)
        return tuple(seen)

    @property
    def inter_node_communications(self) -> Tuple[Communication, ...]:
        """Communications whose endpoints are on different hosts."""
        return tuple(c for c in self if not c.is_intra_node)

    @property
    def intra_node_communications(self) -> Tuple[Communication, ...]:
        return tuple(c for c in self if c.is_intra_node)

    # ---------------------------------------------------------------- degrees
    def out_degree(self, node: NodeId) -> int:
        """Number of communications leaving ``node`` (``Δo(v)`` in the paper)."""
        return sum(1 for c in self if c.src == node and not c.is_intra_node)

    def in_degree(self, node: NodeId) -> int:
        """Number of communications entering ``node`` (``Δi(v)`` in the paper)."""
        return sum(1 for c in self if c.dst == node and not c.is_intra_node)

    def delta_o(self, comm: Communication | str) -> int:
        """``Δo(i)``: out-degree of the source node of communication ``i``."""
        comm = self._resolve(comm)
        return self.out_degree(comm.src)

    def delta_i(self, comm: Communication | str) -> int:
        """``Δi(i)``: in-degree of the destination node of communication ``i``."""
        comm = self._resolve(comm)
        return self.in_degree(comm.dst)

    def _resolve(self, comm: Communication | str) -> Communication:
        if isinstance(comm, str):
            return self[comm]
        if comm.name in self._comms and self._comms[comm.name].endpoints == comm.endpoints:
            return self._comms[comm.name]
        raise GraphError(f"communication {comm!r} does not belong to this graph")

    # --------------------------------------------------------- conflict sets
    def outgoing_set(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``Co``: communications sharing the source node of ``comm`` (including it)."""
        comm = self._resolve(comm)
        return tuple(c for c in self if c.src == comm.src and not c.is_intra_node)

    def incoming_set(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``Ci``: communications sharing the destination node of ``comm`` (including it)."""
        comm = self._resolve(comm)
        return tuple(c for c in self if c.dst == comm.dst and not c.is_intra_node)

    def strongly_slowed_outgoing(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``C^m_o`` restricted to the source node of ``comm``.

        Definition 1 of the paper: among the communications leaving the same
        source node, those whose destination in-degree ``Δi`` is maximal are
        *strongly slowed outgoing* communications.
        """
        comm = self._resolve(comm)
        co = self.outgoing_set(comm)
        if not co:
            return ()
        max_delta_i = max(self.delta_i(c) for c in co)
        return tuple(c for c in co if self.delta_i(c) == max_delta_i)

    def strongly_slowed_incoming(self, comm: Communication | str) -> Tuple[Communication, ...]:
        """``C^m_i`` restricted to the destination node of ``comm`` (Definition 1)."""
        comm = self._resolve(comm)
        ci = self.incoming_set(comm)
        if not ci:
            return ()
        max_delta_o = max(self.delta_o(c) for c in ci)
        return tuple(c for c in ci if self.delta_o(c) == max_delta_o)

    def is_strongly_slowed_outgoing(self, comm: Communication | str) -> bool:
        comm = self._resolve(comm)
        return any(c.name == comm.name for c in self.strongly_slowed_outgoing(comm))

    def is_strongly_slowed_incoming(self, comm: Communication | str) -> bool:
        comm = self._resolve(comm)
        return any(c.name == comm.name for c in self.strongly_slowed_incoming(comm))

    # --------------------------------------------------------- conflict graph
    def conflict_adjacency(self, rule: str = ConflictRule.ENDPOINT) -> Dict[str, FrozenSet[str]]:
        """Undirected conflict graph between communications.

        Two communications are adjacent when they conflict under ``rule``
        (sharing a source node or a destination node for the Myrinet model).
        Intra-node communications never conflict (they do not use the NIC).
        """
        comms = [c for c in self if not c.is_intra_node]
        adjacency: Dict[str, set] = {c.name: set() for c in comms}
        by_src: Dict[NodeId, List[str]] = defaultdict(list)
        by_dst: Dict[NodeId, List[str]] = defaultdict(list)
        by_node: Dict[NodeId, List[str]] = defaultdict(list)
        for c in comms:
            by_src[c.src].append(c.name)
            by_dst[c.dst].append(c.name)
            by_node[c.src].append(c.name)
            by_node[c.dst].append(c.name)
        if rule == ConflictRule.ENDPOINT:
            groups: Iterable[List[str]] = itertools.chain(by_src.values(), by_dst.values())
        elif rule == ConflictRule.ANY_NODE:
            groups = by_node.values()
        else:
            raise GraphError(f"unknown conflict rule {rule!r}")
        for group in groups:
            for a, b in itertools.combinations(group, 2):
                if a != b:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        return {k: frozenset(v) for k, v in adjacency.items()}

    def conflict_components(self, rule: str = ConflictRule.ENDPOINT) -> List[Tuple[str, ...]]:
        """Connected components of the conflict graph (lists of communication names)."""
        adjacency = self.conflict_adjacency(rule)
        seen: set = set()
        components: List[Tuple[str, ...]] = []
        for start in adjacency:
            if start in seen:
                continue
            stack = [start]
            component: List[str] = []
            seen.add(start)
            while stack:
                current = stack.pop()
                component.append(current)
                for neighbour in adjacency[current]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            components.append(tuple(sorted(component)))
        return components

    # ------------------------------------------------------------ conversions
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a :class:`networkx.MultiDiGraph` (nodes = hosts, edges = comms)."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node)
        for comm in self:
            graph.add_edge(comm.src, comm.dst, key=comm.name, size=comm.size,
                           task_src=comm.task_src, task_dst=comm.task_dst)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.MultiDiGraph, name: str = "") -> "CommunicationGraph":
        """Build from a networkx multi-digraph produced by :meth:`to_networkx`."""
        result = cls(name=name or graph.name or "")
        for src, dst, key, data in graph.edges(keys=True, data=True):
            result.add_edge(src, dst, size=int(data.get("size", 20 * MB)), name=str(key),
                            task_src=data.get("task_src"), task_dst=data.get("task_dst"))
        return result

    def to_edge_list(self) -> List[Tuple[NodeId, NodeId, int]]:
        """Return ``(src, dst, size)`` tuples in insertion order."""
        return [(c.src, c.dst, c.size) for c in self]

    # ------------------------------------------------------------- validation
    def validate(self, allow_intra_node: bool = True) -> None:
        """Raise :class:`GraphError` if the graph violates basic invariants."""
        for comm in self:
            if comm.size < 0:
                raise GraphError(f"negative size on {comm.name!r}")
            if not allow_intra_node and comm.is_intra_node:
                raise GraphError(f"intra-node communication {comm.name!r} not allowed here")

    # -------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationGraph):
            return NotImplemented
        return self.to_edge_list() == other.to_edge_list() and self.names == other.names

    def __hash__(self) -> int:
        return hash((self.names, tuple(self.to_edge_list())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<CommunicationGraph{label} {len(self)} communications on {len(self.nodes)} nodes>"

    def describe(self) -> str:
        """Multi-line human readable description (used by examples and reports)."""
        lines = [f"CommunicationGraph {self.name or '(unnamed)'}"]
        for comm in self:
            lines.append(
                f"  {comm.name}: node {comm.src} -> node {comm.dst}"
                f"  size={comm.size} B  Δo={self.delta_o(comm)} Δi={self.delta_i(comm)}"
            )
        return "\n".join(lines)
