"""Incremental contention engine.

The fluid simulators re-price the set of in-flight communications on *every*
flow arrival and departure.  Rebuilding a :class:`CommunicationGraph` and
re-evaluating the full contention model each time makes large scenarios
O(events × flows) in model evaluations, even though a single event only
changes the penalties of one conflict component.  This module provides the
machinery that makes re-pricing proportional to what actually changed:

* :class:`IncrementalPenaltyEngine` maintains a live communication graph
  through the :meth:`~repro.core.graph.CommunicationGraph.add` /
  :meth:`~repro.core.graph.CommunicationGraph.remove` delta API, tracks the
  partition of inter-node communications into conflict components under the
  model's :attr:`~repro.core.penalty.ContentionModel.component_rule`, and
  re-evaluates **only the dirty components** (the merged component on an
  arrival, the split remnants on a departure) through
  :meth:`~repro.core.penalty.ContentionModel.component_penalties`;
* :class:`PenaltyCache` memoizes component evaluations keyed by the
  canonical component snapshot
  (:meth:`~repro.core.graph.CommunicationGraph.structural_key`), so the
  repeated contention situations of iterative workloads (LINPACK panels,
  collectives) are cache hits that cost no model evaluation at all;
* :class:`EngineStats` counts events, component/communication evaluations
  and cache traffic, which is how ``benchmarks/bench_scale_engine.py``
  demonstrates the speedup.

Exactness: for a model that is component-local under its declared rule,
evaluating a component's subgraph performs the *same* arithmetic on the
*same* values as evaluating the whole graph, and a cache hit replays the
result of an isomorphic component — the penalties are bit-identical to a
full recomputation (property-tested in
``tests/property/test_incremental_properties.py``).

Batched pricing: with ``vectorized=True`` (the default) the engine gathers
every dirty component that missed the cache and prices the whole set in one
:meth:`~repro.core.penalty.ContentionModel.penalties_batch` call — the
analytic models compute the λ/γ degree counts and penalties of all
selections as numpy array operations instead of a Python loop per
communication.  The batch path replicates the scalar arithmetic operation
for operation (int degree counts convert to float64 exactly, and the
association order of every product matches the scalar expressions), so the
penalties are **bit-identical** to ``vectorized=False``;
``tests/property/test_vectorized_pricing.py`` cross-checks the two paths
over random delta sequences on every shipped model.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from time import perf_counter
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .._numpy import np
from ..exceptions import GraphError
from .graph import Communication, CommunicationGraph
from .penalty import ContentionModel, LinearCostModel, PenaltyPrediction

__all__ = [
    "EngineStats",
    "PenaltyCache",
    "IncrementalPenaltyEngine",
    "cached_penalties",
    "cached_predict",
]


@dataclass
class EngineStats:
    """Counters describing how much work the incremental engine performed."""

    #: flow arrivals + departures applied to the live graph
    events: int = 0
    #: calls into the model (one per dirty component that missed the cache)
    component_evaluations: int = 0
    #: per-communication model evaluations actually performed (the unit the
    #: benchmark compares against the O(events × flows) full-recompute path)
    comm_evaluations: int = 0
    #: dirty components re-priced from a memoized isomorphic snapshot
    cache_hits: int = 0
    cache_misses: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "events": self.events,
            "component_evaluations": self.component_evaluations,
            "comm_evaluations": self.comm_evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


class PenaltyCache:
    """LRU memo of component penalty evaluations.

    Keys pair the model identity (:meth:`ContentionModel.memo_key`, so a
    cache shared across engines never leaks penalties between different
    models or parameterizations) with a canonical component snapshot
    (:meth:`CommunicationGraph.canonical_component`); values map the canonical
    ``(src_rank, dst_rank)`` endpoint pair of each communication to its
    penalty.  Communications of a component that share both endpoints are
    automorphic, hence share a penalty, so the endpoint pair identifies the
    penalty unambiguously; :meth:`store` verifies this and refuses to cache a
    component for which a model violates it.

    The cache is thread-safe: the campaign runner shares one instance across
    a pool of scenario workers, and the simulator providers of those workers
    hit it concurrently.

    Telemetry: every entry carries a hit count, and the cache totals its
    lookups, hits, misses and evictions.  :meth:`stats` summarises them so a
    campaign can size ``max_entries`` from observed traffic — a large
    ``evictions`` count with many ``evicted_entry_hits`` means the LRU bound
    is discarding situations that were still earning hits, while a large
    ``entries_never_hit`` share means the cache is over-provisioned.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 0:
            raise GraphError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Dict[Tuple[int, int], float]]" = OrderedDict()
        self._lock = threading.RLock()
        self._entry_hits: Dict[Hashable, int] = {}
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: hits that had been earned by entries the LRU bound later discarded
        self.evicted_entry_hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Dict[Tuple[int, int], float]]:
        with self._lock:
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entry_hits[key] = self._entry_hits.get(key, 0) + 1
                self._entries.move_to_end(key)
            else:
                self.misses += 1
            return entry

    def store(
        self,
        key: Hashable,
        endpoint_ranks: Dict[str, Tuple[int, int]],
        penalties: Dict[str, float],
    ) -> None:
        """Memoize one component evaluation; silently skip unsound entries."""
        if self.max_entries == 0:
            return
        mapping: Dict[Tuple[int, int], float] = {}
        for name, pair in endpoint_ranks.items():
            penalty = penalties[name]
            if pair in mapping and mapping[pair] != penalty:
                return  # model broke endpoint symmetry: not memoizable
            mapping[pair] = penalty
        self.put(key, mapping)

    def put(self, key: Hashable, mapping: Dict[Tuple[int, int], float]) -> None:
        """Insert an already-validated ``(src_rank, dst_rank) -> penalty`` entry.

        Used by the persistence layer and by the campaign runner to merge
        entries computed by worker processes; :meth:`store` remains the
        validating path for fresh model evaluations.
        """
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = mapping
            self._entries.move_to_end(key)
            self._entry_hits.setdefault(key, 0)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self.evictions += 1
                self.evicted_entry_hits += self._entry_hits.pop(evicted, 0)

    def items(self) -> List[Tuple[Hashable, Dict[Tuple[int, int], float]]]:
        """Snapshot of every entry in LRU order (oldest first)."""
        with self._lock:
            return [(key, dict(mapping)) for key, mapping in self._entries.items()]

    def entry_hits(self) -> List[Tuple[Hashable, int]]:
        """Per-entry hit counts in LRU order (oldest first)."""
        with self._lock:
            return [(key, self._entry_hits.get(key, 0)) for key in self._entries]

    def stats(self) -> Dict[str, float]:
        """Summary of cache traffic and the per-entry hit distribution."""
        with self._lock:
            counts = [self._entry_hits.get(key, 0) for key in self._entries]
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / self.lookups if self.lookups else 0.0,
                "evictions": self.evictions,
                "evicted_entry_hits": self.evicted_entry_hits,
                "live_entry_hits": sum(counts),
                "entries_never_hit": sum(1 for c in counts if c == 0),
                "max_entry_hits": max(counts, default=0),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._entry_hits.clear()


class IncrementalPenaltyEngine:
    """Maintain model penalties of a changing set of communications.

    Parameters
    ----------
    model:
        The contention model to evaluate.  Its
        :attr:`~repro.core.penalty.ContentionModel.component_rule` decides
        the component partition; ``None`` degrades gracefully to whole-graph
        re-evaluation on every change (still benefiting from the memo cache
        when the model declares ``structural_penalties``).
    cache:
        Shared :class:`PenaltyCache`; pass the same instance to several
        engines to share memoized situations across simulations.  ``None``
        creates a private cache when the model is structural, and disables
        memoization otherwise.
    map_fn:
        Optional ``map``-compatible callable (e.g. the ``map`` method of a
        :class:`concurrent.futures.Executor`).  When set, the cache-miss
        component evaluations of one :meth:`penalties` call are fanned out
        through it — dirty conflict components are independent by
        construction, so the results are identical to serial evaluation.
        Two isomorphic components dirtied in the same batch are then both
        evaluated (serially the second is a cache hit), so the work counters
        may differ from the serial ones even though the penalties are
        bit-exact.
    vectorized:
        When True (default), cache-miss components of one refresh are priced
        in a single :meth:`~repro.core.penalty.ContentionModel.penalties_batch`
        call (numpy array operations on the analytic models); ``False``
        forces the scalar per-component path.  Both are bit-exact.
    """

    def __init__(
        self,
        model: ContentionModel,
        cache: Optional[PenaltyCache] = None,
        name: str = "in-flight",
        map_fn: Optional[Callable] = None,
        vectorized: bool = True,
    ) -> None:
        self.model = model
        self.map_fn = map_fn
        self.vectorized = bool(vectorized)
        self.rule = model.component_rule
        if cache is None and model.structural_penalties:
            cache = PenaltyCache()
        self.cache = cache if model.structural_penalties else None
        # a cache may be shared between engines wrapping *different* models
        # (or differently parameterized ones): namespace every entry
        self._model_key = model.memo_key()
        self.graph = CommunicationGraph(name=name)
        self.stats = EngineStats()
        self._comp_of: Dict[str, int] = {}
        self._members: Dict[int, Set[str]] = {}
        self._by_resource: Dict[Hashable, Set[str]] = {}
        self._dirty: Set[int] = set()
        self._penalties: Dict[str, float] = {}
        self._comp_ids = itertools.count()
        #: intra-node arrivals since the last refresh (priced 1.0 on add, but
        #: still "re-priced" as far as the delta contract is concerned)
        self._fresh_intra: Set[str] = set()
        #: opaque caller handles stored at add() time, returned alongside the
        #: re-priced set by refresh_handles() — the slot-tier rate providers
        #: stash (tid, slot, is_intra) here so no per-flush hash gather is
        #: needed to translate names back into calendar slots
        self._handles: Dict[str, object] = {}
        #: repro.obs phase timer around dirty-component pricing; installed by
        #: set_metrics(), one pointer test per refresh when absent
        self._pricing_timer = None

    def set_metrics(self, registry) -> None:
        """Install the ``pricing.dirty_s`` phase timer from a metrics registry.

        Observability hook of the :mod:`repro.obs` layer: every dirty-set
        evaluation (whatever dispatch path it takes — scalar, batched or
        parallel) is timed.  Pass ``None`` to uninstall.
        """
        self._pricing_timer = (registry.timer("pricing.dirty_s")
                               if registry is not None else None)

    # ---------------------------------------------------------------- helpers
    def _resources(self, comm: Communication) -> Tuple[Hashable, ...]:
        if self.rule is None:
            # no locality promise: every inter-node communication shares one
            # global resource, i.e. the whole graph is a single component
            return (("all",),)
        return CommunicationGraph.conflict_resources(comm, self.rule)

    def _new_component(self, members: Set[str]) -> int:
        comp_id = next(self._comp_ids)
        self._members[comp_id] = members
        for member in members:
            self._comp_of[member] = comp_id
        self._dirty.add(comp_id)
        return comp_id

    def _drop_component(self, comp_id: int) -> Set[str]:
        self._dirty.discard(comp_id)
        return self._members.pop(comp_id)

    # ------------------------------------------------------------------ delta
    def add(self, comm: Communication, handle: object = None) -> None:
        """Apply one flow arrival.

        ``handle`` is an opaque caller token stored under ``comm.name`` and
        handed back by :meth:`refresh_handles` whenever the flow is
        re-priced (slot-tier providers pass ``(tid, slot, is_intra)``).
        """
        self.graph.add(comm)
        self.stats.events += 1
        if handle is not None:
            self._handles[comm.name] = handle
        if comm.is_intra_node:
            # per the ContentionModel.penalties contract, intra-node
            # communications are always penalty 1.0 (they never use the NIC)
            self._penalties[comm.name] = 1.0
            self._fresh_intra.add(comm.name)
            return
        merged: Set[str] = {comm.name}
        touched: Set[int] = set()
        for resource in self._resources(comm):
            occupants = self._by_resource.setdefault(resource, set())
            touched.update(self._comp_of[n] for n in occupants)
            occupants.add(comm.name)
        for comp_id in touched:
            merged |= self._drop_component(comp_id)
        self._new_component(merged)

    def remove(self, name: str) -> None:
        """Apply one flow departure."""
        comm = self.graph.remove(name)
        self.stats.events += 1
        self._penalties.pop(name, None)
        self._handles.pop(name, None)
        if comm.is_intra_node:
            self._fresh_intra.discard(name)
            return
        for resource in self._resources(comm):
            occupants = self._by_resource[resource]
            occupants.discard(name)
            if not occupants:
                del self._by_resource[resource]
        comp_id = self._comp_of.pop(name)
        remnants = self._drop_component(comp_id)
        remnants.discard(name)
        if not remnants:
            return
        # the departed flow may have been the only bridge: re-partition the
        # remnants locally (never the rest of the graph)
        unvisited = set(remnants)
        while unvisited:
            seed_name = unvisited.pop()
            component = {seed_name}
            frontier = [seed_name]
            while frontier:
                current = self.graph[frontier.pop()]
                for resource in self._resources(current):
                    for neighbour in self._by_resource.get(resource, ()):
                        if neighbour in unvisited:
                            unvisited.discard(neighbour)
                            component.add(neighbour)
                            frontier.append(neighbour)
            self._new_component(component)

    def update(self, comms: Iterable[Communication]) -> Dict[str, float]:
        """Diff the live graph against ``comms`` and return fresh penalties.

        Convenience for callers holding the *current* set rather than a
        stream of deltas (the rate-provider protocol hands the full active
        list to every call).  A communication whose name is already tracked
        but whose endpoints or size changed is treated as departure +
        arrival.
        """
        wanted = {c.name: c for c in comms}
        for name in [n for n in self.graph.names if n not in wanted]:
            self.remove(name)
        for name, comm in wanted.items():
            if name in self.graph:
                existing = self.graph[name]
                if existing.endpoints == comm.endpoints and existing.size == comm.size:
                    continue
                self.remove(name)
            self.add(comm)
        return self.penalties()

    # -------------------------------------------------------------- interface
    def penalties(self) -> Dict[str, float]:
        """Current penalty of every tracked communication (≥ 1).

        Re-evaluates only the components dirtied since the last call.
        """
        self._price_dirty()
        self._fresh_intra.clear()
        return dict(self._penalties)

    def refresh(self) -> Dict[str, float]:
        """Price the dirty components and return **only** the re-priced penalties.

        The delta counterpart of :meth:`penalties`: the returned mapping
        covers exactly the communications whose penalty may have changed
        since the previous refresh — the members of every component dirtied
        by :meth:`add`/:meth:`remove` (arrivals, departures, and the
        neighbours they merged with or split from), plus intra-node arrivals
        (always re-priced to 1.0).  Communications of untouched components
        keep their stored penalty and are *not* returned, which is what lets
        a rate provider report "what changed" to the execution engine's
        event calendar without touching the rest of the active set.
        """
        repriced: Set[str] = set(self._fresh_intra)
        for comp_id in self._dirty:
            repriced.update(self._members[comp_id])
        self._price_dirty()
        self._fresh_intra.clear()
        return {name: self._penalties[name] for name in repriced}

    def refresh_arrays(self) -> Tuple[List[str], "np.ndarray"]:
        """:meth:`refresh` with an array payload: ``(names, penalties)``.

        The changed-set handoff of the batched rate path: the same re-priced
        set, in the same iteration order as the dict :meth:`refresh` builds
        (downstream batching relies on that order for bit-exact seq
        assignment), as a name list plus a float64 penalty array — no
        intermediate dict.
        """
        repriced: Set[str] = set(self._fresh_intra)
        for comp_id in self._dirty:
            repriced.update(self._members[comp_id])
        self._price_dirty()
        self._fresh_intra.clear()
        names = list(repriced)
        penalties = self._penalties
        values = np.fromiter((penalties[name] for name in names),
                             dtype=np.float64, count=len(names))
        return names, values

    def refresh_handles(self) -> Tuple[List[object], "np.ndarray"]:
        """:meth:`refresh_arrays` keyed by stored handles: ``(handles, penalties)``.

        Same re-priced set, same iteration order, but the name list is
        replaced by the opaque handles registered at :meth:`add` time — the
        slot-tier handoff, where the caller already encoded everything it
        needs (tid, slot, intra flag) in the handle and no name→tid→slot
        hash gathers happen per flush.  Every member of the re-priced set
        must have been added with a handle.
        """
        repriced: Set[str] = set(self._fresh_intra)
        for comp_id in self._dirty:
            repriced.update(self._members[comp_id])
        self._price_dirty()
        self._fresh_intra.clear()
        names = list(repriced)
        handles_of = self._handles
        handles = [handles_of[name] for name in names]
        penalties = self._penalties
        values = np.fromiter((penalties[name] for name in names),
                             dtype=np.float64, count=len(names))
        return handles, values

    def _price_dirty(self) -> None:
        """Evaluate every dirty component (through the cache) and clear the set."""
        timer = self._pricing_timer
        if timer is None:
            return self._price_dirty_impl()
        start = perf_counter()
        try:
            return self._price_dirty_impl()
        finally:
            timer.observe(perf_counter() - start)

    def _price_dirty_impl(self) -> None:
        if self.map_fn is not None and self.rule is not None:
            self._price_dirty_parallel()
            return
        if self.vectorized:
            self._price_dirty_batched()
            return
        for comp_id in sorted(self._dirty):
            names = sorted(self._members[comp_id])
            if self.cache is not None:
                component_key, endpoint_ranks = self.graph.canonical_component(names)
                key = (self._model_key, component_key)
                cached = self.cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    for name in names:
                        self._penalties[name] = cached[endpoint_ranks[name]]
                    continue
                self.stats.cache_misses += 1
                evaluated = self.model.component_penalties(self.graph, names)
                self.stats.component_evaluations += 1
                self.stats.comm_evaluations += len(names)
                self.cache.store(key, endpoint_ranks, evaluated)
            else:
                evaluated = self.model.component_penalties(self.graph, names)
                self.stats.component_evaluations += 1
                self.stats.comm_evaluations += len(names)
            for name in names:
                self._penalties[name] = evaluated[name]
        self._dirty.clear()

    def _price_dirty_batched(self) -> None:
        """Vectorized :meth:`_price_dirty`: every cache miss in one batch call.

        Like the ``map_fn`` parallel path, two isomorphic components dirtied
        in the same refresh are both evaluated (serially the second is a
        cache hit), so the work counters may differ from the serial ones
        even though the penalties are bit-exact.
        """
        pending: List[Tuple[List[str], Optional[Hashable], Optional[Dict[str, Tuple[int, int]]]]] = []
        for comp_id in sorted(self._dirty):
            names = sorted(self._members[comp_id])
            if self.cache is not None:
                component_key, endpoint_ranks = self.graph.canonical_component(names)
                key = (self._model_key, component_key)
                cached = self.cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    for name in names:
                        self._penalties[name] = cached[endpoint_ranks[name]]
                    continue
                self.stats.cache_misses += 1
                pending.append((names, key, endpoint_ranks))
            else:
                pending.append((names, None, None))
        if pending:
            evaluations = self.model.penalties_batch(
                self.graph, [names for names, _, _ in pending]
            )
            for (names, key, endpoint_ranks), evaluated in zip(pending, evaluations):
                self.stats.component_evaluations += 1
                self.stats.comm_evaluations += len(names)
                if key is not None and self.cache is not None:
                    self.cache.store(key, endpoint_ranks, evaluated)
                for name in names:
                    self._penalties[name] = evaluated[name]
        self._dirty.clear()

    def _price_dirty_parallel(self) -> None:
        """Batch variant of :meth:`_price_dirty` that fans misses out via ``map_fn``."""
        hits: List[Tuple[List[str], Dict[Tuple[int, int], float], Dict[str, Tuple[int, int]]]] = []
        pending: List[Tuple[List[str], Optional[Hashable], Optional[Dict[str, Tuple[int, int]]]]] = []
        for comp_id in sorted(self._dirty):
            names = sorted(self._members[comp_id])
            if self.cache is not None:
                component_key, endpoint_ranks = self.graph.canonical_component(names)
                key = (self._model_key, component_key)
                cached = self.cache.get(key)
                if cached is not None:
                    hits.append((names, cached, endpoint_ranks))
                    continue
                pending.append((names, key, endpoint_ranks))
            else:
                pending.append((names, None, None))
        if len(pending) > 1:
            jobs = [
                (self.model, self.graph.subgraph(names), tuple(names), self.vectorized)
                for names, _, _ in pending
            ]
            evaluations = list(self.map_fn(_evaluate_component, jobs))
        elif self.vectorized:  # nothing to parallelize: skip the pool round-trip
            evaluations = self.model.penalties_batch(
                self.graph, [names for names, _, _ in pending]
            )
        else:
            evaluations = [
                self.model.component_penalties(self.graph, names)
                for names, _, _ in pending
            ]
        # commit phase — no engine state (stats, cache, dirty set) was touched
        # above, so a pool failure leaves a clean retry
        for names, cached, endpoint_ranks in hits:
            self.stats.cache_hits += 1
            for name in names:
                self._penalties[name] = cached[endpoint_ranks[name]]
        for (names, key, endpoint_ranks), evaluated in zip(pending, evaluations):
            self.stats.component_evaluations += 1
            self.stats.comm_evaluations += len(names)
            if key is not None and self.cache is not None:
                self.stats.cache_misses += 1
                self.cache.store(key, endpoint_ranks, evaluated)
            for name in names:
                self._penalties[name] = evaluated[name]
        self._dirty.clear()

    # ------------------------------------------------------------------ misc
    @property
    def components(self) -> List[Tuple[str, ...]]:
        """Current component partition (sorted tuples, for inspection/tests)."""
        return sorted(tuple(sorted(m)) for m in self._members.values())

    def reset(self) -> None:
        """Forget every tracked communication (the memo cache survives)."""
        self.graph = CommunicationGraph(name=self.graph.name)
        self._comp_of.clear()
        self._members.clear()
        self._by_resource.clear()
        self._dirty.clear()
        self._penalties.clear()
        self._fresh_intra.clear()
        self._handles.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IncrementalPenaltyEngine model={self.model.name!r} "
            f"comms={len(self.graph)} components={len(self._members)}>"
        )


def _evaluate_component(job: Tuple) -> Dict[str, float]:
    """Evaluate one conflict component (module-level so process pools can pickle it).

    ``job`` is ``(model, component_subgraph, names[, vectorized])``; for a
    component-local model, pricing the component's subgraph is exactly
    equivalent to pricing it inside the full graph.  With ``vectorized``
    true the worker goes through the model's batch path (bit-exact either
    way).
    """
    model, graph, names = job[:3]
    vectorized = job[3] if len(job) > 3 else False
    if vectorized:
        return model.penalties_batch(graph, [list(names)])[0]
    return model.component_penalties(graph, list(names))


def cached_penalties(
    model: ContentionModel,
    graph: CommunicationGraph,
    cache: Optional[PenaltyCache] = None,
    map_fn: Optional[Callable] = None,
    stats: Optional[EngineStats] = None,
    vectorized: bool = True,
) -> Dict[str, float]:
    """Penalties of a static graph through the component/cache machinery.

    One-shot counterpart of :class:`IncrementalPenaltyEngine` for callers
    holding a fixed :class:`CommunicationGraph` (experiment sweeps, campaign
    scenarios): the graph is partitioned into conflict components under the
    model's rule, isomorphic components are served from ``cache``, and the
    cache misses are evaluated — all in one
    :meth:`~repro.core.penalty.ContentionModel.penalties_batch` dispatch
    when ``vectorized`` (the default), or in parallel through ``map_fn``
    when given.  Bit-exact with ``model.penalties(graph)`` for every
    shipped model (component locality, snapshot replay and the batch array
    path are all exact).
    """
    if stats is None:
        stats = EngineStats()
    stats.events += 1
    result: Dict[str, float] = {}
    inter_names: List[str] = []
    for comm in graph:
        if comm.is_intra_node:
            result[comm.name] = 1.0
        else:
            inter_names.append(comm.name)
    if not inter_names:
        return result
    rule = model.component_rule
    if rule is None:
        components = [tuple(sorted(inter_names))]
    else:
        components = graph.conflict_components(rule)
    use_cache = cache is not None and model.structural_penalties
    model_key = model.memo_key() if use_cache else None
    pending: List[Tuple[Tuple[str, ...], Optional[Hashable], Optional[Dict[str, Tuple[int, int]]]]] = []
    for names in components:
        if use_cache:
            component_key, endpoint_ranks = graph.canonical_component(names)
            key = (model_key, component_key)
            cached = cache.get(key)
            if cached is not None:
                stats.cache_hits += 1
                for name in names:
                    result[name] = cached[endpoint_ranks[name]]
                continue
            stats.cache_misses += 1
            pending.append((names, key, endpoint_ranks))
        else:
            pending.append((names, None, None))
    if pending:
        if map_fn is not None and rule is not None and len(pending) > 1:
            jobs = [
                (model, graph.subgraph(names), tuple(names), vectorized)
                for names, _, _ in pending
            ]
            evaluations = list(map_fn(_evaluate_component, jobs))
        elif vectorized:
            evaluations = model.penalties_batch(
                graph, [list(names) for names, _, _ in pending]
            )
        else:
            evaluations = [model.component_penalties(graph, list(names)) for names, _, _ in pending]
        for (names, key, endpoint_ranks), evaluated in zip(pending, evaluations):
            stats.component_evaluations += 1
            stats.comm_evaluations += len(names)
            if key is not None and cache is not None:
                cache.store(key, endpoint_ranks, evaluated)
            for name in names:
                result[name] = evaluated[name]
    # graph insertion order, so aggregates summed over the dict do not depend
    # on the hit/miss pattern (floating-point addition is order-sensitive)
    return {comm.name: result[comm.name] for comm in graph}


def cached_predict(
    model: ContentionModel,
    graph: CommunicationGraph,
    cost_model: Optional[LinearCostModel] = None,
    cache: Optional[PenaltyCache] = None,
    map_fn: Optional[Callable] = None,
    stats: Optional[EngineStats] = None,
    vectorized: bool = True,
) -> PenaltyPrediction:
    """Cache-aware counterpart of :meth:`ContentionModel.predict`.

    Identical penalties and times; the per-communication ``details``
    diagnostics are skipped (they bypass the component cache and none of the
    sweep consumers read them).
    """
    pens = cached_penalties(model, graph, cache=cache, map_fn=map_fn, stats=stats,
                            vectorized=vectorized)
    times: Dict[str, float] = {}
    if cost_model is not None:
        for comm in graph:
            times[comm.name] = pens[comm.name] * cost_model.time(comm.size)
    return PenaltyPrediction(
        model_name=model.name,
        graph_name=graph.name,
        penalties=pens,
        times=times,
    )
