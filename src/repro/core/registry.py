"""Model registry.

Maps short technology names ("ethernet", "myrinet", "infiniband", baseline
names) to contention-model factories, so that the simulator, the benchmark
harness and the examples can select a model from a configuration string —
this mirrors the "definition of the kind of model" input of the paper's
simulator (§VI.A).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import ModelError
from .baselines import FairShareModel, KimLeeModel, NoContentionModel
from .ethernet_model import GigabitEthernetModel
from .infiniband_model import InfinibandModel
from .myrinet_model import MyrinetModel
from .penalty import ContentionModel

__all__ = [
    "register_model",
    "get_model",
    "available_models",
    "available_networks",
    "model_for_network",
]


ModelFactory = Callable[..., ContentionModel]

_REGISTRY: Dict[str, ModelFactory] = {}

#: aliases accepted by :func:`model_for_network`
_NETWORK_ALIASES: Dict[str, str] = {
    "gigabit-ethernet": "ethernet",
    "gige": "ethernet",
    "gbe": "ethernet",
    "tcp": "ethernet",
    "ethernet": "ethernet",
    "myrinet": "myrinet",
    "myrinet-2000": "myrinet",
    "mx": "myrinet",
    "infiniband": "infiniband",
    "ib": "infiniband",
    "infinihost3": "infiniband",
    "infinihost-iii": "infiniband",
    "infiniband-infinihost3": "infiniband",
}


def register_model(name: str, factory: ModelFactory, overwrite: bool = False) -> None:
    """Register a model factory under ``name`` (lower-cased)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ModelError(f"model {name!r} is already registered")
    _REGISTRY[key] = factory


def get_model(name: str, **kwargs) -> ContentionModel:
    """Instantiate a registered contention model by name.

    >>> get_model("ethernet").name
    'gigabit-ethernet'
    """
    key = name.lower()
    if key not in _REGISTRY:
        hint = ""
        if key in _NETWORK_ALIASES:
            hint = (
                f"; {name!r} is a network alias for the {_NETWORK_ALIASES[key]!r} "
                f"model — use model_for_network({name!r})"
            )
        raise ModelError(
            f"unknown model {name!r}; available models: "
            f"{', '.join(sorted(_REGISTRY))}{hint}"
        )
    return _REGISTRY[key](**kwargs)


def available_models() -> List[str]:
    """Sorted list of registered model names."""
    return sorted(_REGISTRY)


def available_networks() -> List[str]:
    """Sorted list of network names/aliases accepted by :func:`model_for_network`."""
    return sorted(_NETWORK_ALIASES)


def model_for_network(network: str, **kwargs) -> ContentionModel:
    """Return the paper's model for a network technology name or alias."""
    key = network.lower()
    if key not in _NETWORK_ALIASES:
        raise ModelError(
            f"no model associated with network {network!r}; known "
            f"networks/aliases: {', '.join(sorted(_NETWORK_ALIASES))}; "
            f"registered models: {', '.join(sorted(_REGISTRY))}"
        )
    return get_model(_NETWORK_ALIASES[key], **kwargs)


# ---------------------------------------------------------------------------
# built-in registrations
register_model("ethernet", GigabitEthernetModel)
register_model("myrinet", MyrinetModel)
register_model("infiniband", InfinibandModel)
register_model("no-contention", NoContentionModel)
register_model("fair-share", FairShareModel)
register_model("kim-lee", KimLeeModel)
