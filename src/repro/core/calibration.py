"""Parameter estimation for the contention models (§V.A of the paper).

The Gigabit Ethernet model has three card-specific parameters.  The paper
estimates them from two very small experiments:

* **β** from the *outgoing conflict ladder*: node 0 sends the same message to
  ``k`` distinct nodes; every communication is penalised by ``k·β``, so β is
  the measured penalty divided by ``k`` (Figure 2: ``1.5/2 = 2.25/3 =
  0.75``).
* **γ_o** and **γ_i** from the Figure 4 verification scheme: a communication
  ``a`` that is only slowed by its outgoing conflict and a communication
  ``f`` that is only slowed by its incoming conflict.  With ``t_ref`` the
  time of the same message without concurrency,

  .. math:: γ_o = 1 - t_a / (3 β t_{ref}), \\qquad γ_i = 1 - t_f / (3 β t_{ref})

This module implements those estimators, a generic least-squares fit of the
full parameter vector against a set of measured penalties (useful when the
measurements come from the cluster emulator instead of the two canonical
schemes), and the equivalent fit for the InfiniBand extension model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from .._numpy import np
from scipy import optimize

from ..exceptions import CalibrationError
from .ethernet_model import EthernetParameters, GigabitEthernetModel
from .graph import CommunicationGraph
from .infiniband_model import InfinibandModel, InfinibandParameters

__all__ = [
    "estimate_beta",
    "estimate_beta_from_times",
    "estimate_gammas",
    "CalibrationMeasurement",
    "fit_ethernet_parameters",
    "fit_infiniband_parameters",
    "calibrate_from_measurer",
]


def estimate_beta(penalties_by_fanout: Mapping[int, float]) -> float:
    """Estimate β from measured penalties of simple outgoing conflicts.

    ``penalties_by_fanout`` maps the number of concurrent outgoing
    communications ``k`` (k ≥ 2) to the measured penalty of one of them.

    >>> round(estimate_beta({2: 1.5, 3: 2.25}), 3)
    0.75
    """
    ratios = []
    for fanout, penalty in penalties_by_fanout.items():
        if fanout < 2:
            raise CalibrationError(f"β estimation needs fan-out >= 2, got {fanout}")
        if penalty <= 0:
            raise CalibrationError(f"penalty must be positive, got {penalty} for k={fanout}")
        ratios.append(penalty / fanout)
    if not ratios:
        raise CalibrationError("no measurements supplied for β estimation")
    return float(np.mean(ratios))


def estimate_beta_from_times(
    times_by_fanout: Mapping[int, float], reference_time: float
) -> float:
    """Estimate β from raw communication times instead of penalties."""
    if reference_time <= 0:
        raise CalibrationError(f"reference time must be positive, got {reference_time}")
    penalties = {k: t / reference_time for k, t in times_by_fanout.items()}
    return estimate_beta(penalties)


def estimate_gammas(
    time_a: float,
    time_f: float,
    reference_time: float,
    beta: float,
    fanout: int = 3,
) -> Tuple[float, float]:
    """Estimate ``(γ_o, γ_i)`` from the Figure 4 scheme measurements.

    ``time_a`` is the duration of the communication governed by γ_o (it
    leaves a node with ``fanout`` outgoing communications and is *not*
    strongly slowed), ``time_f`` the one governed by γ_i (symmetric on the
    receive side), and ``reference_time`` the duration of the same message
    without concurrency.
    """
    if min(time_a, time_f, reference_time) <= 0:
        raise CalibrationError("times must be positive")
    if beta <= 0:
        raise CalibrationError(f"beta must be positive, got {beta}")
    if fanout < 2:
        raise CalibrationError(f"fanout must be >= 2, got {fanout}")
    gamma_o = 1.0 - time_a / (fanout * beta * reference_time)
    gamma_i = 1.0 - time_f / (fanout * beta * reference_time)
    for label, value in (("gamma_o", gamma_o), ("gamma_i", gamma_i)):
        if not (-0.5 <= value < 1.0):
            raise CalibrationError(
                f"estimated {label}={value:.3f} is outside the plausible range;"
                " check the measurement scheme"
            )
    return float(np.clip(gamma_o, 0.0, 0.999)), float(np.clip(gamma_i, 0.0, 0.999))


@dataclass(frozen=True)
class CalibrationMeasurement:
    """One measured contention situation used by the least-squares fits."""

    graph: CommunicationGraph
    #: measured penalty of every communication of the graph
    penalties: Mapping[str, float]
    #: relative weight of this measurement in the fit
    weight: float = 1.0


def _stack_measurements(
    measurements: Sequence[CalibrationMeasurement],
) -> Tuple[Sequence[CalibrationMeasurement], np.ndarray, np.ndarray]:
    if not measurements:
        raise CalibrationError("at least one calibration measurement is required")
    observed = []
    weights = []
    for measurement in measurements:
        for comm in measurement.graph:
            if comm.name not in measurement.penalties:
                raise CalibrationError(
                    f"measurement for graph {measurement.graph.name!r} misses "
                    f"communication {comm.name!r}"
                )
            observed.append(float(measurement.penalties[comm.name]))
            weights.append(float(measurement.weight))
    return measurements, np.asarray(observed, dtype=float), np.asarray(weights, dtype=float)


def fit_ethernet_parameters(
    measurements: Sequence[CalibrationMeasurement],
    initial: EthernetParameters | None = None,
) -> EthernetParameters:
    """Least-squares fit of (β, γ_o, γ_i) against measured penalties.

    This generalises the paper's two-scheme estimation to an arbitrary set of
    measured graphs — convenient when the measurements come from the cluster
    emulator, a real testbed or a trace.
    """
    measurements, observed, weights = _stack_measurements(measurements)
    start = initial or EthernetParameters.paper()
    x0 = np.array([start.beta, start.gamma_o, start.gamma_i], dtype=float)

    def residuals(x: np.ndarray) -> np.ndarray:
        beta, gamma_o, gamma_i = x
        beta = max(beta, 1e-6)
        gamma_o = float(np.clip(gamma_o, 0.0, 0.999))
        gamma_i = float(np.clip(gamma_i, 0.0, 0.999))
        model = GigabitEthernetModel(EthernetParameters(beta, gamma_o, gamma_i))
        predicted = []
        for measurement in measurements:
            pens = model.penalties(measurement.graph)
            predicted.extend(pens[c.name] for c in measurement.graph)
        return (np.asarray(predicted) - observed) * np.sqrt(weights)

    result = optimize.least_squares(
        residuals, x0, bounds=([1e-6, 0.0, 0.0], [5.0, 0.999, 0.999])
    )
    if not result.success:  # pragma: no cover - scipy rarely fails here
        raise CalibrationError(f"least-squares fit failed: {result.message}")
    beta, gamma_o, gamma_i = result.x
    return EthernetParameters(beta=float(beta), gamma_o=float(gamma_o), gamma_i=float(gamma_i))


def fit_infiniband_parameters(
    measurements: Sequence[CalibrationMeasurement],
    initial: InfinibandParameters | None = None,
) -> InfinibandParameters:
    """Least-squares fit of the InfiniBand extension parameters (β, λ_o, λ_i)."""
    measurements, observed, weights = _stack_measurements(measurements)
    start = initial or InfinibandParameters.infinihost3()
    x0 = np.array([start.beta, start.lambda_o, start.lambda_i], dtype=float)

    def residuals(x: np.ndarray) -> np.ndarray:
        beta, lambda_o, lambda_i = x
        params = InfinibandParameters(
            beta=max(beta, 1e-6),
            gamma_o=start.gamma_o,
            gamma_i=start.gamma_i,
            lambda_o=max(lambda_o, 0.0),
            lambda_i=max(lambda_i, 0.0),
        )
        model = InfinibandModel(params)
        predicted = []
        for measurement in measurements:
            pens = model.penalties(measurement.graph)
            predicted.extend(pens[c.name] for c in measurement.graph)
        return (np.asarray(predicted) - observed) * np.sqrt(weights)

    result = optimize.least_squares(
        residuals, x0, bounds=([1e-6, 0.0, 0.0], [5.0, 5.0, 5.0])
    )
    if not result.success:  # pragma: no cover - defensive
        raise CalibrationError(f"least-squares fit failed: {result.message}")
    beta, lambda_o, lambda_i = result.x
    return InfinibandParameters(
        beta=float(beta),
        gamma_o=start.gamma_o,
        gamma_i=start.gamma_i,
        lambda_o=float(lambda_o),
        lambda_i=float(lambda_i),
    )


PenaltyMeasurer = Callable[[CommunicationGraph], Dict[str, float]]


def calibrate_from_measurer(
    measure: PenaltyMeasurer,
    size: int | None = None,
) -> EthernetParameters:
    """Run the paper's calibration protocol against an arbitrary measurement function.

    ``measure`` takes a communication graph and returns measured penalties
    (for instance :meth:`repro.benchmark.penalty_tool.PenaltyTool.measure_penalties`
    bound to the Gigabit Ethernet emulator).  The protocol is:

    1. measure the 2-way and 3-way outgoing ladders to estimate β;
    2. measure the Figure 4 scheme to estimate γ_o and γ_i.
    """
    # imported lazily to avoid a package cycle (scheme.library imports core)
    from ..scheme.library import figure4_scheme, outgoing_conflict_scheme

    ladder: Dict[int, float] = {}
    for fanout in (2, 3):
        graph = outgoing_conflict_scheme(fanout, size=size) if size else outgoing_conflict_scheme(fanout)
        penalties = measure(graph)
        first = graph.communications[0].name
        ladder[fanout] = penalties[first]
    beta = estimate_beta(ladder)

    verification = figure4_scheme(size=size) if size else figure4_scheme()
    penalties = measure(verification)
    # reference penalty is 1 by definition of a penalty measurement
    gamma_o, gamma_i = estimate_gammas(
        time_a=penalties["a"],
        time_f=penalties["f"],
        reference_time=1.0,
        beta=beta,
        fanout=3,
    )
    return EthernetParameters(beta=beta, gamma_o=gamma_o, gamma_i=gamma_i)
