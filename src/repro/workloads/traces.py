"""MPE-like application traces.

The paper obtains its Linpack event sequences by instrumenting MPICH's MPE
library (§VI.D), with a measured tracing overhead of about 0.7 %.  This
module provides the equivalent plumbing for the reproduction:

* a plain-text trace format (one event per line) with
  :func:`write_trace` / :func:`read_trace` round-tripping
  :class:`~repro.simulator.application.Application` objects, so workload
  generation and simulation can be decoupled exactly like tracing and replay
  were in the paper;
* :func:`apply_tracing_overhead`, which inflates compute durations by the
  instrumentation cost so that experiments can account for it explicitly.

Trace format (``#`` starts a comment)::

    # repro-mpe-trace 1
    tasks 4
    0 compute 0.125
    0 compute_flops 2.4e9
    0 send 1 1048576 0
    1 recv 0 1048576 0
    1 recv any - 0
    * barrier
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import List, TextIO, Union

from ..exceptions import TraceError
from ..simulator.application import Application
from ..simulator.events import (
    ANY_SOURCE,
    BarrierEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)

__all__ = ["write_trace", "read_trace", "trace_to_text", "apply_tracing_overhead",
           "MPE_TRACING_OVERHEAD"]

#: tracing overhead measured by the paper for its MPE instrumentation (0.7 %)
MPE_TRACING_OVERHEAD = 0.007

_HEADER = "# repro-mpe-trace 1"


def trace_to_text(application: Application) -> str:
    """Serialise an application into the trace format."""
    lines: List[str] = [_HEADER, f"tasks {application.num_tasks}"]
    if application.name:
        lines.append(f"name {application.name}")
    # barriers are global: emit them interleaved with rank 0's stream and
    # per-rank events for everything else, preserving per-rank order.
    for trace in application:
        rank = trace.rank
        for event in trace:
            if isinstance(event, ComputeEvent):
                if event.duration is not None:
                    lines.append(f"{rank} compute {event.duration!r}")
                else:
                    lines.append(f"{rank} compute_flops {event.flops!r}")
            elif isinstance(event, SendEvent):
                lines.append(f"{rank} send {event.dst} {event.size} {event.tag}")
            elif isinstance(event, RecvEvent):
                src = "any" if event.src == ANY_SOURCE else str(event.src)
                size = "-" if event.size is None else str(event.size)
                lines.append(f"{rank} recv {src} {size} {event.tag}")
            elif isinstance(event, BarrierEvent):
                lines.append(f"{rank} barrier")
            else:  # pragma: no cover - defensive
                raise TraceError(f"cannot serialise event {event!r}")
    return "\n".join(lines) + "\n"


def write_trace(application: Application, path: Union[str, Path]) -> Path:
    """Write an application trace to ``path``; returns the path."""
    path = Path(path)
    path.write_text(trace_to_text(application), encoding="utf-8")
    return path


def _parse_lines(lines: List[str]) -> Application:
    num_tasks = None
    name = ""
    events: List[tuple] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "tasks":
            num_tasks = int(parts[1])
            continue
        if parts[0] == "name":
            name = " ".join(parts[1:])
            continue
        events.append((lineno, parts))
    if num_tasks is None:
        raise TraceError("trace is missing the 'tasks <n>' header line")

    app = Application(num_tasks=num_tasks, name=name)
    for lineno, parts in events:
        rank_token, kind = parts[0], parts[1]
        try:
            if kind == "barrier":
                if rank_token == "*":
                    app.add_barrier()
                else:
                    app.trace(int(rank_token)).append(BarrierEvent())
                continue
            rank = int(rank_token)
            if kind == "compute":
                app.add_compute(rank, duration=float(parts[2]))
            elif kind == "compute_flops":
                app.add_compute(rank, flops=float(parts[2]))
            elif kind == "send":
                app.add_send(rank, dst=int(parts[2]), size=int(parts[3]),
                             tag=int(parts[4]) if len(parts) > 4 else 0)
            elif kind == "recv":
                src = ANY_SOURCE if parts[2] == "any" else int(parts[2])
                size = None if parts[3] == "-" else int(parts[3])
                app.add_recv(rank, src=src, size=size,
                             tag=int(parts[4]) if len(parts) > 4 else 0)
            else:
                raise TraceError(f"unknown event kind {kind!r}")
        except (ValueError, IndexError) as exc:
            raise TraceError(f"malformed trace line {lineno}: {' '.join(parts)!r}") from exc
    return app


def read_trace(source: Union[str, Path, TextIO]) -> Application:
    """Read a trace file (path or file object) back into an Application."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text(encoding="utf-8")
    return _parse_lines(text.splitlines())


def apply_tracing_overhead(
    application: Application, overhead: float = MPE_TRACING_OVERHEAD
) -> Application:
    """Return a copy with compute durations inflated by the tracing overhead."""
    if overhead < 0:
        raise TraceError(f"overhead must be non-negative, got {overhead}")
    result = Application(num_tasks=application.num_tasks,
                         name=f"{application.name}+tracing")
    factor = 1.0 + overhead
    for trace in application:
        for event in trace:
            if isinstance(event, ComputeEvent):
                if event.duration is not None:
                    result.add_compute(trace.rank, duration=event.duration * factor,
                                       label=event.label)
                else:
                    result.add_compute(trace.rank, flops=event.flops * factor,
                                       label=event.label)
            else:
                result.trace(trace.rank).append(event)
    return result
