"""MPE-like application traces.

The paper obtains its Linpack event sequences by instrumenting MPICH's MPE
library (§VI.D), with a measured tracing overhead of about 0.7 %.  This
module provides the equivalent plumbing for the reproduction:

* a plain-text trace format (one event per line) with
  :func:`write_trace` / :func:`read_trace` round-tripping
  :class:`~repro.simulator.application.Application` objects, so workload
  generation and simulation can be decoupled exactly like tracing and replay
  were in the paper;
* the same applications in the **unified JSONL trace container** of
  :mod:`repro.trace` (``format="jsonl"``): one ``app.meta`` header record
  plus one ``app.compute`` / ``app.send`` / ``app.recv`` / ``app.barrier``
  record per program event, so application traces, simulation traces and
  replay all share one schema-versioned file format.  :func:`read_trace`
  auto-detects which of the two formats a file uses (JSONL files start with
  the ``{"format": "repro-trace", ...}`` header);
* :func:`apply_tracing_overhead`, which inflates compute durations by the
  instrumentation cost so that experiments can account for it explicitly.

Text trace format (``#`` starts a comment)::

    # repro-mpe-trace 1
    tasks 4
    0 compute 0.125
    0 compute_flops 2.4e9
    0 send 1 1048576 0
    1 recv 0 1048576 0
    1 recv any - 0
    * barrier

The JSONL container additionally preserves event labels, which the text
format drops.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, TextIO, Union

from ..exceptions import TraceError
from ..simulator.application import Application
from ..simulator.events import (
    ANY_SOURCE,
    BarrierEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)
from ..trace.records import TRACE_FORMAT, TraceRecord
from ..trace.sinks import JsonlTraceSink

__all__ = ["write_trace", "read_trace", "trace_to_text", "apply_tracing_overhead",
           "application_to_records", "records_to_application",
           "MPE_TRACING_OVERHEAD"]

#: tracing overhead measured by the paper for its MPE instrumentation (0.7 %)
MPE_TRACING_OVERHEAD = 0.007

_HEADER = "# repro-mpe-trace 1"


def trace_to_text(application: Application) -> str:
    """Serialise an application into the trace format."""
    lines: List[str] = [_HEADER, f"tasks {application.num_tasks}"]
    if application.name:
        lines.append(f"name {application.name}")
    # barriers are global: emit them interleaved with rank 0's stream and
    # per-rank events for everything else, preserving per-rank order.
    for trace in application:
        rank = trace.rank
        for event in trace:
            if isinstance(event, ComputeEvent):
                if event.duration is not None:
                    lines.append(f"{rank} compute {event.duration!r}")
                else:
                    lines.append(f"{rank} compute_flops {event.flops!r}")
            elif isinstance(event, SendEvent):
                lines.append(f"{rank} send {event.dst} {event.size} {event.tag}")
            elif isinstance(event, RecvEvent):
                src = "any" if event.src == ANY_SOURCE else str(event.src)
                size = "-" if event.size is None else str(event.size)
                lines.append(f"{rank} recv {src} {size} {event.tag}")
            elif isinstance(event, BarrierEvent):
                lines.append(f"{rank} barrier")
            else:  # pragma: no cover - defensive
                raise TraceError(f"cannot serialise event {event!r}")
    return "\n".join(lines) + "\n"


def application_to_records(application: Application) -> List[TraceRecord]:
    """Serialise an application into ``app.*`` trace records.

    The first record is the ``app.meta`` header (``num_tasks``, ``name``);
    event records follow in per-rank program order (rank-major, like the
    text format).  Record ``time`` is the 0-based per-rank event index —
    application traces carry program *order*, not wall-clock time.
    """
    records: List[TraceRecord] = [TraceRecord(0.0, "app.meta", None, {
        "num_tasks": application.num_tasks, "name": application.name,
    })]
    for trace in application:
        rank = trace.rank
        for index, event in enumerate(trace):
            data: dict = {}
            if getattr(event, "label", ""):
                data["label"] = event.label
            if isinstance(event, ComputeEvent):
                kind = "app.compute"
                if event.duration is not None:
                    data["duration"] = event.duration
                else:
                    data["flops"] = event.flops
            elif isinstance(event, SendEvent):
                kind = "app.send"
                data.update({"dst": event.dst, "size": event.size,
                             "tag": event.tag})
            elif isinstance(event, RecvEvent):
                kind = "app.recv"
                data.update({
                    "src": None if event.src == ANY_SOURCE else event.src,
                    "size": event.size, "tag": event.tag,
                })
            elif isinstance(event, BarrierEvent):
                kind = "app.barrier"
            else:  # pragma: no cover - defensive
                raise TraceError(f"cannot serialise event {event!r}")
            records.append(TraceRecord(float(index), kind, rank, data))
    return records


def records_to_application(records: Iterable[TraceRecord]) -> Application:
    """Rebuild an :class:`Application` from ``app.*`` trace records.

    Non-``app.*`` records are ignored, so an application container can live
    inside a larger mixed trace.  A missing ``app.meta`` header is an error
    (the container is schema-versioned end to end).
    """
    app: Union[Application, None] = None
    pending: List[TraceRecord] = []
    for record in records:
        if record.kind == "app.meta":
            if app is not None:
                raise TraceError("trace contains more than one app.meta record")
            app = Application(num_tasks=int(record.data["num_tasks"]),
                              name=str(record.data.get("name", "")))
            continue
        if not record.kind.startswith("app."):
            continue
        pending.append(record)
    if app is None:
        raise TraceError("trace has no app.meta record (not an application "
                         "container)")
    for record in pending:
        data = record.data
        label = str(data.get("label", ""))
        if record.kind == "app.barrier" and record.subject == "*":
            app.add_barrier(label=label)  # global barrier, like the text format
            continue
        try:
            rank = int(record.subject or 0)
        except (TypeError, ValueError) as exc:
            raise TraceError(
                f"application record {record.kind!r} has non-integer "
                f"rank {record.subject!r}"
            ) from exc
        if record.kind == "app.compute":
            duration = data.get("duration")
            flops = data.get("flops")
            app.add_compute(rank,
                            duration=None if duration is None else float(duration),
                            flops=None if flops is None else float(flops),
                            label=label)
        elif record.kind == "app.send":
            app.add_send(rank, dst=int(data["dst"]), size=int(data["size"]),
                         tag=int(data.get("tag", 0)), label=label)
        elif record.kind == "app.recv":
            src = data.get("src")
            size = data.get("size")
            app.add_recv(rank, src=ANY_SOURCE if src is None else int(src),
                         size=None if size is None else int(size),
                         tag=int(data.get("tag", 0)), label=label)
        elif record.kind == "app.barrier":
            app.trace(rank).append(BarrierEvent(label=label))
        else:
            raise TraceError(f"unknown application record kind {record.kind!r}")
    return app


def write_trace(application: Application, path: Union[str, Path],
                format: str = "text") -> Path:
    """Write an application trace to ``path``; returns the path.

    ``format="text"`` (default) keeps the historical MPE-style line format;
    ``format="jsonl"`` writes the unified :mod:`repro.trace` container
    (label-preserving, shared with simulation traces and replay).
    """
    path = Path(path)
    if format == "text":
        path.write_text(trace_to_text(application), encoding="utf-8")
    elif format == "jsonl":
        with JsonlTraceSink(path) as sink:
            for record in application_to_records(application):
                sink.emit(record)
    else:
        raise TraceError(f"unknown trace format {format!r} (text or jsonl)")
    return path


def _parse_lines(lines: List[str]) -> Application:
    num_tasks = None
    name = ""
    events: List[tuple] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "tasks":
            num_tasks = int(parts[1])
            continue
        if parts[0] == "name":
            name = " ".join(parts[1:])
            continue
        events.append((lineno, parts))
    if num_tasks is None:
        raise TraceError("trace is missing the 'tasks <n>' header line")

    app = Application(num_tasks=num_tasks, name=name)
    for lineno, parts in events:
        rank_token, kind = parts[0], parts[1]
        try:
            if kind == "barrier":
                if rank_token == "*":
                    app.add_barrier()
                else:
                    app.trace(int(rank_token)).append(BarrierEvent())
                continue
            rank = int(rank_token)
            if kind == "compute":
                app.add_compute(rank, duration=float(parts[2]))
            elif kind == "compute_flops":
                app.add_compute(rank, flops=float(parts[2]))
            elif kind == "send":
                app.add_send(rank, dst=int(parts[2]), size=int(parts[3]),
                             tag=int(parts[4]) if len(parts) > 4 else 0)
            elif kind == "recv":
                src = ANY_SOURCE if parts[2] == "any" else int(parts[2])
                size = None if parts[3] == "-" else int(parts[3])
                app.add_recv(rank, src=src, size=size,
                             tag=int(parts[4]) if len(parts) > 4 else 0)
            else:
                raise TraceError(f"unknown event kind {kind!r}")
        except (ValueError, IndexError) as exc:
            raise TraceError(f"malformed trace line {lineno}: {' '.join(parts)!r}") from exc
    return app


def _looks_like_container(text: str) -> bool:
    """True when the payload is the unified JSONL container, not MPE text."""
    head = text.lstrip()[:256]
    return head.startswith("{") and TRACE_FORMAT in head


def read_trace(source: Union[str, Path, TextIO]) -> Application:
    """Read a trace file (path or file object) back into an Application.

    Both formats are accepted and auto-detected: the historical MPE-style
    text lines and the unified JSONL container (``write_trace(...,
    format="jsonl")``, or any simulation trace carrying ``app.*`` records).
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = Path(source).read_text(encoding="utf-8")
    if _looks_like_container(text):
        from ..trace.sinks import _iter_lines

        return records_to_application(_iter_lines(text.splitlines()))
    return _parse_lines(text.splitlines())


def apply_tracing_overhead(
    application: Application, overhead: float = MPE_TRACING_OVERHEAD
) -> Application:
    """Return a copy with compute durations inflated by the tracing overhead."""
    if overhead < 0:
        raise TraceError(f"overhead must be non-negative, got {overhead}")
    result = Application(num_tasks=application.num_tasks,
                         name=f"{application.name}+tracing")
    factor = 1.0 + overhead
    for trace in application:
        for event in trace:
            if isinstance(event, ComputeEvent):
                if event.duration is not None:
                    result.add_compute(trace.rank, duration=event.duration * factor,
                                       label=event.label)
                else:
                    result.add_compute(trace.rank, flops=event.flops * factor,
                                       label=event.label)
            else:
                result.trace(trace.rank).append(event)
    return result
