"""Collective communication patterns expressed as point-to-point event traces.

The paper's models work on point-to-point communication graphs; collectives
stress them because their implementation (binomial trees, rings) creates
exactly the outgoing / incoming conflicts of §IV.A when several tasks share a
node.  These builders append standard collective algorithms to an
:class:`~repro.simulator.application.Application` so that examples and
ablation benchmarks can study them.
"""

from __future__ import annotations


from ..exceptions import WorkloadError
from ..simulator.application import Application

__all__ = [
    "binomial_broadcast",
    "ring_allgather",
    "flat_gather",
    "pairwise_exchange_alltoall",
    "broadcast_application",
]


def binomial_broadcast(app: Application, root: int, size: int, tag: int = 0) -> Application:
    """Binomial-tree broadcast of ``size`` bytes from ``root`` (MPICH's algorithm)."""
    p = app.num_tasks
    if not (0 <= root < p):
        raise WorkloadError(f"root {root} outside application of {p} tasks")
    # relative ranks: vrank = (rank - root) mod p; vrank 0 is the root
    mask = 1
    while mask < p:
        for vrank in range(p):
            rank = (vrank + root) % p
            if vrank < mask and vrank + mask < p:
                dst = (vrank + mask + root) % p
                app.add_send(rank, dst, size, tag=tag, label=f"bcast[{mask}]")
                app.add_recv(dst, rank, size, tag=tag, label=f"bcast[{mask}]")
        mask <<= 1
    return app


def ring_allgather(app: Application, size: int, tag: int = 100) -> Application:
    """Ring allgather: P-1 steps, each task sends its current block to rank+1."""
    p = app.num_tasks
    if p < 2:
        return app
    for step in range(p - 1):
        for rank in range(p):
            dst = (rank + 1) % p
            src = (rank - 1) % p
            step_tag = tag + step
            if rank % 2 == 0:
                app.add_send(rank, dst, size, tag=step_tag, label=f"allgather[{step}]")
                app.add_recv(rank, src, size, tag=step_tag, label=f"allgather[{step}]")
            else:
                app.add_recv(rank, src, size, tag=step_tag, label=f"allgather[{step}]")
                app.add_send(rank, dst, size, tag=step_tag, label=f"allgather[{step}]")
    return app


def flat_gather(app: Application, root: int, size: int, tag: int = 200) -> Application:
    """Naive gather: every non-root task sends its block directly to the root.

    This is the worst incoming conflict the models describe (Δi(root) = P-1).
    """
    p = app.num_tasks
    if not (0 <= root < p):
        raise WorkloadError(f"root {root} outside application of {p} tasks")
    for rank in range(p):
        if rank == root:
            continue
        app.add_send(rank, root, size, tag=tag, label="gather")
    for rank in range(p):
        if rank == root:
            continue
        app.add_recv(root, rank, size, tag=tag, label="gather")
    return app


def pairwise_exchange_alltoall(app: Application, size: int, tag: int = 300) -> Application:
    """Pairwise-exchange all-to-all (P-1 rounds, partner = rank XOR round).

    Requires a power-of-two number of tasks.
    """
    p = app.num_tasks
    if p & (p - 1) != 0:
        raise WorkloadError(f"pairwise exchange needs a power-of-two task count, got {p}")
    for round_index in range(1, p):
        for rank in range(p):
            partner = rank ^ round_index
            step_tag = tag + round_index
            if rank < partner:
                app.add_send(rank, partner, size, tag=step_tag, label=f"alltoall[{round_index}]")
                app.add_recv(rank, partner, size, tag=step_tag, label=f"alltoall[{round_index}]")
            else:
                app.add_recv(rank, partner, size, tag=step_tag, label=f"alltoall[{round_index}]")
                app.add_send(rank, partner, size, tag=step_tag, label=f"alltoall[{round_index}]")
    return app


def broadcast_application(num_tasks: int, size: int, root: int = 0,
                          name: str = "") -> Application:
    """Convenience: a fresh application containing a single binomial broadcast."""
    app = Application(num_tasks=num_tasks, name=name or f"bcast-{num_tasks}")
    return binomial_broadcast(app, root=root, size=size)
