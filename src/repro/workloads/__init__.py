"""Workload generators: synthetic schemes, collectives, HPL/Linpack traces."""

from .collectives import (
    binomial_broadcast,
    broadcast_application,
    flat_gather,
    pairwise_exchange_alltoall,
    ring_allgather,
)
from .linpack import LinpackParameters, generate_linpack, hpl_total_flops
from .synthetic import (
    bipartite_fan_scheme,
    complete_graph_scheme,
    hotspot_scheme,
    random_graph_scheme,
    random_tree_scheme,
    scheme_family,
)
from .traces import (
    MPE_TRACING_OVERHEAD,
    apply_tracing_overhead,
    read_trace,
    trace_to_text,
    write_trace,
)

__all__ = [
    "LinpackParameters",
    "generate_linpack",
    "hpl_total_flops",
    "random_tree_scheme",
    "complete_graph_scheme",
    "random_graph_scheme",
    "bipartite_fan_scheme",
    "hotspot_scheme",
    "scheme_family",
    "binomial_broadcast",
    "ring_allgather",
    "flat_gather",
    "pairwise_exchange_alltoall",
    "broadcast_application",
    "write_trace",
    "read_trace",
    "trace_to_text",
    "apply_tracing_overhead",
    "MPE_TRACING_OVERHEAD",
]
