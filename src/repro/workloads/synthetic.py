"""Synthetic communication-scheme generators.

The paper evaluates its models on synthetic graphs — a tree (MK1) and a
complete graph (MK2) — before moving to Linpack.  These generators produce
families of such graphs (random trees, complete graphs, random digraphs,
bipartite fan patterns) so that the ablation benchmarks can sweep model
accuracy and enumeration cost over graph size and density.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx
from .._numpy import np

from ..core.graph import CommunicationGraph
from ..exceptions import WorkloadError
from ..units import MB

__all__ = [
    "random_tree_scheme",
    "complete_graph_scheme",
    "random_graph_scheme",
    "bipartite_fan_scheme",
    "hotspot_scheme",
    "scheme_family",
]


def _check_nodes(num_nodes: int, minimum: int = 2) -> None:
    if num_nodes < minimum:
        raise WorkloadError(f"need at least {minimum} nodes, got {num_nodes}")


def random_tree_scheme(
    num_nodes: int, seed: int = 0, size: int = 4 * MB, name: str = ""
) -> CommunicationGraph:
    """A random spanning tree with randomly oriented communications (MK1-like)."""
    _check_nodes(num_nodes)
    rng = np.random.default_rng(seed)
    tree = nx.random_labeled_tree(num_nodes, seed=int(rng.integers(0, 2**31 - 1)))
    graph = CommunicationGraph(name=name or f"random-tree-{num_nodes}-s{seed}")
    for u, v in sorted(tree.edges()):
        if rng.random() < 0.5:
            u, v = v, u
        graph.add_edge(int(u), int(v), size=size)
    return graph


def complete_graph_scheme(
    num_nodes: int, seed: int = 0, size: int = 4 * MB, name: str = ""
) -> CommunicationGraph:
    """One communication per unordered node pair, random orientation (MK2-like)."""
    _check_nodes(num_nodes)
    rng = np.random.default_rng(seed)
    graph = CommunicationGraph(name=name or f"complete-{num_nodes}-s{seed}")
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            src, dst = (u, v) if rng.random() < 0.5 else (v, u)
            graph.add_edge(src, dst, size=size)
    return graph


def random_graph_scheme(
    num_nodes: int,
    num_communications: int,
    seed: int = 0,
    size: int = 4 * MB,
    allow_parallel: bool = False,
    name: str = "",
) -> CommunicationGraph:
    """``num_communications`` random directed communications among ``num_nodes`` nodes."""
    _check_nodes(num_nodes)
    if num_communications < 1:
        raise WorkloadError(f"need at least one communication, got {num_communications}")
    max_pairs = num_nodes * (num_nodes - 1)
    if not allow_parallel and num_communications > max_pairs:
        raise WorkloadError(
            f"{num_communications} distinct ordered pairs requested but only "
            f"{max_pairs} exist among {num_nodes} nodes"
        )
    rng = np.random.default_rng(seed)
    graph = CommunicationGraph(name=name or f"random-{num_nodes}n-{num_communications}c-s{seed}")
    used: set = set()
    attempts = 0
    while len(graph) < num_communications:
        attempts += 1
        if attempts > 1000 * num_communications:
            raise WorkloadError("random scheme generation did not converge")
        src = int(rng.integers(0, num_nodes))
        dst = int(rng.integers(0, num_nodes))
        if src == dst:
            continue
        if not allow_parallel and (src, dst) in used:
            continue
        used.add((src, dst))
        graph.add_edge(src, dst, size=size)
    return graph


def bipartite_fan_scheme(
    num_senders: int, num_receivers: int, seed: int = 0, size: int = 4 * MB,
    density: float = 1.0, name: str = "",
) -> CommunicationGraph:
    """Senders 0..S-1 transmit to receivers S..S+R-1 (all-to-all or thinned)."""
    if num_senders < 1 or num_receivers < 1:
        raise WorkloadError("need at least one sender and one receiver")
    if not (0 < density <= 1):
        raise WorkloadError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    graph = CommunicationGraph(name=name or f"fan-{num_senders}x{num_receivers}-s{seed}")
    for s in range(num_senders):
        for r in range(num_receivers):
            if density >= 1.0 or rng.random() < density:
                graph.add_edge(s, num_senders + r, size=size)
    if len(graph) == 0:
        graph.add_edge(0, num_senders, size=size)
    return graph


def hotspot_scheme(
    num_sources: int, hotspot: int = 0, size: int = 4 * MB, name: str = ""
) -> CommunicationGraph:
    """Every source node sends to one hotspot node (pure incoming conflict)."""
    if num_sources < 1:
        raise WorkloadError(f"need at least one source, got {num_sources}")
    graph = CommunicationGraph(name=name or f"hotspot-{num_sources}")
    for i in range(num_sources):
        src = i + 1 if i + 1 != hotspot else num_sources + 1
        graph.add_edge(src, hotspot, size=size)
    return graph


def scheme_family(
    kind: str, sizes: Sequence[int], seed: int = 0, message_size: int = 4 * MB
) -> List[CommunicationGraph]:
    """A family of schemes of growing size, for sweeps (``kind`` in tree/complete/random)."""
    builders = {
        "tree": lambda n, s: random_tree_scheme(n, seed=s, size=message_size),
        "complete": lambda n, s: complete_graph_scheme(n, seed=s, size=message_size),
        "random": lambda n, s: random_graph_scheme(n, 2 * n, seed=s, size=message_size),
    }
    if kind not in builders:
        raise WorkloadError(f"unknown scheme family {kind!r}; known: {sorted(builders)}")
    return [builders[kind](n, seed + i) for i, n in enumerate(sizes)]
