"""HPL / Linpack workload generator (§VI.D of the paper).

The paper evaluates its models on Linpack (HPL) with a problem size of
20500, tracing the application with the MPE library and replaying the trace
in the simulator.  The communication scheme it describes is the
*increasing-ring* panel broadcast: "each task n send[s a] message to the task
n + 1".

We cannot run the real HPL + MPE, so this module generates the equivalent
event trace from the algorithm itself: a right-looking LU factorisation with
a 1-D block-cyclic column distribution,

* per panel ``k`` (``K = ceil(N / NB)`` panels): the owner task factorises
  the panel (``(N - k·NB)·NB²`` floating point operations), then the panel
  (``(N - k·NB)·NB`` doubles) travels around the ring — every task forwards
  it to its successor, which is exactly the paper's scheme;
* every task then updates its share of the trailing matrix
  (``2·(N - k·NB)²·NB / P`` flops).

The generated :class:`~repro.simulator.application.Application` has the same
structure (message count, shrinking message sizes, compute/communication
interleaving) as the paper's MPE trace, which is what the models consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import WorkloadError
from ..simulator.application import Application

__all__ = ["LinpackParameters", "generate_linpack", "hpl_total_flops"]

DOUBLE = 8  # bytes per double precision value


@dataclass(frozen=True)
class LinpackParameters:
    """Parameters of the generated HPL run."""

    #: order of the dense matrix (the paper uses 20500)
    problem_size: int = 20500
    #: blocking factor NB (HPL defaults on those clusters were 100-160)
    block_size: int = 120
    #: number of MPI tasks
    num_tasks: int = 16
    #: add a global barrier after every panel (off by default, like HPL)
    barrier_per_panel: bool = False
    #: fraction of panels to generate (1.0 = the full factorisation); useful to
    #: truncate the trace for fast tests while keeping the exact structure
    panel_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.problem_size < 1:
            raise WorkloadError(f"problem_size must be >= 1, got {self.problem_size}")
        if self.block_size < 1:
            raise WorkloadError(f"block_size must be >= 1, got {self.block_size}")
        if self.num_tasks < 2:
            raise WorkloadError(f"the ring broadcast needs >= 2 tasks, got {self.num_tasks}")
        if not (0 < self.panel_fraction <= 1):
            raise WorkloadError(f"panel_fraction must be in (0, 1], got {self.panel_fraction}")

    @property
    def num_panels(self) -> int:
        total = math.ceil(self.problem_size / self.block_size)
        return max(1, int(round(total * self.panel_fraction)))


def hpl_total_flops(problem_size: int) -> float:
    """Nominal HPL operation count: 2/3·N³ + 2·N² (the Linpack convention)."""
    n = float(problem_size)
    return (2.0 / 3.0) * n ** 3 + 2.0 * n ** 2


def _panel_message_bytes(remaining_rows: int, block_size: int) -> int:
    """Size of the broadcast panel: remaining rows × NB doubles."""
    return max(DOUBLE, remaining_rows * block_size * DOUBLE)


def generate_linpack(params: LinpackParameters | None = None, **kwargs) -> Application:
    """Generate the HPL event trace as an :class:`Application`.

    Keyword arguments override fields of :class:`LinpackParameters`, e.g.
    ``generate_linpack(problem_size=20500, num_tasks=16)``.
    """
    if params is None:
        params = LinpackParameters(**kwargs)
    elif kwargs:
        raise WorkloadError("pass either a LinpackParameters object or keyword arguments")

    n = params.problem_size
    nb = params.block_size
    p = params.num_tasks
    app = Application(num_tasks=p, name=f"hpl-n{n}-nb{nb}-p{p}")

    for k in range(params.num_panels):
        remaining = max(nb, n - k * nb)
        owner = k % p
        message = _panel_message_bytes(remaining, nb)
        tag = k

        # 1. panel factorisation on the owner: ~ remaining * NB^2 flops
        app.add_compute(owner, flops=float(remaining) * nb * nb,
                        label=f"panel-factor[{k}]")

        # 2. increasing-ring broadcast: owner -> owner+1 -> ... -> owner-1
        #    (each task n sends the panel to task n+1, the paper's scheme)
        for hop in range(p - 1):
            sender = (owner + hop) % p
            receiver = (owner + hop + 1) % p
            app.add_send(sender, receiver, message, tag=tag, label=f"panel-bcast[{k}]")
            app.add_recv(receiver, sender, message, tag=tag, label=f"panel-bcast[{k}]")

        # 3. trailing-matrix update, spread over all tasks:
        #    2 * remaining^2 * NB flops in total
        update_flops = 2.0 * float(remaining) * remaining * nb / p
        for rank in range(p):
            app.add_compute(rank, flops=update_flops, label=f"update[{k}]")

        if params.barrier_per_panel:
            app.add_barrier(label=f"panel[{k}]")

    return app
