"""Unified observability layer: metrics registry, instruments, phase timers.

See :mod:`repro.obs.registry` for the design.  Quick tour::

    from repro.obs import MetricsRegistry
    from repro.simulator import EngineConfig, Simulator

    registry = MetricsRegistry()
    config = EngineConfig(trace=sink, metrics=registry)
    Simulator.predictive(cluster, config=config).run(application)
    registry.snapshot()          # flat {"calendar.flush_s.total": ..., ...}

Attaching ``metrics`` lights up the whole stack: the engine registers its
loop and calendar counters as sources, the rate provider registers its
pricing stats and installs phase timers around the hot phases (calendar
flush, batched pricing, water-fill), and — when a trace sink is attached
too — periodic ``metrics.sample`` records are emitted every
:attr:`~repro.simulator.engine.EngineConfig.metrics_sample_every` steps.
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry, PhaseTimer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
]
