"""The unified metrics registry.

One :class:`MetricsRegistry` instance is the single observability surface of
a run: every layer that used to keep private counters (the incremental
pricing engine's :class:`~repro.core.incremental.EngineStats`, the penalty
caches' ``stats()`` dicts, the calendar's
:class:`~repro.network.fluid.CalendarStats`, the allocator's warm-start
counter) publishes into it, either through owned *instruments*
(:class:`Counter` / :class:`Gauge` / :class:`Histogram` /
:class:`PhaseTimer`) or through registered *sources* — zero-argument
callables returning a mapping of live counter values, the adapter that lets
the existing telemetry surfaces join the registry without changing their
own API (every pre-existing ``stats()`` / ``snapshot()`` consumer keeps
working).

:meth:`MetricsRegistry.snapshot` flattens everything into one
``{"name": number}`` dict (source values are prefixed ``source.key``), and
:meth:`MetricsRegistry.sample_record` wraps that snapshot in a
``metrics.sample`` :class:`~repro.trace.TraceRecord` so the periodic samples
ride the existing trace pipeline.  Attaching a registry is opt-in
(:attr:`~repro.simulator.engine.EngineConfig.metrics`); with no registry
attached every hot path pays exactly one ``is not None`` test, mirroring
the trace-sink contract, and the simulation results are bit-exact either
way (``tests/obs/test_metrics_integration.py``).

Timer values are wall-clock durations, so a trace containing
``metrics.sample`` records is *not* byte-reproducible across runs — the
records are monitoring data, not simulation state (the simulated results
stay bit-exact).

Thread-safety: instrument/source registration is locked; the increment
paths (``add``/``set``/``observe``) are plain attribute updates — atomic
enough under the GIL for monitoring counters, and free of locking cost on
the hot paths.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Callable, Dict, Mapping, Optional, Type, TypeVar, Union, cast

from ..exceptions import ReproError
from ..trace.records import TraceRecord

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimer",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}


class Gauge:
    """A point-in-time value (queue depth, active set size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}


class Histogram:
    """Streaming moments (count / total / min / max / mean) of a quantity.

    Deliberately not a bucketed histogram: the consumers (benchmark records,
    ``metrics.sample`` payloads, the campaign progress rollup) want scalar
    aggregates, and scalars keep :meth:`observe` allocation-free on hot
    paths.  Units belong in the name (``calendar.flush_s``).
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def snapshot(self) -> Dict[str, float]:
        return {
            f"{self.name}.count": self.count,
            f"{self.name}.total": self.total,
            f"{self.name}.mean": self.mean,
            f"{self.name}.min": self.min if self.min is not None else 0.0,
            f"{self.name}.max": self.max if self.max is not None else 0.0,
        }


class PhaseTimer(Histogram):
    """A histogram of phase durations in seconds.

    The profiling hook around the hot phases (calendar flush, batched
    pricing, water-fill).  Hot sites call :meth:`observe` with a
    ``perf_counter`` delta directly — the context-manager form
    (:meth:`time`) is for coarse phases where ``with`` overhead is noise.

    ``sample_every`` (default 1 = time every call) turns the timer into a
    1-in-N sampler: hot sites gate their two ``perf_counter`` calls on
    :meth:`due`, so N−1 out of N phase executions pay only one integer
    increment.  Sampled aggregates estimate the full population (the mean
    stays unbiased for steady phases); the snapshot exposes the factor as
    ``<name>.sample_every`` whenever it is not 1 so consumers can scale
    ``count``/``total`` back up.
    """

    __slots__ = ("sample_every", "_tick")

    def __init__(self, name: str, sample_every: int = 1) -> None:
        super().__init__(name)
        if sample_every < 1:
            raise ReproError(
                f"timer {name!r}: sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = sample_every
        self._tick = 0

    def due(self) -> bool:
        """True when this call should be timed (every call at factor 1)."""
        every = self.sample_every
        if every == 1:
            return True
        self._tick += 1
        if self._tick >= every:
            self._tick = 0
            return True
        return False

    def snapshot(self) -> Dict[str, float]:
        out = super().snapshot()
        if self.sample_every != 1:
            out[f"{self.name}.sample_every"] = self.sample_every
        return out

    def time(self) -> "_Timing":
        return _Timing(self)


class _Timing:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: PhaseTimer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(perf_counter() - self._start)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: everything the registry can own — all four expose snapshot() and reset()
Instrument = Union[Counter, Gauge, Histogram, PhaseTimer]

_InstrumentT = TypeVar("_InstrumentT", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Create-or-get instruments plus pluggable stats sources; one flat view.

    ``counter`` / ``gauge`` / ``histogram`` / ``timer`` return the existing
    instrument when the name is taken (so independent layers can share one
    metric), raising :class:`~repro.exceptions.ReproError` on a kind
    mismatch.  :meth:`register_source` adapts an existing telemetry surface
    (any ``() -> Mapping[str, number]``, e.g. ``PenaltyCache.stats`` or a
    stats dataclass's ``snapshot``); sources are read lazily at
    :meth:`snapshot` time, so registering one costs nothing per event.
    """

    def __init__(self, timer_sample_every: int = 1) -> None:
        if timer_sample_every < 1:
            raise ReproError(
                f"timer_sample_every must be >= 1, got {timer_sample_every}"
            )
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}
        self._sources: Dict[str, Callable[[], Mapping[str, Any]]] = {}
        #: default 1-in-N sampling factor of :meth:`timer`-created PhaseTimers
        self.timer_sample_every = int(timer_sample_every)

    # ------------------------------------------------------------ instruments
    def _instrument(self, name: str, kind: Type[_InstrumentT]) -> _InstrumentT:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name)
                self._instruments[name] = instrument
            elif type(instrument) is not kind:
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return cast(_InstrumentT, instrument)

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._instrument(name, Histogram)

    def timer(self, name: str) -> PhaseTimer:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = PhaseTimer(name, self.timer_sample_every)
                self._instruments[name] = instrument
            elif type(instrument) is not PhaseTimer:
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not PhaseTimer"
                )
            return instrument

    # ---------------------------------------------------------------- sources
    def register_source(self, name: str,
                        source: Callable[[], Mapping[str, Any]]) -> None:
        """Attach a live stats surface under ``name`` (replaces a previous one).

        Re-registration is deliberate: an engine run registers its per-run
        stats objects under stable names, so the registry always reflects
        the *current* run.
        """
        with self._lock:
            self._sources[name] = source

    def unregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    # ------------------------------------------------------------------ views
    def snapshot(self) -> Dict[str, float]:
        """One flat ``name -> number`` view of every instrument and source.

        Source values are prefixed with the source name
        (``"penalty_cache.hits"``); non-numeric source values are skipped.
        Keys are sorted so samples and JSON dumps are stable.
        """
        with self._lock:
            instruments = list(self._instruments.values())
            sources = list(self._sources.items())
        out: Dict[str, float] = {}
        for instrument in instruments:
            out.update(instrument.snapshot())
        for name, source in sources:
            for key, value in source().items():
                if _is_number(value):
                    out[f"{name}.{key}"] = value
        return {key: out[key] for key in sorted(out)}

    def sample_record(self, now: float) -> TraceRecord:
        """The :meth:`snapshot` wrapped as a ``metrics.sample`` trace record."""
        return TraceRecord(now, "metrics.sample", None, self.snapshot())

    def reset(self) -> None:
        """Zero every owned instrument (registered sources are left alone)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()
