"""Error metrics of the evaluation methodology (§VI.B of the paper).

Two metrics are used throughout the paper:

* the **relative error** of one communication,
  ``E_rel(c_k) = (T_p - T_m) / T_m × 100`` — its sign shows whether the model
  is optimistic (negative) or pessimistic (positive);
* the **average absolute error** of a graph,
  ``E_abs(G) = (1/N) Σ |E_rel(c_k)|`` — compensation-free accuracy summary.

For application traces, the per-task sums ``S_m = Σ T_m`` and ``S_p = Σ T_p``
of the communications of a task are compared instead:
``E_abs(t_i) = |(S_p - S_m) / S_m| × 100``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from .._numpy import np

from ..exceptions import ReproError
from ..simulator.report import SimulationReport

__all__ = [
    "relative_error",
    "relative_errors",
    "absolute_error",
    "GraphErrorReport",
    "compare_times",
    "TaskErrorReport",
    "compare_reports",
]


def relative_error(predicted: float, measured: float) -> float:
    """``E_rel`` in percent; raises when the measured value is zero."""
    if measured == 0:
        raise ReproError("cannot compute a relative error against a zero measurement")
    return (predicted - measured) / measured * 100.0


def relative_errors(
    predicted: Mapping[str, float], measured: Mapping[str, float]
) -> Dict[str, float]:
    """Per-communication relative errors; keys must match."""
    missing = set(measured) - set(predicted)
    if missing:
        raise ReproError(f"missing predictions for {sorted(missing)}")
    return {name: relative_error(predicted[name], measured[name]) for name in measured}


def absolute_error(relative: Iterable[float]) -> float:
    """``E_abs``: mean of the absolute relative errors, in percent."""
    values = np.asarray(list(relative), dtype=float)
    if values.size == 0:
        return 0.0
    return float(np.mean(np.abs(values)))


@dataclass
class GraphErrorReport:
    """Figure 7 style error report for one communication graph."""

    graph_name: str
    measured: Dict[str, float]
    predicted: Dict[str, float]
    relative: Dict[str, float]

    @property
    def absolute(self) -> float:
        """``E_abs(G)`` in percent."""
        return absolute_error(self.relative.values())

    @property
    def mean_relative(self) -> float:
        """Signed mean of the relative errors (optimism/pessimism indicator)."""
        values = list(self.relative.values())
        return float(np.mean(values)) if values else 0.0

    @property
    def is_pessimistic(self) -> bool:
        """True when the model over-predicts on average (positive mean error)."""
        return self.mean_relative > 0

    def table(self) -> str:
        header = f"{'com.':>6s} {'Tm [s]':>10s} {'Tp [s]':>10s} {'Erel [%]':>10s}"
        lines = [f"graph {self.graph_name}", header, "-" * len(header)]
        for name in self.measured:
            lines.append(
                f"{name:>6s} {self.measured[name]:>10.4f} {self.predicted[name]:>10.4f} "
                f"{self.relative[name]:>10.1f}"
            )
        lines.append(f"Average of absolute errors Eabs = {self.absolute:.1f}")
        return "\n".join(lines)


def compare_times(
    measured: Mapping[str, float],
    predicted: Mapping[str, float],
    graph_name: str = "",
) -> GraphErrorReport:
    """Build the Figure 7 style error report for one graph."""
    relative = relative_errors(predicted, measured)
    return GraphErrorReport(
        graph_name=graph_name,
        measured=dict(measured),
        predicted=dict(predicted),
        relative=relative,
    )


@dataclass
class TaskErrorReport:
    """Figures 8/9 style per-task error report for an application run."""

    application_name: str
    #: per-task measured sum of communication times (S_m)
    measured: Dict[int, float]
    #: per-task predicted sum of communication times (S_p)
    predicted: Dict[int, float]

    @property
    def per_task_error(self) -> Dict[int, float]:
        """``E_abs(t_i) = |(S_p - S_m)/S_m| × 100`` per task."""
        errors = {}
        for rank in self.measured:
            measured = self.measured[rank]
            predicted = self.predicted.get(rank, 0.0)
            if measured == 0:
                errors[rank] = 0.0 if predicted == 0 else float("inf")
            else:
                errors[rank] = abs((predicted - measured) / measured) * 100.0
        return errors

    @property
    def mean_error(self) -> float:
        finite = [e for e in self.per_task_error.values() if np.isfinite(e)]
        return float(np.mean(finite)) if finite else 0.0

    @property
    def max_error(self) -> float:
        finite = [e for e in self.per_task_error.values() if np.isfinite(e)]
        return float(max(finite)) if finite else 0.0

    def table(self) -> str:
        header = f"{'task':>5s} {'Sm [s]':>12s} {'Sp [s]':>12s} {'Eabs [%]':>10s}"
        lines = [f"application {self.application_name}", header, "-" * len(header)]
        errors = self.per_task_error
        for rank in sorted(self.measured):
            lines.append(
                f"{rank:>5d} {self.measured[rank]:>12.4f} "
                f"{self.predicted.get(rank, 0.0):>12.4f} {errors[rank]:>10.1f}"
            )
        lines.append(f"mean Eabs = {self.mean_error:.1f} %, max = {self.max_error:.1f} %")
        return "\n".join(lines)


def compare_reports(
    measured: SimulationReport, predicted: SimulationReport
) -> TaskErrorReport:
    """Compare two simulation reports task by task (measured vs predicted)."""
    if measured.num_tasks != predicted.num_tasks:
        raise ReproError(
            f"reports have different task counts: {measured.num_tasks} vs "
            f"{predicted.num_tasks}"
        )
    return TaskErrorReport(
        application_name=measured.application_name or predicted.application_name,
        measured=measured.communication_times(),
        predicted=predicted.communication_times(),
    )
