"""Published reference values from the paper.

Every number the paper's figures report is embedded here so that the
benchmark harness can print side-by-side comparisons (paper-measured vs
emulator-measured vs model-predicted) and so that tests can check that the
reproduced *shape* (who is penalised, by roughly what factor) matches the
publication.

Sources:

* :data:`FIGURE2_PENALTIES` — Figure 2, measured penalties of the six schemes
  on the three clusters (20 MB messages);
* :data:`FIGURE4_TIMES` — Figure 4, measured and predicted times of the
  parameter-verification scheme (4 MB messages);
* :data:`FIGURE6_TABLE` — Figure 6, state-set sums / minima / penalties of
  the Figure 5 example graph;
* :data:`FIGURE7_MYRINET` — Figure 7, measured/predicted times and errors of
  the MK1 and MK2 synthetic graphs with the Myrinet model;
* :data:`ETHERNET_PAPER_PARAMETERS` — the (β, γo, γi) triple of §V.A.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "FIGURE2_PENALTIES",
    "FIGURE4_TIMES",
    "FIGURE6_TABLE",
    "FIGURE7_MYRINET",
    "ETHERNET_PAPER_PARAMETERS",
    "paper_penalties",
]

#: Figure 2 — measured penalties per scheme, network and communication.
FIGURE2_PENALTIES: Dict[str, Dict[str, Dict[str, float]]] = {
    "S1": {
        "gigabit-ethernet": {"a": 1.0},
        "myrinet": {"a": 1.0},
        "infiniband": {"a": 1.0},
    },
    "S2": {
        "gigabit-ethernet": {"a": 1.5, "b": 1.5},
        "myrinet": {"a": 1.9, "b": 1.9},
        "infiniband": {"a": 1.725, "b": 1.725},
    },
    "S3": {
        "gigabit-ethernet": {"a": 2.25, "b": 2.25, "c": 2.25},
        "myrinet": {"a": 2.8, "b": 2.8, "c": 2.8},
        "infiniband": {"a": 2.61, "b": 2.61, "c": 2.61},
    },
    "S4": {
        "gigabit-ethernet": {"a": 2.15, "b": 2.15, "c": 2.15, "d": 1.15},
        "myrinet": {"a": 2.8, "b": 2.8, "c": 2.8, "d": 1.45},
        "infiniband": {"a": 2.61, "b": 2.61, "c": 2.61, "d": 1.14},
    },
    "S5": {
        "gigabit-ethernet": {"a": 4.4, "b": 2.6, "c": 2.6, "d": 2.6, "e": 2.6},
        "myrinet": {"a": 4.4, "b": 4.2, "c": 4.2, "d": 2.5, "e": 2.5},
        "infiniband": {"a": 3.663, "b": 3.66, "c": 3.66, "d": 2.035, "e": 2.035},
    },
    "S6": {
        "gigabit-ethernet": {"a": 4.4, "b": 2.0, "c": 3.3, "d": 2.6, "e": 2.6, "f": 1.4},
        "myrinet": {"a": 4.5, "b": 4.5, "c": 4.5, "d": 2.5, "e": 2.5, "f": 1.3},
        "infiniband": {"a": 3.935, "b": 3.935, "c": 3.935, "d": 1.995, "e": 1.995, "f": 1.01},
    },
}

#: Figure 4 — measured and predicted times (seconds) of the verification
#: scheme, 4 MB messages, Gigabit Ethernet.
FIGURE4_TIMES: Dict[str, Dict[str, float]] = {
    "a": {"measured": 0.095, "predicted": 0.095},
    "b": {"measured": 0.099, "predicted": 0.095},
    "c": {"measured": 0.118, "predicted": 0.113},
    "d": {"measured": 0.068, "predicted": 0.069},
    "e": {"measured": 0.099, "predicted": 0.103},
    "f": {"measured": 0.103, "predicted": 0.103},
}

#: Figure 6 — the state-set analysis of the Figure 5 example graph.
FIGURE6_TABLE: Dict[str, Dict[str, float]] = {
    "a": {"sum": 1, "minimum": 1, "penalty": 5.0},
    "b": {"sum": 2, "minimum": 1, "penalty": 5.0},
    "c": {"sum": 2, "minimum": 1, "penalty": 5.0},
    "d": {"sum": 2, "minimum": 2, "penalty": 2.5},
    "e": {"sum": 2, "minimum": 2, "penalty": 2.5},
    "f": {"sum": 3, "minimum": 2, "penalty": 2.5},
}

#: number of state sets of the Figure 5 graph
FIGURE6_NUM_STATE_SETS = 5

#: Figure 7 — Myrinet model accuracy on the synthetic graphs (seconds and %).
FIGURE7_MYRINET: Dict[str, Dict[str, Dict[str, float]]] = {
    "MK1": {
        "a": {"measured": 0.087, "predicted": 0.089, "relative_error": 2.3},
        "b": {"measured": 0.087, "predicted": 0.089, "relative_error": 2.3},
        "c": {"measured": 0.070, "predicted": 0.071, "relative_error": 1.4},
        "d": {"measured": 0.052, "predicted": 0.053, "relative_error": 1.9},
        "e": {"measured": 0.037, "predicted": 0.035, "relative_error": -5.4},
        "f": {"measured": 0.051, "predicted": 0.053, "relative_error": 3.9},
        "g": {"measured": 0.070, "predicted": 0.071, "relative_error": 1.4},
    },
    "MK2": {
        "a": {"measured": 0.164, "predicted": 0.177, "relative_error": 7.9},
        "b": {"measured": 0.164, "predicted": 0.177, "relative_error": 7.9},
        "c": {"measured": 0.164, "predicted": 0.177, "relative_error": 7.9},
        "d": {"measured": 0.164, "predicted": 0.177, "relative_error": 7.9},
        "e": {"measured": 0.043, "predicted": 0.053, "relative_error": 23.2},
        "f": {"measured": 0.086, "predicted": 0.085, "relative_error": -1.2},
        "g": {"measured": 0.087, "predicted": 0.085, "relative_error": -2.3},
        "h": {"measured": 0.108, "predicted": 0.101, "relative_error": -6.5},
        "i": {"measured": 0.108, "predicted": 0.101, "relative_error": -6.5},
        "j": {"measured": 0.059, "predicted": 0.073, "relative_error": 23.7},
    },
}

#: Figure 7 — average absolute errors reported by the paper.
FIGURE7_EABS = {"MK1": 2.6, "MK2": 9.5}

#: §V.A — the Ethernet model parameters estimated by the paper.
ETHERNET_PAPER_PARAMETERS = {"beta": 0.75, "gamma_o": 0.115, "gamma_i": 0.036}

#: §VI.D — tracing overhead of the MPE instrumentation.
MPE_OVERHEAD_PERCENT = 0.7

_NETWORK_KEYS = {
    "ethernet": "gigabit-ethernet",
    "gigabit-ethernet": "gigabit-ethernet",
    "gige": "gigabit-ethernet",
    "myrinet": "myrinet",
    "myrinet-2000": "myrinet",
    "infiniband": "infiniband",
    "infiniband-infinihost3": "infiniband",
    "ib": "infiniband",
}


def paper_penalties(scheme: str, network: str) -> Mapping[str, float]:
    """Look up the Figure 2 penalties of one scheme on one network.

    >>> paper_penalties("S3", "ethernet")["a"]
    2.25
    """
    key = _NETWORK_KEYS.get(network.lower())
    if key is None:
        raise KeyError(f"unknown network {network!r}")
    scheme_key = scheme.upper()
    if scheme_key not in FIGURE2_PENALTIES:
        raise KeyError(f"unknown Figure 2 scheme {scheme!r}")
    return FIGURE2_PENALTIES[scheme_key][key]
