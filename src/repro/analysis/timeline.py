"""Timeline analysis of structured simulation traces.

The end-of-run aggregates (:class:`~repro.simulator.report.SimulationReport`,
the typed stats snapshots) answer "how much happened"; this module answers
"what happened *when*" by consuming the :mod:`repro.trace` record stream of
a run — the ROADMAP's "calendar-level tracing" consumer.

Three views:

* :func:`timeline_summary` — scalar facts of one trace: time span, record
  mix, peak concurrency, background-flow and stall counts;
* :func:`timeline_bins` — the trace bucketed into fixed-width time bins with
  per-bin activation/completion/flush/injection counts and the active
  transfer count at each bin edge (a text-mode Gantt substitute);
* :func:`records_from_trace` — the ``task.event`` records of a trace
  rebuilt as :class:`~repro.simulator.report.EventRecord` rows, so every
  report helper (penalty histograms, per-rank communication times) runs
  off a trace file exactly as it runs off a live report.

All three accept a :class:`~repro.trace.TraceLog` or any iterable of
:class:`~repro.trace.TraceRecord`; empty traces produce empty-but-valid
results (no special-casing needed downstream).

:class:`StreamingTimeline` is the incremental twin: fed batches of records
as a :class:`~repro.trace.StreamingTraceReader` surfaces them, it maintains
the same summary counters and produces bins **identical** to the batch
functions on the same records (property-tested in
``tests/trace/test_stream.py``) — the engine behind ``repro trace tail``.
:func:`timeline_record` bundles summary plus bins into one plain dict, the
single in-memory record that both the text rendering
(:func:`timeline_summary_table`) and the ``--json`` output of ``repro trace
summarize`` are derived from.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import TraceError
from ..simulator.report import EventRecord
from ..trace.records import TraceLog, TraceRecord
from .tables import render_table

__all__ = [
    "timeline_summary",
    "timeline_bins",
    "timeline_record",
    "timeline_summary_table",
    "records_from_trace",
    "StreamingTimeline",
]


def _as_log(trace: Iterable[TraceRecord]) -> TraceLog:
    return trace if isinstance(trace, TraceLog) else TraceLog(trace)


def records_from_trace(trace: Iterable[TraceRecord]) -> List[EventRecord]:
    """Rebuild :class:`EventRecord` rows from a trace's ``task.event`` stream.

    The payload mirrors the report record field-for-field, so a trace file
    is a faithful substitute for the in-memory report — the same helpers
    (``penalty_histogram``, ``communication_time``, ...) apply.
    """
    records: List[EventRecord] = []
    for record in _as_log(trace).records_of("task.event"):
        data = record.data
        penalty = data.get("penalty")
        peer = data.get("peer")
        records.append(EventRecord(
            rank=int(record.subject or 0),
            index=int(data.get("index", len(records))),
            kind=str(data.get("kind", "")),
            start=float(data.get("start", record.time)),
            end=float(data.get("end", record.time)),
            size=int(data.get("size", 0)),
            peer=None if peer is None else int(peer),
            label=str(data.get("label", "")),
            penalty=None if penalty is None else float(penalty),
        ))
    return records


def timeline_summary(trace: Iterable[TraceRecord]) -> Dict[str, Any]:
    """Scalar summary of one trace (empty traces yield zeroed fields)."""
    log = _as_log(trace)
    kinds = log.kinds()
    times = [record.time for record in log]
    active = 0
    peak_active = 0
    for record in log:
        if record.kind == "calendar.activate":
            active += 1
            peak_active = max(peak_active, active)
        elif record.kind in ("calendar.complete", "calendar.cancel"):
            active -= 1
    return {
        "records": len(log),
        "t_start": min(times) if times else 0.0,
        "t_end": max(times) if times else 0.0,
        "duration": log.duration,
        "steps": kinds.get("step", 0),
        "activations": kinds.get("calendar.activate", 0),
        "completions": kinds.get("calendar.complete", 0),
        "cancellations": kinds.get("calendar.cancel", 0),
        "retimings": kinds.get("calendar.retime", 0),
        "flushes": kinds.get("calendar.flush", 0),
        "reprices": kinds.get("calendar.reprice", 0),
        "compactions": kinds.get("calendar.compaction", 0),
        "stalls": kinds.get("calendar.stall", 0),
        "injector_events": kinds.get("inject.apply", 0),
        "background_flows": kinds.get("inject.flow_start", 0),
        "task_events": kinds.get("task.event", 0),
        "peak_active_transfers": peak_active,
        "kinds": dict(sorted(kinds.items())),
    }


def _bins_from_events(events: Sequence[Tuple[float, str]],
                      bins: int) -> List[Dict[str, Any]]:
    """The binning core over ``(time, kind)`` pairs.

    Shared verbatim by the batch path (:func:`timeline_bins`) and the
    streaming path (:meth:`StreamingTimeline.bins`) so their outputs cannot
    drift apart.
    """
    if bins < 1:
        # TraceError (a ReproError) so CLI consumers (`repro trace summarize
        # --bins 0`) get the clean error path, not a traceback
        raise TraceError(f"bins must be >= 1, got {bins}")
    if not events:
        return []
    times = [time for time, _ in events]
    t_start, t_end = min(times), max(times)
    width = (t_end - t_start) / bins if t_end > t_start else 0.0
    rows: List[Dict[str, Any]] = [
        {
            "bin": index,
            "t_start": t_start + index * width,
            "t_end": t_start + (index + 1) * width if width else t_end,
            "records": 0,
            "activations": 0,
            "completions": 0,
            "cancellations": 0,
            "flushes": 0,
            "retimings": 0,
            "injections": 0,
            "task_events": 0,
            "active_after": 0,
        }
        for index in range(bins)
    ]
    active = 0
    for time, kind in events:
        if width > 0.0:
            index = min(bins - 1, int((time - t_start) / width))
        else:
            index = bins - 1
        row = rows[index]
        row["records"] += 1
        if kind == "calendar.activate":
            active += 1
            row["activations"] += 1
        elif kind == "calendar.complete":
            active -= 1
            row["completions"] += 1
        elif kind == "calendar.cancel":
            # cancels leave the active set but are NOT completions — the
            # binned table must agree with timeline_summary's split
            active -= 1
            row["cancellations"] += 1
        elif kind == "calendar.flush":
            row["flushes"] += 1
        elif kind == "calendar.retime":
            row["retimings"] += 1
        elif kind.startswith("inject."):
            row["injections"] += 1
        elif kind == "task.event":
            row["task_events"] += 1
        row["active_after"] = active
    # carry the running active count across empty bins
    running = 0
    for row in rows:
        if row["records"] == 0:
            row["active_after"] = running
        running = row["active_after"]
    return rows


def timeline_bins(trace: Iterable[TraceRecord], bins: int = 10) -> List[Dict[str, Any]]:
    """Bucket a trace into ``bins`` equal time windows.

    Each row carries the window bounds, the record count, the calendar
    activity inside it and ``active_after`` — the in-flight transfer count
    at the window's trailing edge.  An empty trace yields no rows.
    """
    log = _as_log(trace)
    return _bins_from_events([(record.time, record.kind) for record in log],
                             bins)


class StreamingTimeline:
    """Incremental timeline accumulator for live (still-growing) traces.

    :meth:`feed` it each batch a :class:`~repro.trace.StreamingTraceReader`
    poll returns; :meth:`summary` and :meth:`bins` then produce exactly
    what :func:`timeline_summary` / :func:`timeline_bins` would produce on
    the concatenation of every batch so far.  Summary counters are updated
    incrementally; binning retains only ``(time, kind)`` pairs (two machine
    words per record instead of a full payload dict).
    """

    def __init__(self) -> None:
        self._events: List[Tuple[float, str]] = []
        self._kinds: "Counter[str]" = Counter()
        self._t_min: Optional[float] = None
        self._t_max: Optional[float] = None
        self._active = 0
        self._peak_active = 0

    def feed(self, records: Iterable[TraceRecord]) -> int:
        """Absorb a batch of records; returns how many were absorbed."""
        count = 0
        for record in records:
            time, kind = record.time, record.kind
            self._events.append((time, kind))
            self._kinds[kind] += 1
            if self._t_min is None or time < self._t_min:
                self._t_min = time
            if self._t_max is None or time > self._t_max:
                self._t_max = time
            if kind == "calendar.activate":
                self._active += 1
                if self._active > self._peak_active:
                    self._peak_active = self._active
            elif kind in ("calendar.complete", "calendar.cancel"):
                self._active -= 1
            count += 1
        return count

    @property
    def records(self) -> int:
        return len(self._events)

    def summary(self) -> Dict[str, Any]:
        """Same shape (and values) as :func:`timeline_summary`."""
        kinds = self._kinds
        return {
            "records": len(self._events),
            "t_start": self._t_min if self._t_min is not None else 0.0,
            "t_end": self._t_max if self._t_max is not None else 0.0,
            "duration": (self._t_max - self._t_min)
                        if self._t_min is not None else 0.0,
            "steps": kinds.get("step", 0),
            "activations": kinds.get("calendar.activate", 0),
            "completions": kinds.get("calendar.complete", 0),
            "cancellations": kinds.get("calendar.cancel", 0),
            "retimings": kinds.get("calendar.retime", 0),
            "flushes": kinds.get("calendar.flush", 0),
            "reprices": kinds.get("calendar.reprice", 0),
            "compactions": kinds.get("calendar.compaction", 0),
            "stalls": kinds.get("calendar.stall", 0),
            "injector_events": kinds.get("inject.apply", 0),
            "background_flows": kinds.get("inject.flow_start", 0),
            "task_events": kinds.get("task.event", 0),
            "peak_active_transfers": self._peak_active,
            "kinds": dict(sorted(kinds.items())),
        }

    def bins(self, bins: int = 10) -> List[Dict[str, Any]]:
        """Same rows :func:`timeline_bins` yields on the records so far."""
        return _bins_from_events(self._events, bins)

    def record(self, bins: int = 10) -> Dict[str, Any]:
        """The :func:`timeline_record` bundle of the records so far."""
        return {"summary": self.summary(), "bins": self.bins(bins)}


def timeline_record(trace: Iterable[TraceRecord], bins: int = 10) -> Dict[str, Any]:
    """One JSON-serialisable bundle: ``{"summary": ..., "bins": [...]}``.

    The single in-memory record both output paths of ``repro trace
    summarize`` are rendered from — :func:`timeline_summary_table` for the
    text view, ``json.dumps`` of this dict for ``--json`` — so the two can
    never disagree.
    """
    log = _as_log(trace)
    return {"summary": timeline_summary(log), "bins": timeline_bins(log, bins=bins)}


def timeline_summary_table(trace: Optional[Iterable[TraceRecord]] = None,
                           bins: int = 10, title: Optional[str] = None,
                           record: Optional[Dict[str, Any]] = None) -> str:
    """Paper-style text rendering: summary header plus the binned timeline.

    Renders either a trace (computing the bundle) or a precomputed
    :func:`timeline_record` bundle passed as ``record``.
    """
    if record is None:
        if trace is None:
            raise TraceError("timeline_summary_table needs a trace or a record")
        record = timeline_record(trace, bins=bins)
    summary = record["summary"]
    header = (
        f"records: {summary['records']}  span: "
        f"[{summary['t_start']:.6f}s, {summary['t_end']:.6f}s]  "
        f"steps: {summary['steps']}  activations: {summary['activations']}  "
        f"completions: {summary['completions']}  "
        f"retimings: {summary['retimings']}  "
        f"bg flows: {summary['background_flows']}  "
        f"peak active: {summary['peak_active_transfers']}"
    )
    rows = [
        [
            f"[{row['t_start']:.4f}, {row['t_end']:.4f})",
            row["records"], row["activations"], row["completions"],
            row["cancellations"], row["flushes"], row["retimings"],
            row["injections"], row["task_events"], row["active_after"],
        ]
        for row in record["bins"]
    ]
    table = render_table(
        ["window [s]", "records", "act", "done", "cancel", "flush", "retime",
         "inject", "events", "active"],
        rows,
        title=title or f"trace timeline ({summary['records']} records)",
    )
    return header + "\n\n" + table
