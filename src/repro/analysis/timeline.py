"""Timeline analysis of structured simulation traces.

The end-of-run aggregates (:class:`~repro.simulator.report.SimulationReport`,
the typed stats snapshots) answer "how much happened"; this module answers
"what happened *when*" by consuming the :mod:`repro.trace` record stream of
a run — the ROADMAP's "calendar-level tracing" consumer.

Three views:

* :func:`timeline_summary` — scalar facts of one trace: time span, record
  mix, peak concurrency, background-flow and stall counts;
* :func:`timeline_bins` — the trace bucketed into fixed-width time bins with
  per-bin activation/completion/flush/injection counts and the active
  transfer count at each bin edge (a text-mode Gantt substitute);
* :func:`records_from_trace` — the ``task.event`` records of a trace
  rebuilt as :class:`~repro.simulator.report.EventRecord` rows, so every
  report helper (penalty histograms, per-rank communication times) runs
  off a trace file exactly as it runs off a live report.

All three accept a :class:`~repro.trace.TraceLog` or any iterable of
:class:`~repro.trace.TraceRecord`; empty traces produce empty-but-valid
results (no special-casing needed downstream).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..exceptions import TraceError
from ..simulator.report import EventRecord
from ..trace.records import TraceLog, TraceRecord
from .tables import render_table

__all__ = [
    "timeline_summary",
    "timeline_bins",
    "timeline_summary_table",
    "records_from_trace",
]


def _as_log(trace: Iterable[TraceRecord]) -> TraceLog:
    return trace if isinstance(trace, TraceLog) else TraceLog(trace)


def records_from_trace(trace: Iterable[TraceRecord]) -> List[EventRecord]:
    """Rebuild :class:`EventRecord` rows from a trace's ``task.event`` stream.

    The payload mirrors the report record field-for-field, so a trace file
    is a faithful substitute for the in-memory report — the same helpers
    (``penalty_histogram``, ``communication_time``, ...) apply.
    """
    records: List[EventRecord] = []
    for record in _as_log(trace).records_of("task.event"):
        data = record.data
        penalty = data.get("penalty")
        peer = data.get("peer")
        records.append(EventRecord(
            rank=int(record.subject or 0),
            index=int(data.get("index", len(records))),
            kind=str(data.get("kind", "")),
            start=float(data.get("start", record.time)),
            end=float(data.get("end", record.time)),
            size=int(data.get("size", 0)),
            peer=None if peer is None else int(peer),
            label=str(data.get("label", "")),
            penalty=None if penalty is None else float(penalty),
        ))
    return records


def timeline_summary(trace: Iterable[TraceRecord]) -> Dict[str, Any]:
    """Scalar summary of one trace (empty traces yield zeroed fields)."""
    log = _as_log(trace)
    kinds = log.kinds()
    times = [record.time for record in log]
    active = 0
    peak_active = 0
    for record in log:
        if record.kind == "calendar.activate":
            active += 1
            peak_active = max(peak_active, active)
        elif record.kind in ("calendar.complete", "calendar.cancel"):
            active -= 1
    return {
        "records": len(log),
        "t_start": min(times) if times else 0.0,
        "t_end": max(times) if times else 0.0,
        "duration": log.duration,
        "steps": kinds.get("step", 0),
        "activations": kinds.get("calendar.activate", 0),
        "completions": kinds.get("calendar.complete", 0),
        "cancellations": kinds.get("calendar.cancel", 0),
        "retimings": kinds.get("calendar.retime", 0),
        "flushes": kinds.get("calendar.flush", 0),
        "reprices": kinds.get("calendar.reprice", 0),
        "compactions": kinds.get("calendar.compaction", 0),
        "stalls": kinds.get("calendar.stall", 0),
        "injector_events": kinds.get("inject.apply", 0),
        "background_flows": kinds.get("inject.flow_start", 0),
        "task_events": kinds.get("task.event", 0),
        "peak_active_transfers": peak_active,
        "kinds": dict(sorted(kinds.items())),
    }


def timeline_bins(trace: Iterable[TraceRecord], bins: int = 10) -> List[Dict[str, Any]]:
    """Bucket a trace into ``bins`` equal time windows.

    Each row carries the window bounds, the record count, the calendar
    activity inside it and ``active_after`` — the in-flight transfer count
    at the window's trailing edge.  An empty trace yields no rows.
    """
    if bins < 1:
        # TraceError (a ReproError) so CLI consumers (`repro trace summarize
        # --bins 0`) get the clean error path, not a traceback
        raise TraceError(f"bins must be >= 1, got {bins}")
    log = _as_log(trace)
    if not len(log):
        return []
    times = [record.time for record in log]
    t_start, t_end = min(times), max(times)
    width = (t_end - t_start) / bins if t_end > t_start else 0.0
    rows: List[Dict[str, Any]] = [
        {
            "bin": index,
            "t_start": t_start + index * width,
            "t_end": t_start + (index + 1) * width if width else t_end,
            "records": 0,
            "activations": 0,
            "completions": 0,
            "cancellations": 0,
            "flushes": 0,
            "retimings": 0,
            "injections": 0,
            "task_events": 0,
            "active_after": 0,
        }
        for index in range(bins)
    ]
    active = 0
    for record in log:
        if width > 0.0:
            index = min(bins - 1, int((record.time - t_start) / width))
        else:
            index = bins - 1
        row = rows[index]
        row["records"] += 1
        if record.kind == "calendar.activate":
            active += 1
            row["activations"] += 1
        elif record.kind == "calendar.complete":
            active -= 1
            row["completions"] += 1
        elif record.kind == "calendar.cancel":
            # cancels leave the active set but are NOT completions — the
            # binned table must agree with timeline_summary's split
            active -= 1
            row["cancellations"] += 1
        elif record.kind == "calendar.flush":
            row["flushes"] += 1
        elif record.kind == "calendar.retime":
            row["retimings"] += 1
        elif record.kind.startswith("inject."):
            row["injections"] += 1
        elif record.kind == "task.event":
            row["task_events"] += 1
        row["active_after"] = active
    # carry the running active count across empty bins
    running = 0
    for row in rows:
        if row["records"] == 0:
            row["active_after"] = running
        running = row["active_after"]
    return rows


def timeline_summary_table(trace: Iterable[TraceRecord], bins: int = 10,
                           title: Optional[str] = None) -> str:
    """Paper-style text rendering: summary header plus the binned timeline."""
    log = _as_log(trace)
    summary = timeline_summary(log)
    header = (
        f"records: {summary['records']}  span: "
        f"[{summary['t_start']:.6f}s, {summary['t_end']:.6f}s]  "
        f"steps: {summary['steps']}  activations: {summary['activations']}  "
        f"completions: {summary['completions']}  "
        f"retimings: {summary['retimings']}  "
        f"bg flows: {summary['background_flows']}  "
        f"peak active: {summary['peak_active_transfers']}"
    )
    rows = [
        [
            f"[{row['t_start']:.4f}, {row['t_end']:.4f})",
            row["records"], row["activations"], row["completions"],
            row["cancellations"], row["flushes"], row["retimings"],
            row["injections"], row["task_events"], row["active_after"],
        ]
        for row in timeline_bins(log, bins=bins)
    ]
    table = render_table(
        ["window [s]", "records", "act", "done", "cancel", "flush", "retime",
         "inject", "events", "active"],
        rows,
        title=title or f"trace timeline ({summary['records']} records)",
    )
    return header + "\n\n" + table
