"""Evaluation metrics, the paper's published reference values and table rendering."""

from .errors import (
    GraphErrorReport,
    TaskErrorReport,
    absolute_error,
    compare_reports,
    compare_times,
    relative_error,
    relative_errors,
)
from .interference import interference_slowdown_table, interference_slowdowns
from .placement import placement_robustness, placement_robustness_table
from .reference import (
    ETHERNET_PAPER_PARAMETERS,
    FIGURE2_PENALTIES,
    FIGURE4_TIMES,
    FIGURE6_NUM_STATE_SETS,
    FIGURE6_TABLE,
    FIGURE7_EABS,
    FIGURE7_MYRINET,
    paper_penalties,
)
from .tables import (
    measured_vs_predicted_table,
    penalty_ladder_table,
    per_task_error_table,
    render_table,
)
from .timeline import (
    StreamingTimeline,
    records_from_trace,
    timeline_bins,
    timeline_record,
    timeline_summary,
    timeline_summary_table,
)

__all__ = [
    "relative_error",
    "relative_errors",
    "absolute_error",
    "GraphErrorReport",
    "TaskErrorReport",
    "compare_times",
    "compare_reports",
    "FIGURE2_PENALTIES",
    "FIGURE4_TIMES",
    "FIGURE6_TABLE",
    "FIGURE6_NUM_STATE_SETS",
    "FIGURE7_MYRINET",
    "FIGURE7_EABS",
    "ETHERNET_PAPER_PARAMETERS",
    "paper_penalties",
    "render_table",
    "penalty_ladder_table",
    "measured_vs_predicted_table",
    "per_task_error_table",
    "interference_slowdowns",
    "interference_slowdown_table",
    "placement_robustness",
    "placement_robustness_table",
    "records_from_trace",
    "timeline_bins",
    "timeline_record",
    "timeline_summary",
    "timeline_summary_table",
    "StreamingTimeline",
]
