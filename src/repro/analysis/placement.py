"""Interference-aware placement studies — ranking policies by robustness.

A campaign sweeping ``placements`` × ``interference``
(:mod:`repro.campaign.spec`) runs every application workload under every
placement policy on clean *and* loaded fabrics.  This module closes the
ROADMAP's "interference-aware placement studies" loop: it folds the
:func:`~repro.analysis.interference.interference_slowdowns` rows of a
:class:`~repro.campaign.results.CampaignResultStore` per placement policy
and ranks the policies by how little interference hurts them.

Robustness here is the placement's slowdown profile across every loaded
scenario it appears in: ``mean_slowdown`` (average loaded/clean makespan
ratio), ``max_slowdown`` (worst case) and ``mean_clean_time`` (the price
paid on an idle fabric — a policy that is robust *and* slow is not a win).
Policies are ranked by mean slowdown, ties broken by max slowdown then by
clean time.

Duck-typed like the rest of the analysis layer: anything iterable yielding
objects with ``axes`` / ``metrics`` mappings works, so stored JSON results
round-trip unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .interference import interference_slowdowns
from .tables import render_table

__all__ = ["placement_robustness", "placement_robustness_table"]

#: coordinates a robustness group shares (everything but placement/interference)
_CONTEXT_AXES = ("kind", "workload", "workload_params", "network", "model",
                 "num_hosts")


def placement_robustness(
    store: Iterable,
    group_by: Tuple[str, ...] = _CONTEXT_AXES,
) -> List[Dict[str, Any]]:
    """Per-(context, placement) robustness rows, ranked within each context.

    Every loaded scenario with a clean twin contributes one slowdown sample
    to its ``(context, placement)`` bucket; contexts are the sweep
    coordinates in ``group_by``.  Rows carry ``samples`` (loaded scenarios
    aggregated), ``mean_slowdown`` / ``max_slowdown``, ``mean_clean_time``
    and ``rank`` (1 = most robust placement of its context).  Scenarios
    without a clean twin or without a placement axis are skipped; an empty
    store yields an empty list.
    """
    buckets: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for row in interference_slowdowns(store):
        if row["slowdown"] is None or row.get("placement") is None:
            continue
        if row["interference"] == "none":
            continue
        context = tuple(row.get(name) for name in group_by)
        key = context + (row["placement"],)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = {
                **{name: row.get(name) for name in group_by},
                "placement": row["placement"],
                "samples": 0,
                "slowdowns": [],
                "clean_times": [],
            }
        bucket["samples"] += 1
        bucket["slowdowns"].append(row["slowdown"])
        # a non-None slowdown implies a non-None positive baseline_time
        bucket["clean_times"].append(row["baseline_time"])

    rows: List[Dict[str, Any]] = []
    for bucket in buckets.values():
        slowdowns = bucket.pop("slowdowns")
        clean_times = bucket.pop("clean_times")
        bucket["mean_slowdown"] = sum(slowdowns) / len(slowdowns)
        bucket["max_slowdown"] = max(slowdowns)
        bucket["mean_clean_time"] = sum(clean_times) / len(clean_times)
        rows.append(bucket)

    # rank placements within each context: robust first, cheap tie-break
    def sort_key(row: Dict[str, Any]) -> Tuple:
        return (row["mean_slowdown"], row["max_slowdown"],
                row["mean_clean_time"])

    by_context: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
    for row in rows:
        context = tuple(row.get(name) for name in group_by)
        by_context.setdefault(context, []).append(row)
    ordered: List[Dict[str, Any]] = []
    for context in sorted(by_context, key=repr):
        ranked = sorted(by_context[context], key=sort_key)
        for position, row in enumerate(ranked, start=1):
            row["rank"] = position
            ordered.append(row)
    return ordered


def placement_robustness_table(
    store: Iterable,
    rows: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """Paper-style text table of :func:`placement_robustness`.

    Pass precomputed ``rows`` to avoid re-running the slowdown join (the
    CLI computes them once to decide whether to print at all).
    """
    if rows is None:
        rows = placement_robustness(store)
    body = []
    for row in rows:
        body.append([
            row.get("workload"), row.get("network"),
            "-" if row.get("num_hosts") is None else row["num_hosts"],
            row["placement"], row["samples"],
            row["mean_slowdown"], row["max_slowdown"],
            row["mean_clean_time"], row["rank"],
        ])
    return render_table(
        ["workload", "network", "hosts", "placement", "loaded runs",
         "mean slowdown", "max slowdown", "clean T [s]", "rank"],
        body,
        title=f"placement robustness under interference ({len(rows)} rows)",
        float_format="{:.4f}",
    )
