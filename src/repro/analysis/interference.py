"""Foreground slowdown under interference — campaign-level analysis.

A campaign sweeping an ``interference`` axis (see
:mod:`repro.campaign.spec`) runs every application scenario once per
injector configuration.  This module pairs each *loaded* scenario with its
*clean* twin (the scenario sharing every sweep coordinate except the
interference entry, with interference ``"none"``) and reports the
foreground slowdown — the ratio of the loaded makespan to the clean one,
the quantity ``benchmarks/bench_interference.py`` tracks over background
intensity.

The functions are duck-typed over
:class:`~repro.campaign.results.CampaignResultStore` (anything iterable
yielding objects with ``axes`` and ``metrics`` mappings works), so stored
JSON results round-trip through them unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .tables import render_table

__all__ = ["interference_slowdowns", "interference_slowdown_table"]

#: the sweep coordinates that identify a scenario's clean twin
#: (workload_params keeps same-name workloads with different parameters —
#: e.g. a 1 MB and a 4 MB broadcast — from colliding on one baseline)
_GROUP_AXES = ("kind", "workload", "workload_params", "network", "model",
               "num_hosts", "placement", "seed")


def _group_key(axes: Dict[str, Any]) -> Tuple[Any, ...]:
    return tuple(axes.get(name) for name in _GROUP_AXES)


def interference_slowdowns(store: Iterable) -> List[Dict[str, Any]]:
    """Slowdown rows of every application scenario of a campaign.

    Each row carries the scenario's sweep coordinates, its interference
    name, its ``total_time``, the clean twin's ``baseline_time`` and the
    ``slowdown`` ratio (``None`` when no clean twin exists in the store,
    e.g. a campaign that only ran loaded fabrics).  Rows come back in
    scenario order; graph scenarios (no time dimension, never loaded) are
    skipped.
    """
    results = [r for r in store
               if r.axes.get("interference") is not None]
    baselines: Dict[Tuple[Any, ...], float] = {}
    for result in results:
        if result.axes["interference"] == "none":
            baselines[_group_key(result.axes)] = float(
                result.metrics.get("total_time", 0.0)
            )
    rows: List[Dict[str, Any]] = []
    for result in results:
        axes = result.axes
        total_time = float(result.metrics.get("total_time", 0.0))
        baseline: Optional[float] = baselines.get(_group_key(axes))
        slowdown: Optional[float] = None
        if baseline is not None and baseline > 0.0:
            slowdown = total_time / baseline
        row = {name: axes.get(name) for name in _GROUP_AXES}
        row.update({
            "scenario_id": axes.get("scenario_id"),
            "interference": axes["interference"],
            "total_time": total_time,
            "baseline_time": baseline,
            "slowdown": slowdown,
        })
        rows.append(row)
    return rows


def interference_slowdown_table(store: Iterable) -> str:
    """Paper-style text table of :func:`interference_slowdowns`."""
    rows = interference_slowdowns(store)
    body = []
    for row in rows:
        body.append([
            row["scenario_id"], row["workload"], row["network"],
            row["placement"] or "-", row["interference"],
            row["total_time"],
            "-" if row["baseline_time"] is None else row["baseline_time"],
            "-" if row["slowdown"] is None else row["slowdown"],
        ])
    return render_table(
        ["scenario", "workload", "network", "placement", "interference",
         "T [s]", "clean T [s]", "slowdown"],
        body,
        title=f"foreground slowdown under interference ({len(rows)} scenarios)",
        float_format="{:.4f}",
    )
