"""Paper-style table rendering.

The benchmark harness prints its results as plain-text tables shaped like the
paper's figures (the original uses diagrams and tables; we emit aligned text
so that the comparison against the published numbers is a diff, not a chart).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from .._numpy import np


__all__ = [
    "render_table",
    "penalty_ladder_table",
    "measured_vs_predicted_table",
    "per_task_error_table",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    formatted = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def penalty_ladder_table(
    results: Mapping[str, Mapping[str, Mapping[str, float]]],
    reference: Optional[Mapping[str, Mapping[str, Mapping[str, float]]]] = None,
    networks: Sequence[str] = ("gigabit-ethernet", "myrinet", "infiniband"),
    title: str = "Figure 2 - penalties per scheme and network",
) -> str:
    """Figure 2 style table.

    ``results[scheme][network][communication] = penalty``; when ``reference``
    (the paper's values) is given, each cell shows ``ours (paper)``.
    """
    headers = ["scheme", "com."] + [str(n) for n in networks]
    rows: List[List[object]] = []
    for scheme, per_network in results.items():
        comms = sorted({c for network in per_network.values() for c in network})
        for comm in comms:
            row: List[object] = [scheme, comm]
            for network in networks:
                value = per_network.get(network, {}).get(comm)
                cell = "-" if value is None else f"{value:.2f}"
                if reference is not None:
                    ref = reference.get(scheme, {}).get(network, {}).get(comm)
                    if ref is not None:
                        cell += f" ({ref:.2f})"
                row.append(cell)
            rows.append(row)
    return render_table(headers, rows, title=title)


def measured_vs_predicted_table(
    measured: Mapping[str, float],
    predicted: Mapping[str, float],
    relative_errors: Optional[Mapping[str, float]] = None,
    title: str = "",
    paper_measured: Optional[Mapping[str, float]] = None,
    paper_predicted: Optional[Mapping[str, float]] = None,
) -> str:
    """Figure 4 / Figure 7 style table: Tm, Tp, Erel per communication."""
    headers = ["com.", "Tm [s]", "Tp [s]", "Erel [%]"]
    if paper_measured is not None:
        headers += ["paper Tm", "paper Tp"]
    rows: List[List[object]] = []
    for name in measured:
        tm = measured[name]
        tp = predicted[name]
        erel = (
            relative_errors[name]
            if relative_errors is not None
            else (tp - tm) / tm * 100.0 if tm else 0.0
        )
        row: List[object] = [name, tm, tp, erel]
        if paper_measured is not None:
            row.append(paper_measured.get(name, float("nan")))
            row.append((paper_predicted or {}).get(name, float("nan")))
        rows.append(row)
    table = render_table(headers, rows, title=title, float_format="{:.4f}")
    errors = [
        abs(relative_errors[name]) if relative_errors is not None
        else abs((predicted[name] - measured[name]) / measured[name] * 100.0)
        for name in measured if measured[name]
    ]
    eabs = float(np.mean(errors)) if errors else 0.0
    return table + f"\nAverage of absolute errors Eabs = {eabs:.1f} %"


def per_task_error_table(
    measured: Mapping[int, float],
    predicted: Mapping[int, float],
    title: str = "",
) -> str:
    """Figures 8/9 style table: per-task S_m, S_p and absolute error."""
    headers = ["task", "Sm [s]", "Sp [s]", "Eabs [%]"]
    rows: List[List[object]] = []
    errors: List[float] = []
    for rank in sorted(measured):
        sm = measured[rank]
        sp = predicted.get(rank, 0.0)
        err = abs((sp - sm) / sm * 100.0) if sm else 0.0
        errors.append(err)
        rows.append([rank, sm, sp, err])
    table = render_table(headers, rows, title=title, float_format="{:.4f}")
    mean_error = float(np.mean(errors)) if errors else 0.0
    return table + f"\nmean per-task Eabs = {mean_error:.1f} %"
