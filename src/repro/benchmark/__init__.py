"""Penalty measurement tooling (the paper's benchmark software) and sweeps."""

from .penalty_tool import PenaltyMeasurement, PenaltyTool
from .runner import ExperimentRunner, SchemeResult, SweepResult

__all__ = [
    "PenaltyTool",
    "PenaltyMeasurement",
    "ExperimentRunner",
    "SchemeResult",
    "SweepResult",
]
