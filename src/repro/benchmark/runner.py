"""Experiment runner: sweeps of schemes × networks × models.

The benchmark harness (``benchmarks/``) regenerates every table and figure of
the paper; this module contains the shared orchestration so that the
benchmark files stay declarative: run a scheme on the emulator of each
network, predict it with each model, and collect measured/predicted pairs for
the analysis layer.

Predictions run through the campaign engine's cached pricing path
(:func:`repro.core.incremental.cached_predict`): one
:class:`~repro.core.incremental.PenaltyCache` is shared across every scheme,
network and model of a sweep, so near-identical graphs are priced once —
:attr:`ExperimentRunner.stats` reports the work actually performed.  The
predicted penalties and times are bit-exact with direct
:meth:`~repro.core.penalty.ContentionModel.predict` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.graph import CommunicationGraph
from ..core.incremental import EngineStats, PenaltyCache, cached_predict
from ..core.penalty import ContentionModel, LinearCostModel
from ..core.registry import model_for_network
from ..network.technologies import get_technology
from .penalty_tool import PenaltyMeasurement, PenaltyTool

__all__ = ["SchemeResult", "SweepResult", "ExperimentRunner"]


@dataclass
class SchemeResult:
    """Measured and predicted quantities for one scheme on one network."""

    scheme_name: str
    network: str
    measurement: PenaltyMeasurement
    predicted_penalties: Dict[str, float]
    predicted_times: Dict[str, float]
    measured_times: Dict[str, float]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.measurement.penalties)

    def rows(self) -> List[Dict[str, float]]:
        """One dict per communication with measured/predicted values."""
        rows = []
        for name in self.names:
            measured_t = self.measured_times[name]
            predicted_t = self.predicted_times[name]
            rows.append({
                "communication": name,
                "measured_time": measured_t,
                "predicted_time": predicted_t,
                "measured_penalty": self.measurement.penalties[name],
                "predicted_penalty": self.predicted_penalties[name],
                "relative_error_percent": 100.0 * (predicted_t - measured_t) / measured_t,
            })
        return rows


@dataclass
class SweepResult:
    """Results of a sweep over several schemes and/or networks."""

    results: List[SchemeResult] = field(default_factory=list)

    def for_network(self, network: str) -> List[SchemeResult]:
        return [r for r in self.results if r.network == network]

    def for_scheme(self, scheme_name: str) -> List[SchemeResult]:
        return [r for r in self.results if r.scheme_name == scheme_name]


class ExperimentRunner:
    """Runs schemes against the emulator and a model for a set of networks.

    Parameters
    ----------
    networks, iterations, num_hosts:
        The emulated clusters to measure on.
    cache:
        Shared penalty cache for the model predictions.  ``None`` creates a
        private per-runner cache (still shared across every scheme of the
        runner's sweeps); pass an instance to pool several runners — or a
        :class:`~repro.campaign.persistence.PersistentPenaltyCache` to stay
        warm across processes.
    """

    def __init__(self, networks: Sequence[str] = ("ethernet", "myrinet", "infiniband"),
                 iterations: int = 3, num_hosts: int = 64,
                 cache: Optional[PenaltyCache] = None) -> None:
        self.networks = tuple(networks)
        self.tools: Dict[str, PenaltyTool] = {
            name: PenaltyTool(name, iterations=iterations, num_hosts=num_hosts)
            for name in self.networks
        }
        self.cache = cache if cache is not None else PenaltyCache()
        #: model-evaluation / cache-traffic counters over every prediction
        self.stats = EngineStats()

    def cost_model(self, network: str) -> LinearCostModel:
        return LinearCostModel.for_technology(get_technology(network))

    def run_scheme(
        self,
        graph: CommunicationGraph,
        network: str,
        model: Optional[ContentionModel] = None,
    ) -> SchemeResult:
        """Measure ``graph`` on the emulator of ``network`` and predict it with ``model``."""
        tool = self.tools.get(network) or PenaltyTool(network)
        model = model or model_for_network(network)
        measurement = tool.measure(graph)
        cost = self.cost_model(network)
        prediction = cached_predict(model, graph, cost, cache=self.cache,
                                    stats=self.stats)
        return SchemeResult(
            scheme_name=graph.name,
            network=network,
            measurement=measurement,
            predicted_penalties=prediction.penalties,
            predicted_times=prediction.times,
            measured_times=measurement.times,
        )

    def run_ladder(
        self,
        schemes: Mapping[str, CommunicationGraph],
        networks: Optional[Sequence[str]] = None,
    ) -> SweepResult:
        """Measure a family of schemes on every network (Figure 2 style sweep)."""
        sweep = SweepResult()
        for network in networks or self.networks:
            for graph in schemes.values():
                sweep.results.append(self.run_scheme(graph, network))
        return sweep

    def run_models_comparison(
        self,
        graph: CommunicationGraph,
        network: str,
        models: Sequence[ContentionModel],
    ) -> Dict[str, SchemeResult]:
        """Compare several models against one measured scheme (baseline ablation)."""
        return {model.name: self.run_scheme(graph, network, model) for model in models}
