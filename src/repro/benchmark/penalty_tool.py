"""Penalty measurement software (§IV.B of the paper).

The paper's tool takes (1) an iteration count for ``MPI_Send``, (2) a
referential time — the time of a 20 MB send from node 0 to node 1 with no
other communication — and (3) a scheme description, and reports the penalty
``P_i = T_i / T_ref`` of every communication task.

:class:`PenaltyTool` reproduces that workflow against any *measurer* — by
default the calibrated cluster emulator, but a contention model can also be
plugged in (useful to compare model and emulator on the same footing), and so
could a real cluster if one were available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .._numpy import np

from ..core.graph import CommunicationGraph
from ..core.penalty import ContentionModel
from ..exceptions import SimulationError
from ..network.emulator import ClusterEmulator
from ..network.technologies import NetworkTechnology
from ..units import MB, format_time

__all__ = ["PenaltyMeasurement", "PenaltyTool"]


@dataclass
class PenaltyMeasurement:
    """Result of measuring one scheme."""

    scheme_name: str
    network: str
    reference_time: float
    #: per-communication mean time over the iterations (seconds)
    times: Dict[str, float]
    #: per-communication penalty P_i = T_i / T_ref
    penalties: Dict[str, float]
    iterations: int = 1

    def penalty(self, name: str) -> float:
        return self.penalties[name]

    @property
    def mean_penalty(self) -> float:
        return float(np.mean(list(self.penalties.values()))) if self.penalties else 0.0

    @property
    def max_penalty(self) -> float:
        return float(max(self.penalties.values())) if self.penalties else 0.0

    def table(self) -> str:
        """Figure 2 style listing of the measured penalties."""
        lines = [
            f"scheme {self.scheme_name} on {self.network} "
            f"(T_ref = {format_time(self.reference_time)}, {self.iterations} iteration(s))"
        ]
        for name, penalty in self.penalties.items():
            lines.append(
                f"  {name:>4s}  T = {format_time(self.times[name]):>12s}   "
                f"penalty = {penalty:5.2f}"
            )
        return "\n".join(lines)


class PenaltyTool:
    """The paper's measurement software, bound to an emulated cluster."""

    def __init__(
        self,
        network: NetworkTechnology | str | ClusterEmulator = "ethernet",
        iterations: int = 5,
        reference_size: int = 20 * MB,
        num_hosts: int = 64,
    ) -> None:
        if iterations < 1:
            raise SimulationError(f"iterations must be >= 1, got {iterations}")
        if isinstance(network, ClusterEmulator):
            self.emulator = network
        else:
            self.emulator = ClusterEmulator(network, num_hosts=num_hosts)
        self.iterations = int(iterations)
        self.reference_size = int(reference_size)

    # ---------------------------------------------------------------- basics
    @property
    def technology(self) -> NetworkTechnology:
        return self.emulator.technology

    def reference_time(self, size: Optional[int] = None) -> float:
        """The referential time: an isolated send of ``reference_size`` bytes."""
        return self.emulator.reference_time(size or self.reference_size)

    # ------------------------------------------------------------ measurement
    def measure(self, graph: CommunicationGraph) -> PenaltyMeasurement:
        """Measure a scheme: every communication starts together (post-barrier).

        The emulator is deterministic, so "iterations" average identical
        runs; the parameter is kept for interface parity with the paper's
        tool (which needed it to smooth real-cluster noise) and for measurers
        that do add noise.
        """
        per_run_times = []
        for _ in range(self.iterations):
            per_run_times.append(self.emulator.measure_times(graph))
        names = [comm.name for comm in graph]
        times = {
            name: float(np.mean([run[name] for run in per_run_times])) for name in names
        }
        penalties = {}
        for comm in graph:
            reference = self.emulator.reference_time(comm.size)
            penalties[comm.name] = times[comm.name] / reference
        return PenaltyMeasurement(
            scheme_name=graph.name,
            network=self.technology.name,
            reference_time=self.reference_time(),
            times=times,
            penalties=penalties,
            iterations=self.iterations,
        )

    def measure_penalties(self, graph: CommunicationGraph) -> Dict[str, float]:
        """Just the penalties (the signature calibration functions expect)."""
        return self.measure(graph).penalties

    def measure_many(
        self, schemes: Mapping[str, CommunicationGraph]
    ) -> Dict[str, PenaltyMeasurement]:
        """Measure a dictionary of schemes (e.g. the Figure 2 ladder)."""
        return {key: self.measure(graph) for key, graph in schemes.items()}

    # ------------------------------------------------------------- comparison
    def compare_with_model(
        self, graph: CommunicationGraph, model: ContentionModel
    ) -> Dict[str, Dict[str, float]]:
        """Measured vs model-predicted penalties for one scheme."""
        measured = self.measure(graph).penalties
        predicted = model.penalties(graph)
        return {
            name: {
                "measured": measured[name],
                "predicted": predicted[name],
                "relative_error_percent": 100.0 * (predicted[name] - measured[name]) / measured[name],
            }
            for name in measured
        }
