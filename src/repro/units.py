"""Unit helpers used across the library.

The library internally works in **bytes**, **seconds** and **bytes per
second**.  These helpers exist so that user-facing code (examples, the scheme
description language, cluster specs) can express quantities in the units the
paper uses (MB messages, Gbit/s links, GHz processors, GFLOPS) without
scattering magic constants.

The paper's message sizes (20 MB reference messages, 4 MB calibration
messages) are decimal megabytes, matching MPI benchmark conventions of the
time, so ``MB`` is :math:`10^6` bytes here.  Binary units are provided with
the ``i`` suffix (``KiB``, ``MiB``, ``GiB``).
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "KiB", "MiB", "GiB",
    "KBIT", "MBIT", "GBIT",
    "bytes_per_second_from_gbits", "bytes_per_second_from_mbits",
    "parse_size", "format_size", "format_time", "format_rate",
    "USEC", "MSEC",
]

# Decimal byte units.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary byte units.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

# Bit units expressed in bytes (for link speeds).
KBIT = 1_000 / 8.0
MBIT = 1_000_000 / 8.0
GBIT = 1_000_000_000 / 8.0

# Time units in seconds.
USEC = 1e-6
MSEC = 1e-3

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KB, "kb": KB,
    "m": MB, "mb": MB,
    "g": GB, "gb": GB,
    "ki": KiB, "kib": KiB,
    "mi": MiB, "mib": MiB,
    "gi": GiB, "gib": GiB,
}


def bytes_per_second_from_gbits(gbits: float) -> float:
    """Convert a link speed in Gbit/s to bytes per second."""
    return gbits * GBIT


def bytes_per_second_from_mbits(mbits: float) -> float:
    """Convert a link speed in Mbit/s to bytes per second."""
    return mbits * MBIT


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable message size into bytes.

    Accepts plain integers, floats, or strings such as ``"20M"``, ``"4MB"``,
    ``"512k"``, ``"1GiB"``.  Raises :class:`ValueError` for malformed input or
    negative sizes.

    >>> parse_size("20M")
    20000000
    >>> parse_size("4MB")
    4000000
    >>> parse_size(1024)
    1024
    """
    if isinstance(text, (int, float)):
        value = float(text)
        suffix = ""
    else:
        s = str(text).strip().lower()
        idx = len(s)
        while idx > 0 and not (s[idx - 1].isdigit() or s[idx - 1] == "."):
            idx -= 1
        number, suffix = s[:idx], s[idx:].strip()
        if not number:
            raise ValueError(f"size {text!r} has no numeric part")
        try:
            value = float(number)
        except ValueError as exc:  # pragma: no cover - defensive
            raise ValueError(f"cannot parse size {text!r}") from exc
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    if value < 0:
        raise ValueError(f"size must be non-negative, got {text!r}")
    return int(round(value * _SUFFIXES[suffix]))


def format_size(num_bytes: float) -> str:
    """Format a byte count using the largest convenient decimal unit."""
    num_bytes = float(num_bytes)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "kB")):
        if abs(num_bytes) >= unit:
            return f"{num_bytes / unit:.3g} {name}"
    return f"{num_bytes:.0f} B"


def format_time(seconds: float) -> str:
    """Format a duration with an adapted unit (s, ms, µs)."""
    seconds = float(seconds)
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f} s"
    if abs(seconds) >= MSEC:
        return f"{seconds / MSEC:.3f} ms"
    return f"{seconds / USEC:.1f} us"


def format_rate(bytes_per_second: float) -> str:
    """Format a bandwidth in MB/s or GB/s."""
    if abs(bytes_per_second) >= GB:
        return f"{bytes_per_second / GB:.3f} GB/s"
    return f"{bytes_per_second / MB:.1f} MB/s"
