"""SMP node description.

The paper's clusters are built from dual-socket SMP nodes (the InfiniBand
cluster has quad-core sockets); a node hosts several MPI tasks which share
its NIC — the very situation that creates the outgoing / incoming / income-
outgo conflicts studied by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import TopologyError
from ..units import GB

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one SMP node."""

    #: marketing name of the node / CPU ("AMD Opteron 248", ...)
    cpu_model: str
    #: number of sockets
    sockets: int
    #: cores per socket
    cores_per_socket: int
    #: clock frequency in GHz
    frequency_ghz: float
    #: main memory in bytes
    memory: int
    #: peak double-precision FLOP/s per core (used by the compute-event model)
    flops_per_core: float

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise TopologyError(f"a node needs at least one socket, got {self.sockets}")
        if self.cores_per_socket < 1:
            raise TopologyError(
                f"a node needs at least one core per socket, got {self.cores_per_socket}"
            )
        if self.frequency_ghz <= 0:
            raise TopologyError(f"frequency must be positive, got {self.frequency_ghz}")
        if self.memory <= 0:
            raise TopologyError(f"memory must be positive, got {self.memory}")
        if self.flops_per_core <= 0:
            raise TopologyError(f"flops_per_core must be positive, got {self.flops_per_core}")

    @property
    def cores(self) -> int:
        """Total number of cores of the node."""
        return self.sockets * self.cores_per_socket

    @property
    def peak_flops(self) -> float:
        """Aggregate peak FLOP/s of the node."""
        return self.cores * self.flops_per_core

    def describe(self) -> str:
        return (
            f"{self.sockets}x {self.cpu_model} @ {self.frequency_ghz:.1f} GHz "
            f"({self.cores} cores, {self.memory / GB:.0f} GB RAM)"
        )


#: AMD Opteron 248 (2.2 GHz family run at 2.0 GHz in the paper's e326 nodes);
#: 2 FLOP/cycle SSE2 double precision.
OPTERON_248 = NodeSpec(
    cpu_model="AMD Opteron 248",
    sockets=2,
    cores_per_socket=1,
    frequency_ghz=2.0,
    memory=4 * GB,
    flops_per_core=4.0e9,
)

#: AMD Opteron 246 (2.0 GHz) used by the IBM e325 Myrinet cluster.
OPTERON_246 = NodeSpec(
    cpu_model="AMD Opteron 246",
    sockets=2,
    cores_per_socket=1,
    frequency_ghz=2.0,
    memory=2 * GB,
    flops_per_core=4.0e9,
)

#: Intel Xeon 5150 "Woodcrest" (2.4 GHz, dual core, 4 FLOP/cycle) used by the
#: BULL Novascale InfiniBand cluster (2 sockets x 2 cores = 4 cores/node).
WOODCREST_2_4 = NodeSpec(
    cpu_model="Intel Woodcrest 2.4GHz",
    sockets=2,
    cores_per_socket=2,
    frequency_ghz=2.4,
    memory=4 * GB,
    flops_per_core=9.6e9,
)
