"""Task placement (the "scheduling of tasks on nodes" input of §VI.A).

The paper evaluates three placements of MPI tasks on nodes:

* **RRN** — Round-Robin per Node: task ``i`` runs on node ``i mod N`` (tasks
  are spread across nodes first);
* **RRP** — Round-Robin per Processor: nodes are filled core by core (task
  ``i`` runs on node ``i // cores_per_node``);
* **Random** — tasks are assigned to cores uniformly at random (seeded).

A :class:`Placement` maps every MPI rank to a ``(node, core)`` pair and is
what turns a rank-level application trace into the node-level communication
graphs the contention models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from .._numpy import np

from ..exceptions import SchedulingError
from .spec import ClusterSpec

__all__ = [
    "Placement",
    "round_robin_per_node",
    "round_robin_per_processor",
    "random_placement",
    "user_defined_placement",
    "make_placement",
    "PLACEMENT_POLICIES",
]


@dataclass(frozen=True)
class Placement:
    """Mapping from MPI rank to (node, core)."""

    policy: str
    #: rank -> node index
    node_of_rank: Tuple[int, ...]
    #: rank -> core index inside the node
    core_of_rank: Tuple[int, ...]
    cluster: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if len(self.node_of_rank) != len(self.core_of_rank):
            raise SchedulingError("node and core mappings must have the same length")

    @property
    def num_tasks(self) -> int:
        return len(self.node_of_rank)

    def node(self, rank: int) -> int:
        self._check_rank(rank)
        return self.node_of_rank[rank]

    def core(self, rank: int) -> int:
        self._check_rank(rank)
        return self.core_of_rank[rank]

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.num_tasks):
            raise SchedulingError(f"rank {rank} outside placement of {self.num_tasks} tasks")

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when both ranks share an SMP node (intra-node communication)."""
        return self.node(rank_a) == self.node(rank_b)

    @property
    def nodes_used(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.node_of_rank)))

    def ranks_on_node(self, node: int) -> Tuple[int, ...]:
        return tuple(r for r, n in enumerate(self.node_of_rank) if n == node)

    def tasks_per_node(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for node in self.node_of_rank:
            counts[node] = counts.get(node, 0) + 1
        return counts

    def describe(self) -> str:
        lines = [f"Placement ({self.policy}) of {self.num_tasks} tasks:"]
        for node in self.nodes_used:
            ranks = ", ".join(str(r) for r in self.ranks_on_node(node))
            lines.append(f"  node {node}: ranks {ranks}")
        return "\n".join(lines)


def _check_capacity(cluster: ClusterSpec, num_tasks: int, oversubscribe: bool) -> None:
    if num_tasks < 1:
        raise SchedulingError(f"need at least one task, got {num_tasks}")
    if not oversubscribe and num_tasks > cluster.total_cores:
        raise SchedulingError(
            f"{num_tasks} tasks do not fit on {cluster.total_cores} cores of "
            f"{cluster.name!r}; pass oversubscribe=True to allow it"
        )


def round_robin_per_node(
    cluster: ClusterSpec, num_tasks: int, oversubscribe: bool = False
) -> Placement:
    """RRN: ranks are dealt to nodes cyclically (rank i -> node i mod N)."""
    _check_capacity(cluster, num_tasks, oversubscribe)
    nodes_needed = min(cluster.num_nodes, num_tasks)
    node_of_rank: List[int] = []
    core_counter: Dict[int, int] = {}
    for rank in range(num_tasks):
        node = rank % nodes_needed
        node_of_rank.append(node)
        core_counter[node] = core_counter.get(node, 0)
    core_of_rank: List[int] = []
    seen: Dict[int, int] = {}
    for node in node_of_rank:
        core_of_rank.append(seen.get(node, 0))
        seen[node] = seen.get(node, 0) + 1
    return Placement("RRN", tuple(node_of_rank), tuple(core_of_rank), cluster)


def round_robin_per_processor(
    cluster: ClusterSpec, num_tasks: int, oversubscribe: bool = False
) -> Placement:
    """RRP: nodes are filled core by core (rank i -> node i // cores_per_node)."""
    _check_capacity(cluster, num_tasks, oversubscribe)
    cores = cluster.cores_per_node
    node_of_rank = tuple((rank // cores) % cluster.num_nodes for rank in range(num_tasks))
    core_of_rank = tuple(rank % cores for rank in range(num_tasks))
    return Placement("RRP", node_of_rank, core_of_rank, cluster)


def random_placement(
    cluster: ClusterSpec, num_tasks: int, seed: int = 0, oversubscribe: bool = False
) -> Placement:
    """Random placement: tasks are assigned to free cores uniformly at random."""
    _check_capacity(cluster, num_tasks, oversubscribe)
    rng = np.random.default_rng(seed)
    slots = [(node, core) for node in range(cluster.num_nodes)
             for core in range(cluster.cores_per_node)]
    if num_tasks <= len(slots):
        chosen_indices = rng.permutation(len(slots))[:num_tasks]
        chosen = [slots[i] for i in chosen_indices]
    else:
        # oversubscribed: sample with replacement beyond the core count
        chosen = [slots[i] for i in rng.integers(0, len(slots), size=num_tasks)]
    node_of_rank = tuple(node for node, _ in chosen)
    core_of_rank = tuple(core for _, core in chosen)
    return Placement(f"Random(seed={seed})", node_of_rank, core_of_rank, cluster)


def user_defined_placement(
    cluster: ClusterSpec, node_of_rank: Sequence[int], core_of_rank: Sequence[int] | None = None
) -> Placement:
    """User-defined placement (the paper's simulator also accepts explicit maps)."""
    node_of_rank = tuple(int(n) for n in node_of_rank)
    for node in node_of_rank:
        if not (0 <= node < cluster.num_nodes):
            raise SchedulingError(f"node {node} outside cluster of {cluster.num_nodes} nodes")
    if core_of_rank is None:
        seen: Dict[int, int] = {}
        cores: List[int] = []
        for node in node_of_rank:
            cores.append(seen.get(node, 0))
            seen[node] = seen.get(node, 0) + 1
        core_of_rank = tuple(cores)
    else:
        core_of_rank = tuple(int(c) for c in core_of_rank)
    return Placement("user-defined", node_of_rank, core_of_rank, cluster)


PLACEMENT_POLICIES = {
    "rrn": round_robin_per_node,
    "round-robin-per-node": round_robin_per_node,
    "rrp": round_robin_per_processor,
    "round-robin-per-processor": round_robin_per_processor,
    "random": random_placement,
}


def make_placement(
    policy: str, cluster: ClusterSpec, num_tasks: int, seed: int = 0,
    oversubscribe: bool = False,
) -> Placement:
    """Build a placement by policy name (``"RRN"``, ``"RRP"``, ``"random"``)."""
    key = policy.lower()
    if key not in PLACEMENT_POLICIES:
        raise SchedulingError(
            f"unknown placement policy {policy!r}; known: {', '.join(sorted(PLACEMENT_POLICIES))}"
        )
    factory = PLACEMENT_POLICIES[key]
    if key == "random":
        return factory(cluster, num_tasks, seed=seed, oversubscribe=oversubscribe)
    return factory(cluster, num_tasks, oversubscribe=oversubscribe)
