"""Cluster descriptions (§IV.C and §VI.A of the paper).

A :class:`ClusterSpec` is the "definition of the cluster" input of the
paper's simulator: number of nodes, cores per node, and the interconnect.
The three clusters used in the paper are provided as presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..exceptions import TopologyError
from ..network.technologies import (
    GIGABIT_ETHERNET,
    INFINIBAND_INFINIHOST3,
    MYRINET_2000,
    NetworkTechnology,
    get_technology,
)
from .node import NodeSpec, OPTERON_246, OPTERON_248, WOODCREST_2_4

__all__ = [
    "ClusterSpec",
    "IBM_E326_GIGE",
    "IBM_E325_MYRINET",
    "BULL_NOVASCALE_IB",
    "PAPER_CLUSTERS",
    "get_cluster",
]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of SMP nodes on a single interconnect."""

    name: str
    num_nodes: int
    node: NodeSpec
    technology: NetworkTechnology
    #: free-form description of the MPI stack used by the paper on this cluster
    mpi_stack: str = "MPI"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise TopologyError(f"a cluster needs at least one node, got {self.num_nodes}")

    @property
    def cores_per_node(self) -> int:
        return self.node.cores

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores

    def max_tasks(self, tasks_per_core: int = 1) -> int:
        """Maximum number of MPI tasks schedulable with ``tasks_per_core`` each."""
        if tasks_per_core < 1:
            raise TopologyError(f"tasks_per_core must be >= 1, got {tasks_per_core}")
        return self.total_cores * tasks_per_core

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_nodes} nodes of {self.node.describe()}, "
            f"{self.technology.name} interconnect, {self.mpi_stack}"
        )


#: Gigabit Ethernet cluster: IBM eServer 326, 53 nodes, 2x Opteron 248, MPICH.
IBM_E326_GIGE = ClusterSpec(
    name="IBM eServer 326 (Gigabit Ethernet)",
    num_nodes=53,
    node=OPTERON_248,
    technology=GIGABIT_ETHERNET,
    mpi_stack="MPICH (TCP)",
)

#: Myrinet 2000 cluster: IBM eServer 325, 72 nodes, 2x Opteron 246, MPI-MX.
IBM_E325_MYRINET = ClusterSpec(
    name="IBM eServer 325 (Myrinet 2000)",
    num_nodes=72,
    node=OPTERON_246,
    technology=MYRINET_2000,
    mpi_stack="MPI MX",
)

#: InfiniBand cluster: BULL Novascale, 26 nodes, 2x Woodcrest (4 cores/node),
#: MPIBULL2 (MVAPICH 1.0 based).
BULL_NOVASCALE_IB = ClusterSpec(
    name="BULL Novascale (InfiniHost III)",
    num_nodes=26,
    node=WOODCREST_2_4,
    technology=INFINIBAND_INFINIHOST3,
    mpi_stack="MPIBULL2 (MVAPICH 1.0)",
)

PAPER_CLUSTERS: Dict[str, ClusterSpec] = {
    "gigabit-ethernet": IBM_E326_GIGE,
    "ethernet": IBM_E326_GIGE,
    "gige": IBM_E326_GIGE,
    "myrinet": IBM_E325_MYRINET,
    "myrinet-2000": IBM_E325_MYRINET,
    "infiniband": BULL_NOVASCALE_IB,
    "ib": BULL_NOVASCALE_IB,
}


def get_cluster(name: str) -> ClusterSpec:
    """Look up one of the paper's clusters by network name or alias."""
    key = name.lower()
    if key not in PAPER_CLUSTERS:
        raise TopologyError(
            f"unknown cluster {name!r}; known: {', '.join(sorted(set(PAPER_CLUSTERS)))}"
        )
    return PAPER_CLUSTERS[key]


def custom_cluster(
    num_nodes: int,
    cores_per_node: int = 2,
    technology: NetworkTechnology | str = "ethernet",
    name: str = "custom",
    flops_per_core: float = 4.0e9,
    memory_gb: float = 4.0,
) -> ClusterSpec:
    """Build an ad-hoc homogeneous cluster (used by tests and examples)."""
    if isinstance(technology, str):
        technology = get_technology(technology)
    node = NodeSpec(
        cpu_model="generic",
        sockets=1,
        cores_per_socket=cores_per_node,
        frequency_ghz=2.0,
        memory=int(memory_gb * 1e9),
        flops_per_core=flops_per_core,
    )
    return ClusterSpec(name=name, num_nodes=num_nodes, node=node, technology=technology)
