"""Cluster descriptions and task placement.

The "definition of the cluster" and "scheduling of tasks on nodes" inputs of
the paper's simulator (§VI.A): SMP node specs, the three clusters the paper
measured, and the RRN / RRP / Random / user-defined placement policies.
"""

from .node import NodeSpec, OPTERON_246, OPTERON_248, WOODCREST_2_4
from .placement import (
    PLACEMENT_POLICIES,
    Placement,
    make_placement,
    random_placement,
    round_robin_per_node,
    round_robin_per_processor,
    user_defined_placement,
)
from .spec import (
    BULL_NOVASCALE_IB,
    IBM_E325_MYRINET,
    IBM_E326_GIGE,
    PAPER_CLUSTERS,
    ClusterSpec,
    custom_cluster,
    get_cluster,
)

__all__ = [
    "NodeSpec",
    "OPTERON_246",
    "OPTERON_248",
    "WOODCREST_2_4",
    "ClusterSpec",
    "IBM_E326_GIGE",
    "IBM_E325_MYRINET",
    "BULL_NOVASCALE_IB",
    "PAPER_CLUSTERS",
    "get_cluster",
    "custom_cluster",
    "Placement",
    "round_robin_per_node",
    "round_robin_per_processor",
    "random_placement",
    "user_defined_placement",
    "make_placement",
    "PLACEMENT_POLICIES",
]
