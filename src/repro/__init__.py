"""repro — reproduction of *Predictive models for bandwidth sharing in high
performance clusters* (Vienne, Martinasso, Vincent, Méhaut — IEEE Cluster 2008).

The package provides:

* the paper's contention models (Gigabit Ethernet, Myrinet, plus the
  InfiniBand extension and related-work baselines) in :mod:`repro.core`;
* a calibrated cluster emulator standing in for the paper's three physical
  clusters in :mod:`repro.network`;
* cluster descriptions and task placement in :mod:`repro.cluster`;
* a simulated MPI layer in :mod:`repro.mpi`;
* the predictive simulator (applications as event traces) in
  :mod:`repro.simulator`;
* the communication-scheme language and the paper's schemes in
  :mod:`repro.scheme`;
* workload generators (HPL/Linpack, synthetic graphs, collectives) in
  :mod:`repro.workloads`;
* the penalty measurement tool in :mod:`repro.benchmark`;
* the evaluation metrics and the paper's published values in
  :mod:`repro.analysis`;
* the structured per-event trace pipeline (records, sinks, trace-driven
  replay) in :mod:`repro.trace`.

Quick start
-----------

.. code-block:: python

    from repro import CommunicationGraph, GigabitEthernetModel, MyrinetModel

    graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (0, 3)])
    GigabitEthernetModel().penalties(graph)   # {'a': 2.25, 'b': 2.25, 'c': 2.25}
    MyrinetModel().penalties(graph)           # {'a': 3.0, 'b': 3.0, 'c': 3.0}
"""

from .core import (
    Communication,
    CommunicationGraph,
    ConflictKind,
    ConflictRule,
    ContentionModel,
    EthernetParameters,
    FairShareModel,
    GigabitEthernetModel,
    InfinibandModel,
    InfinibandParameters,
    KimLeeModel,
    LinearCostModel,
    LogGPCostModel,
    LogPCostModel,
    MyrinetModel,
    NoContentionModel,
    PenaltyPrediction,
    classify_graph,
    get_model,
    model_for_network,
)
from .cluster import (
    BULL_NOVASCALE_IB,
    IBM_E325_MYRINET,
    IBM_E326_GIGE,
    ClusterSpec,
    Placement,
    custom_cluster,
    get_cluster,
    make_placement,
)
from .network import (
    GIGABIT_ETHERNET,
    INFINIBAND_INFINIHOST3,
    MYRINET_2000,
    ClusterEmulator,
    NetworkTechnology,
    get_technology,
)
from .benchmark import ExperimentRunner, PenaltyTool
from .campaign import (
    CampaignResultStore,
    CampaignRunner,
    CampaignSpec,
    PersistentPenaltyCache,
)
from .mpi import MpiRuntime, Rank
from .scheme import (
    figure2_schemes,
    figure4_scheme,
    figure5_graph,
    mk1_tree,
    mk2_complete,
    parse_scheme,
)
from .simulator import Application, Simulator
from .workloads import LinpackParameters, generate_linpack

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Communication",
    "CommunicationGraph",
    "ConflictKind",
    "ConflictRule",
    "ContentionModel",
    "LinearCostModel",
    "PenaltyPrediction",
    "EthernetParameters",
    "GigabitEthernetModel",
    "MyrinetModel",
    "InfinibandModel",
    "InfinibandParameters",
    "NoContentionModel",
    "FairShareModel",
    "KimLeeModel",
    "LogPCostModel",
    "LogGPCostModel",
    "classify_graph",
    "get_model",
    "model_for_network",
    # cluster
    "ClusterSpec",
    "Placement",
    "custom_cluster",
    "get_cluster",
    "make_placement",
    "IBM_E326_GIGE",
    "IBM_E325_MYRINET",
    "BULL_NOVASCALE_IB",
    # network
    "ClusterEmulator",
    "NetworkTechnology",
    "get_technology",
    "GIGABIT_ETHERNET",
    "MYRINET_2000",
    "INFINIBAND_INFINIHOST3",
    # tools
    "PenaltyTool",
    "ExperimentRunner",
    "MpiRuntime",
    "Rank",
    # schemes & workloads
    "parse_scheme",
    "figure2_schemes",
    "figure4_scheme",
    "figure5_graph",
    "mk1_tree",
    "mk2_complete",
    "LinpackParameters",
    "generate_linpack",
    # simulator
    "Application",
    "Simulator",
    # campaigns
    "CampaignSpec",
    "CampaignRunner",
    "CampaignResultStore",
    "PersistentPenaltyCache",
]
