"""Tests for the trace-timeline and placement-robustness reports."""

from __future__ import annotations

import pytest

from repro.analysis import (
    placement_robustness,
    placement_robustness_table,
    records_from_trace,
    timeline_bins,
    timeline_summary,
    timeline_summary_table,
)
from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.results import CampaignResultStore, ScenarioResult
from repro.cluster import custom_cluster
from repro.simulator import BackgroundTrafficInjector, EngineConfig, Simulator
from repro.trace import MemoryTraceSink, TraceLog, TraceRecord
from repro.units import MB
from repro.workloads import broadcast_application


@pytest.fixture
def traced_run():
    cluster = custom_cluster(num_nodes=4, cores_per_node=2,
                             technology="ethernet")
    sink = MemoryTraceSink()
    sim = Simulator.predictive(
        cluster,
        config=EngineConfig(injectors=(
            BackgroundTrafficInjector(rate=300.0, size=2 * MB, seed=2,
                                      max_flows=5),
        )),
        trace=sink,
    )
    report = sim.run(broadcast_application(4, 1 * MB), placement="RRP", seed=0)
    return report, sink.log()


class TestTimeline:
    def test_summary_counts_match_the_run(self, traced_run):
        report, log = traced_run
        summary = timeline_summary(log)
        assert summary["records"] == len(log)
        assert summary["task_events"] == len(report.records)
        assert 1 <= summary["background_flows"] <= 5
        assert summary["activations"] >= summary["completions"]
        assert summary["peak_active_transfers"] >= 1
        assert summary["duration"] == pytest.approx(
            report.total_time, rel=1e-9)

    def test_bins_partition_the_records(self, traced_run):
        _, log = traced_run
        rows = timeline_bins(log, bins=7)
        assert len(rows) == 7
        assert sum(row["records"] for row in rows) == len(log)
        assert rows[0]["t_start"] == min(r.time for r in log)
        assert rows[-1]["t_end"] == pytest.approx(max(r.time for r in log))
        # the final active count is exactly what never finished (background
        # flows still in flight when the last task completed)
        summary = timeline_summary(log)
        assert rows[-1]["active_after"] == (
            summary["activations"] - summary["completions"]
            - summary["cancellations"]
        )

    def test_bins_validation_and_empty_trace(self):
        from repro.exceptions import TraceError

        with pytest.raises(TraceError):
            timeline_bins(TraceLog(), bins=0)
        assert timeline_bins(TraceLog(), bins=5) == []
        summary = timeline_summary(TraceLog())
        assert summary["records"] == 0
        assert summary["duration"] == 0.0
        table = timeline_summary_table(TraceLog())
        assert "trace timeline" in table

    def test_single_instant_trace(self):
        log = TraceLog([TraceRecord(0.5, "calendar.activate", "a",
                                    {"src": 0, "dst": 1, "size": 1.0})])
        rows = timeline_bins(log, bins=3)
        assert sum(row["records"] for row in rows) == 1
        assert rows[-1]["active_after"] == 1

    def test_summary_table_greppable(self, traced_run):
        _, log = traced_run
        table = timeline_summary_table(log, bins=4)
        assert "trace timeline" in table
        assert "records:" in table

    def test_records_from_trace_rebuilds_the_report_records(self, traced_run):
        report, log = traced_run
        rebuilt = records_from_trace(log)
        assert rebuilt == report.records
        assert records_from_trace(TraceLog()) == []


def store_row(placement, interference, total_time, workload="broadcast"):
    return ScenarioResult(
        axes={
            "scenario_id": f"{workload}-{placement}-{interference}",
            "kind": "collective", "workload": workload,
            "workload_params": "()", "network": "ethernet", "model": "auto",
            "num_hosts": 8, "placement": placement, "seed": 0,
            "interference": interference,
        },
        metrics={"total_time": total_time},
    )


class TestPlacementRobustness:
    def build_store(self):
        return CampaignResultStore(campaign="test", results=[
            # RRP: clean 1.0, loaded 1.5 / 2.5  -> mean 2.0
            store_row("RRP", "none", 1.0),
            store_row("RRP", "light", 1.5),
            store_row("RRP", "heavy", 2.5),
            # RRN: clean 1.2, loaded 1.32 / 1.8 -> mean ~1.3 (more robust)
            store_row("RRN", "none", 1.2),
            store_row("RRN", "light", 1.32),
            store_row("RRN", "heavy", 1.8),
        ])

    def test_ranks_placements_by_mean_slowdown(self):
        rows = placement_robustness(self.build_store())
        assert len(rows) == 2
        by_placement = {row["placement"]: row for row in rows}
        assert by_placement["RRN"]["rank"] == 1
        assert by_placement["RRP"]["rank"] == 2
        assert by_placement["RRP"]["mean_slowdown"] == pytest.approx(2.0)
        assert by_placement["RRN"]["max_slowdown"] == pytest.approx(1.5)
        assert by_placement["RRN"]["samples"] == 2
        assert by_placement["RRP"]["mean_clean_time"] == pytest.approx(1.0)

    def test_loaded_rows_without_a_clean_twin_are_skipped(self):
        store = CampaignResultStore(campaign="t", results=[
            store_row("RRP", "heavy", 2.0),  # no "none" twin
        ])
        assert placement_robustness(store) == []

    def test_empty_store(self):
        assert placement_robustness(CampaignResultStore(campaign="t")) == []
        table = placement_robustness_table(CampaignResultStore(campaign="t"))
        assert "placement robustness" in table

    def test_end_to_end_with_a_real_campaign(self, tmp_path):
        spec = CampaignSpec.from_dict({
            "name": "robustness",
            "workloads": [{"kind": "collective", "name": "broadcast",
                           "params": {"size": "1M"}}],
            "host_counts": [4],
            "placements": ["RRP", "RRN"],
            "interference": [
                "none",
                {"name": "bg",
                 "background": {"rate": 200, "size": "2M", "max_flows": 6}},
            ],
        })
        store = CampaignRunner(spec).run()
        rows = placement_robustness(store)
        assert {row["placement"] for row in rows} == {"RRP", "RRN"}
        assert all(row["samples"] == 1 for row in rows)
        assert {row["rank"] for row in rows} == {1, 2}
        table = placement_robustness_table(store)
        assert "RRP" in table and "RRN" in table
