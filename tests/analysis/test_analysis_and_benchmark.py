"""Tests of the error metrics, the reference data, table rendering and the penalty tool."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ETHERNET_PAPER_PARAMETERS,
    FIGURE2_PENALTIES,
    FIGURE6_TABLE,
    FIGURE7_EABS,
    FIGURE7_MYRINET,
    absolute_error,
    compare_reports,
    compare_times,
    measured_vs_predicted_table,
    paper_penalties,
    penalty_ladder_table,
    per_task_error_table,
    relative_error,
    relative_errors,
    render_table,
)
from repro.benchmark import ExperimentRunner, PenaltyTool
from repro.core import GigabitEthernetModel, MyrinetModel, NoContentionModel
from repro.exceptions import ReproError, SimulationError
from repro.scheme import figure2_schemes, outgoing_conflict_scheme
from repro.simulator.report import EventRecord, SimulationReport
from repro.units import MB


class TestErrorMetrics:
    def test_relative_error_sign_convention(self):
        assert relative_error(predicted=1.1, measured=1.0) == pytest.approx(10.0)
        assert relative_error(predicted=0.9, measured=1.0) == pytest.approx(-10.0)

    def test_relative_error_zero_measurement(self):
        with pytest.raises(ReproError):
            relative_error(1.0, 0.0)

    def test_relative_errors_mapping(self):
        errors = relative_errors({"a": 2.0, "b": 1.0}, {"a": 1.0, "b": 2.0})
        assert errors["a"] == pytest.approx(100.0)
        assert errors["b"] == pytest.approx(-50.0)

    def test_relative_errors_missing_key(self):
        with pytest.raises(ReproError):
            relative_errors({"a": 1.0}, {"a": 1.0, "b": 1.0})

    def test_absolute_error_avoids_compensation(self):
        assert absolute_error([10.0, -10.0]) == pytest.approx(10.0)
        assert absolute_error([]) == 0.0

    def test_graph_error_report(self):
        report = compare_times(
            measured={"a": 1.0, "b": 2.0},
            predicted={"a": 1.1, "b": 1.8},
            graph_name="demo",
        )
        assert report.absolute == pytest.approx((10 + 10) / 2)
        assert report.relative["b"] == pytest.approx(-10.0)
        assert not report.is_pessimistic or report.mean_relative > 0
        assert "Eabs" in report.table()

    def test_task_error_report_from_simulation_reports(self):
        def make_report(times):
            records = [
                EventRecord(rank=r, index=0, kind="send", start=0.0, end=t, size=1)
                for r, t in times.items()
            ]
            return SimulationReport("app", "m", "RRP", len(times), records,
                                    {r: t for r, t in times.items()})

        measured = make_report({0: 1.0, 1: 2.0})
        predicted = make_report({0: 1.2, 1: 1.9})
        report = compare_reports(measured, predicted)
        assert report.per_task_error[0] == pytest.approx(20.0)
        assert report.mean_error == pytest.approx((20 + 5) / 2)
        assert "task" in report.table()

    def test_task_error_report_mismatched_sizes(self):
        a = SimulationReport("x", "m", "RRP", 2, [], {0: 1.0, 1: 1.0})
        b = SimulationReport("x", "m", "RRP", 3, [], {0: 1.0, 1: 1.0, 2: 1.0})
        with pytest.raises(ReproError):
            compare_reports(a, b)


class TestReferenceData:
    def test_figure2_lookup(self):
        assert paper_penalties("S3", "ethernet")["a"] == 2.25
        assert paper_penalties("s5", "myrinet")["d"] == 2.5
        with pytest.raises(KeyError):
            paper_penalties("S9", "ethernet")
        with pytest.raises(KeyError):
            paper_penalties("S3", "atm")

    def test_figure2_schemes_and_reference_share_communication_names(self):
        for scheme_id, graph in figure2_schemes().items():
            reference = FIGURE2_PENALTIES[scheme_id]["myrinet"]
            assert set(reference) == set(graph.names)

    def test_figure6_consistency(self):
        """In the paper's own table, penalty = num_state_sets / minimum."""
        for row in FIGURE6_TABLE.values():
            assert row["penalty"] == pytest.approx(5 / row["minimum"])

    def test_figure7_eabs_matches_per_communication_errors(self):
        for graph_name, eabs in FIGURE7_EABS.items():
            errors = [abs(v["relative_error"]) for v in FIGURE7_MYRINET[graph_name].values()]
            assert sum(errors) / len(errors) == pytest.approx(eabs, abs=0.2)

    def test_paper_parameters(self):
        assert ETHERNET_PAPER_PARAMETERS["beta"] == 0.75


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["x", "value"], [["a", 1.0], ["bb", 2.5]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_penalty_ladder_table_includes_reference(self):
        results = {"S2": {"gigabit-ethernet": {"a": 1.5, "b": 1.5}}}
        text = penalty_ladder_table(results, reference=FIGURE2_PENALTIES,
                                    networks=("gigabit-ethernet",))
        assert "(1.50)" in text

    def test_measured_vs_predicted_table(self):
        text = measured_vs_predicted_table({"a": 1.0}, {"a": 1.1}, title="demo")
        assert "Eabs" in text and "10.0" in text

    def test_per_task_error_table(self):
        text = per_task_error_table({0: 1.0, 1: 2.0}, {0: 1.1, 1: 2.0})
        assert "mean per-task Eabs" in text


class TestPenaltyTool:
    def test_reference_time_positive(self):
        tool = PenaltyTool("myrinet", iterations=1, num_hosts=8)
        assert tool.reference_time() > 0
        assert tool.reference_time(4 * MB) < tool.reference_time(20 * MB)

    def test_measure_single_scheme(self):
        tool = PenaltyTool("ethernet", iterations=2, num_hosts=8)
        measurement = tool.measure(outgoing_conflict_scheme(2))
        assert measurement.penalties["a"] == pytest.approx(1.5, rel=0.02)
        assert measurement.mean_penalty == pytest.approx(1.5, rel=0.02)
        assert "penalty" in measurement.table()

    def test_invalid_iterations(self):
        with pytest.raises(SimulationError):
            PenaltyTool("ethernet", iterations=0)

    def test_measure_many(self):
        tool = PenaltyTool("infiniband", iterations=1, num_hosts=8)
        results = tool.measure_many({k: v for k, v in figure2_schemes().items() if k in ("S1", "S2")})
        assert set(results) == {"S1", "S2"}

    def test_compare_with_model(self):
        tool = PenaltyTool("ethernet", iterations=1, num_hosts=8)
        comparison = tool.compare_with_model(outgoing_conflict_scheme(3), GigabitEthernetModel())
        assert comparison["a"]["predicted"] == pytest.approx(2.25)
        assert abs(comparison["a"]["relative_error_percent"]) < 5


class TestExperimentRunner:
    def test_run_scheme_produces_rows(self):
        runner = ExperimentRunner(networks=("ethernet",), iterations=1, num_hosts=8)
        result = runner.run_scheme(outgoing_conflict_scheme(3), "ethernet")
        rows = result.rows()
        assert len(rows) == 3
        assert all(abs(r["relative_error_percent"]) < 10 for r in rows)

    def test_run_ladder_sweeps_networks(self):
        runner = ExperimentRunner(networks=("ethernet", "myrinet"), iterations=1, num_hosts=8)
        schemes = {k: v for k, v in figure2_schemes().items() if k in ("S1", "S2")}
        sweep = runner.run_ladder(schemes)
        assert len(sweep.results) == 4
        assert len(sweep.for_network("myrinet")) == 2
        assert len(sweep.for_scheme("fig2-s2")) == 2

    def test_models_comparison(self):
        runner = ExperimentRunner(networks=("myrinet",), iterations=1, num_hosts=8)
        comparison = runner.run_models_comparison(
            outgoing_conflict_scheme(3), "myrinet",
            [MyrinetModel(), NoContentionModel()],
        )
        myrinet_error = abs(comparison["myrinet"].rows()[0]["relative_error_percent"])
        baseline_error = abs(comparison["no-contention"].rows()[0]["relative_error_percent"])
        assert myrinet_error < baseline_error
