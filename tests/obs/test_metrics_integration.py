"""Property-based tests: metering never perturbs the simulation.

The registry's acceptance bar mirrors the trace pipeline's: attaching a
:class:`~repro.obs.MetricsRegistry` — with or without periodic
``metrics.sample`` emission into a trace — must produce **bit-for-bit** the
results of an unmetered run, over random applications, placements and both
provider families.  Metrics are observability, never physics.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel
from repro.exceptions import ReproError
from repro.network.allocator import EmulatorRateProvider
from repro.network.topology import CrossbarTopology
from repro.obs import MetricsRegistry
from repro.simulator import (
    ANY_SOURCE,
    Application,
    BackgroundTrafficInjector,
    EngineConfig,
    Simulator,
)
from repro.simulator.providers import ModelRateProvider
from repro.trace import MemoryTraceSink, assert_traces_equal
from repro.units import KiB, MB

common_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=3),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
    "provider": st.sampled_from(["model", "emulator"]),
    "loaded": st.booleans(),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="metrics-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def make_provider(kind, cluster):
    if kind == "model":
        return ModelRateProvider(GigabitEthernetModel(), "ethernet")
    topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                technology=cluster.technology)
    return EmulatorRateProvider(cluster.technology, topology)


def run_engine(spec, app, cluster, trace=None, metrics=None, sample_every=256):
    injectors = ()
    if spec["loaded"]:
        injectors = (BackgroundTrafficInjector(
            rate=200.0, size=1 * MB, seed=spec["seed"], max_flows=6),)
    config = EngineConfig(injectors=injectors, metrics=metrics,
                          metrics_sample_every=sample_every)
    sim = Simulator(cluster, make_provider(spec["provider"], cluster),
                    config=config, trace=trace)
    placement = make_placement(spec["policy"], cluster, app.num_tasks,
                               seed=spec["seed"])
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task, sim.last_engine_stats


class TestMetricsBitExact:
    @common_settings
    @given(spec=workload_strategy)
    def test_metering_is_bit_exact_in_the_engine(self, spec):
        """A run with a registry attached (no trace) equals an unmetered run
        — for the model and the emulator provider, clean and loaded."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        plain = run_engine(spec, app, cluster)
        registry = MetricsRegistry()
        metered = run_engine(spec, app, cluster, metrics=registry)
        assert metered == plain
        # the registry actually observed the run it did not perturb
        snap = registry.snapshot()
        assert snap["engine.steps"] == plain[2]["steps"]
        assert snap["calendar.flush_s.count"] > 0
        if spec["provider"] == "model":
            assert any(key.startswith("pricing.") for key in snap)
        else:
            assert any(key.startswith("emulator.") for key in snap)
            assert "waterfill.solve_s.count" in snap

    @common_settings
    @given(spec=workload_strategy)
    def test_samples_ride_the_trace_and_filter_away(self, spec):
        """A metered+traced run's records, minus the ``metrics.sample``
        stream, are exactly an unmetered traced run's records."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        unmetered = MemoryTraceSink()
        run_engine(spec, app, cluster, trace=unmetered)
        metered = MemoryTraceSink()
        run_engine(spec, app, cluster, trace=metered,
                   metrics=MetricsRegistry(), sample_every=1)
        samples = [r for r in metered.records if r.kind == "metrics.sample"]
        assert samples  # every engine step sampled
        assert all(r.data.get("engine.steps", 0) >= 1 for r in samples)
        simulation = [r for r in metered.records if r.kind != "metrics.sample"]
        assert_traces_equal(simulation, unmetered.records,
                            label_a="metered", label_b="unmetered")


class TestDrainTimer:
    """The batched due-event drain has its own phase timer."""

    SPEC = {"num_tasks": 4, "provider": "model", "loaded": False,
            "policy": "RRN", "seed": 0,
            "rounds": [{"pairs": [(0, 1, True, False), (2, 3, True, False)],
                        "computes": [(0, 8), (1, 8), (2, 8), (3, 8)],
                        "barrier": True}] * 3}

    def cluster(self):
        return custom_cluster(num_nodes=4, cores_per_node=1,
                              technology="ethernet")

    def test_due_event_drain_is_timed_and_bit_exact(self):
        """``timeline.drain_s`` observes the drain sweep without perturbing
        the run (the unmetered engine carries ``None``, not a dead timer)."""
        cluster = self.cluster()
        app = build_application(self.SPEC)
        plain = run_engine(self.SPEC, app, cluster)
        registry = MetricsRegistry()
        metered = run_engine(self.SPEC, app, cluster, metrics=registry)
        assert metered == plain
        snap = registry.snapshot()
        assert snap["timeline.drain_s.count"] > 0
        assert snap["timeline.drain_s.total"] >= 0.0

    def test_drain_timer_honours_sample_every(self):
        """A 1-in-N registry times every Nth sweep — still bit-exact."""
        cluster = self.cluster()
        app = build_application(self.SPEC)
        plain = run_engine(self.SPEC, app, cluster)
        dense = MetricsRegistry()
        sparse = MetricsRegistry(timer_sample_every=7)
        assert run_engine(self.SPEC, app, cluster, metrics=dense) == plain
        assert run_engine(self.SPEC, app, cluster, metrics=sparse) == plain
        dense_count = dense.snapshot()["timeline.drain_s.count"]
        sparse_count = sparse.snapshot()["timeline.drain_s.count"]
        assert 0 < sparse_count < dense_count


class TestMetricsConfig:
    def test_negative_sample_interval_is_rejected(self):
        with pytest.raises(ReproError):
            EngineConfig(metrics_sample_every=-1)

    def test_registry_without_trace_never_samples(self):
        spec = {"num_tasks": 2, "provider": "model", "loaded": False,
                "policy": "RRN", "seed": 0,
                "rounds": [{"pairs": [(0, 1, True, False)], "computes": [],
                            "barrier": True}]}
        cluster = custom_cluster(num_nodes=2, cores_per_node=1,
                                 technology="ethernet")
        app = build_application(spec)
        registry = MetricsRegistry()
        run_engine(spec, app, cluster, metrics=registry, sample_every=1)
        # no sink: nothing to emit into, but the registry still aggregates
        assert registry.snapshot()["engine.steps"] > 0
