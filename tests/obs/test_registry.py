"""Unit tests for the unified metrics registry and its instruments."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, PhaseTimer
from repro.trace import KNOWN_KINDS


class TestInstruments:
    def test_counter_adds_and_resets(self):
        counter = Counter("events")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        assert counter.snapshot() == {"events": 5}
        counter.reset()
        assert counter.value == 0

    def test_gauge_holds_the_latest_value(self):
        gauge = Gauge("active")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5
        assert gauge.snapshot() == {"active": 7.5}
        gauge.reset()
        assert gauge.value == 0.0

    def test_histogram_tracks_streaming_moments(self):
        histogram = Histogram("latency_s")
        for value in (2.0, 1.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 7.0
        assert histogram.mean == pytest.approx(7.0 / 3)
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        snap = histogram.snapshot()
        assert snap["latency_s.count"] == 3
        assert snap["latency_s.total"] == 7.0
        assert snap["latency_s.min"] == 1.0
        assert snap["latency_s.max"] == 4.0

    def test_empty_histogram_snapshots_zeroes(self):
        snap = Histogram("empty").snapshot()
        assert snap == {"empty.count": 0, "empty.total": 0.0, "empty.mean": 0.0,
                        "empty.min": 0.0, "empty.max": 0.0}

    def test_timer_context_manager_observes_a_duration(self):
        timer = PhaseTimer("phase_s")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0
        assert isinstance(timer, Histogram)


class TestRegistry:
    def test_create_or_get_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        assert registry.timer("flush_s") is registry.timer("flush_s")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ReproError, match="hits"):
            registry.gauge("hits")
        # PhaseTimer is a Histogram subclass but still a distinct kind
        registry.histogram("h")
        with pytest.raises(ReproError):
            registry.timer("h")

    def test_snapshot_flattens_instruments_and_sources(self):
        registry = MetricsRegistry()
        registry.counter("steps").add(3)
        registry.register_source("cache", lambda: {"hits": 9, "misses": 1,
                                                   "policy": "lru",
                                                   "warm": True})
        snap = registry.snapshot()
        assert snap["steps"] == 3
        assert snap["cache.hits"] == 9
        assert snap["cache.misses"] == 1
        # non-numeric source values (strings, bools) are dropped
        assert "cache.policy" not in snap
        assert "cache.warm" not in snap
        assert list(snap) == sorted(snap)

    def test_sources_are_read_lazily_and_replaceable(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.register_source("live", lambda: {"n": state["n"]})
        assert registry.snapshot()["live.n"] == 0
        state["n"] = 5
        assert registry.snapshot()["live.n"] == 5
        registry.register_source("live", lambda: {"n": -1})
        assert registry.snapshot()["live.n"] == -1
        registry.unregister_source("live")
        assert "live.n" not in registry.snapshot()

    def test_sample_record_is_a_known_trace_kind(self):
        registry = MetricsRegistry()
        registry.counter("steps").add(2)
        record = registry.sample_record(1.5)
        assert record.kind == "metrics.sample"
        assert record.kind in KNOWN_KINDS
        assert record.time == 1.5
        assert record.subject is None
        assert record.data == registry.snapshot()

    def test_reset_zeroes_instruments_but_leaves_sources(self):
        registry = MetricsRegistry()
        registry.counter("steps").add(7)
        registry.timer("flush_s").observe(0.5)
        registry.register_source("src", lambda: {"k": 11})
        registry.reset()
        snap = registry.snapshot()
        assert snap["steps"] == 0
        assert snap["flush_s.count"] == 0
        assert snap["src.k"] == 11
