"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import custom_cluster
from repro.core import (
    EthernetParameters,
    GigabitEthernetModel,
    InfinibandModel,
    MyrinetModel,
)
from repro.network import ClusterEmulator
from repro.scheme import figure2_schemes, figure4_scheme, figure5_graph, mk1_tree, mk2_complete


@pytest.fixture
def ethernet_model() -> GigabitEthernetModel:
    return GigabitEthernetModel(EthernetParameters.paper())


@pytest.fixture
def myrinet_model() -> MyrinetModel:
    return MyrinetModel()


@pytest.fixture
def infiniband_model() -> InfinibandModel:
    return InfinibandModel()


@pytest.fixture
def fig2():
    return figure2_schemes()


@pytest.fixture
def fig4():
    return figure4_scheme()


@pytest.fixture
def fig5():
    return figure5_graph()


@pytest.fixture
def mk1():
    return mk1_tree()


@pytest.fixture
def mk2():
    return mk2_complete()


@pytest.fixture
def ethernet_emulator() -> ClusterEmulator:
    return ClusterEmulator("ethernet", num_hosts=16)


@pytest.fixture
def myrinet_emulator() -> ClusterEmulator:
    return ClusterEmulator("myrinet", num_hosts=16)


@pytest.fixture
def infiniband_emulator() -> ClusterEmulator:
    return ClusterEmulator("infiniband", num_hosts=16)


@pytest.fixture
def small_cluster():
    """8 nodes with 2 cores each on the Myrinet interconnect."""
    return custom_cluster(num_nodes=8, cores_per_node=2, technology="myrinet")


@pytest.fixture
def ethernet_cluster():
    return custom_cluster(num_nodes=8, cores_per_node=2, technology="ethernet")
