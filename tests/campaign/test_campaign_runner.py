"""Runner tests: parallel-vs-serial bit-exactness over random campaigns."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignResultStore,
    resolve_model,
)
from repro.core import GigabitEthernetModel, MyrinetModel, PenaltyCache
from repro.core.incremental import IncrementalPenaltyEngine, cached_penalties
from repro.exceptions import WorkloadError
from repro.workloads import random_graph_scheme


def random_campaign(seed: int) -> CampaignSpec:
    """A random-ish campaign over both workload families and several axes."""
    return CampaignSpec.from_dict({
        "name": f"random-{seed}",
        "workloads": [
            {"kind": "synthetic", "name": "random-tree"},
            {"kind": "synthetic", "name": "random",
             "params": {"num_communications": 12}},
            {"kind": "scheme", "name": "fig5"},
            {"kind": "collective", "name": "ring-allgather",
             "params": {"size": "1M", "num_tasks": 6}},
        ],
        "networks": ["ethernet", "myrinet"],
        "host_counts": [6, 9],
        "placements": ["RRP", "random"],
        "seeds": [seed, seed + 1],
    })


def dumps(store: CampaignResultStore):
    return [result.to_dict() for result in store.results]


class TestBitExactness:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_thread_parallel_matches_serial(self, seed):
        spec = random_campaign(seed)
        serial = CampaignRunner(spec, max_workers=1).run()
        threaded = CampaignRunner(spec, max_workers=4, backend="thread").run()
        assert dumps(serial) == dumps(threaded)  # == on floats: bit-exact

    def test_process_parallel_matches_serial(self):
        spec = random_campaign(3)
        serial = CampaignRunner(spec, max_workers=1).run()
        processes = CampaignRunner(spec, max_workers=2, backend="process").run()
        assert dumps(serial) == dumps(processes)

    def test_shared_cache_does_not_change_results(self):
        spec = random_campaign(11)
        isolated = CampaignRunner(spec, cache=PenaltyCache(max_entries=0)).run()
        shared = CampaignRunner(spec, cache=PenaltyCache()).run()
        assert dumps(isolated) == dumps(shared)

    def test_matches_direct_model_pricing(self):
        """Campaign penalties equal straight ``model.penalties`` on the graph."""
        spec = random_campaign(5)
        store = CampaignRunner(spec, max_workers=4).run()
        for scenario in spec.scenarios():
            if scenario.is_application:
                continue
            model = resolve_model(scenario.model, scenario.network)
            expected = model.penalties(scenario.build_graph())
            assert store.by_id(scenario.scenario_id).penalties == expected


class TestRunnerBehaviour:
    def test_results_keep_scenario_order(self):
        spec = random_campaign(2)
        store = CampaignRunner(spec, max_workers=4).run()
        assert [r.scenario_id for r in store.results] == \
            [s.scenario_id for s in spec.scenarios()]

    def test_cache_sharing_reduces_evaluations(self):
        spec = random_campaign(9)
        cold = CampaignRunner(spec, cache=PenaltyCache(max_entries=0)).run()
        warmable = CampaignRunner(spec, cache=PenaltyCache()).run()
        assert warmable.stats["comm_evaluations"] < cold.stats["comm_evaluations"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(WorkloadError):
            CampaignRunner(random_campaign(0), backend="quantum")

    def test_tiny_lru_keeps_results_exact_and_stats_sane(self):
        """Eviction pressure may cost re-evaluations, never wrong results."""
        spec = random_campaign(11)
        serial = CampaignRunner(spec, cache=PenaltyCache(max_entries=2)).run()
        parallel = CampaignRunner(spec, cache=PenaltyCache(max_entries=2),
                                  max_workers=4).run()
        assert dumps(serial) == dumps(parallel)
        assert all(v >= 0 for v in parallel.stats.values()), parallel.stats

    def test_store_exports(self, tmp_path):
        spec = random_campaign(1)
        store = CampaignRunner(spec).run()
        json_path = tmp_path / "results.json"
        csv_path = tmp_path / "results.csv"
        store.to_json(json_path)
        store.to_csv(csv_path)
        reloaded = CampaignResultStore.from_json(json_path)
        assert dumps(reloaded) == dumps(store)
        header = csv_path.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith("scenario_id,kind,workload,network,model")
        assert len(csv_path.read_text(encoding="utf-8").splitlines()) == len(store) + 1

    def test_summary_table_lists_every_scenario(self):
        spec = random_campaign(4)
        store = CampaignRunner(spec).run()
        table = store.summary_table()
        for result in store.results:
            assert result.scenario_id in table


class TestEngineFanOut:
    """The engine/pricing ``map_fn`` fan-out is bit-exact with serial."""

    def test_cached_penalties_parallel_matches_model(self):
        graph = random_graph_scheme(14, 18, seed=2)
        model = MyrinetModel()
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = cached_penalties(model, graph, cache=PenaltyCache(),
                                        map_fn=pool.map)
        assert parallel == model.penalties(graph)

    def test_engine_map_fn_matches_serial_updates(self):
        model = GigabitEthernetModel()
        graphs = [random_graph_scheme(10, 12, seed=s) for s in range(4)]
        serial_engine = IncrementalPenaltyEngine(model)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel_engine = IncrementalPenaltyEngine(model, map_fn=pool.map)
            for graph in graphs:
                assert parallel_engine.update(graph.communications) == \
                    serial_engine.update(graph.communications)

    def test_engine_recovers_after_pool_failure(self):
        """A dying pool must not lose the dirty components."""
        calls = {"failed": False}

        def flaky_map(fn, jobs):
            if not calls["failed"]:
                calls["failed"] = True
                raise RuntimeError("pool died")
            return [fn(job) for job in list(jobs)]

        model = GigabitEthernetModel()
        graph = random_graph_scheme(10, 12, seed=1)
        engine = IncrementalPenaltyEngine(model, map_fn=flaky_map)
        for comm in graph.communications:
            engine.add(comm)
        with pytest.raises(RuntimeError):
            engine.penalties()
        assert engine.penalties() == model.penalties(graph)
