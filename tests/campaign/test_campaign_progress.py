"""Campaign progress tracking off the per-scenario trace files."""

from __future__ import annotations

from repro.campaign import CampaignProgress, CampaignRunner, CampaignSpec
from repro.trace import read_trace_log
from repro.trace.records import TraceRecord


def spec_dict(trace_dir, metrics=False):
    return {
        "name": "progress-campaign",
        "workloads": [
            {"kind": "collective", "name": "broadcast", "params": {"size": "1M"}},
        ],
        "host_counts": [4],
        "interference": [
            "none",
            {"name": "bg",
             "background": {"rate": 150, "size": "2M", "max_flows": 4}},
        ],
        "trace_dir": trace_dir,
    }


class TestScenarioProgress:
    def feed(self, progress, *records):
        progress.feed(records)

    def test_run_meta_announces_the_task_total(self, tmp_path):
        progress = CampaignProgress([tmp_path / "s.jsonl"]).scenarios[0]
        assert not progress.started and not progress.complete
        self.feed(progress, TraceRecord(0.0, "run.meta", None, {"tasks": 3}))
        assert progress.started
        assert progress.tasks_total == 3 and progress.tasks_done == 0

    def test_done_states_are_counted_once_per_rank(self, tmp_path):
        progress = CampaignProgress([tmp_path / "s.jsonl"]).scenarios[0]
        self.feed(progress,
                  TraceRecord(0.0, "run.meta", None, {"tasks": 2}),
                  TraceRecord(0.5, "task.state", 0, {"status": "done"}),
                  TraceRecord(0.6, "task.state", 0, {"status": "done"}),
                  TraceRecord(0.7, "task.state", 1, {"status": "send"}))
        assert progress.tasks_done == 1 and not progress.complete
        self.feed(progress, TraceRecord(0.9, "task.state", 1, {"status": "done"}))
        assert progress.tasks_done == 2 and progress.complete

    def test_latest_metrics_sample_is_retained(self, tmp_path):
        progress = CampaignProgress([tmp_path / "s.jsonl"]).scenarios[0]
        self.feed(progress,
                  TraceRecord(0.1, "metrics.sample", None, {"engine.steps": 2}),
                  TraceRecord(0.2, "metrics.sample", None, {"engine.steps": 9}))
        assert progress.sample == {"engine.steps": 9}


class TestCampaignProgress:
    def test_polling_before_the_files_exist_is_quiet(self, tmp_path):
        progress = CampaignProgress([tmp_path / "a.jsonl", tmp_path / "b.jsonl"])
        assert progress.poll() == 0
        assert progress.completed == 0
        line = progress.format_line()
        assert line.startswith("progress: 0/2 scenarios complete")

    def test_a_finished_campaign_reads_as_complete(self, tmp_path):
        spec = CampaignSpec.from_dict(spec_dict(str(tmp_path / "traces")))
        runner = CampaignRunner(spec)
        runner.run()
        progress = CampaignProgress(runner.trace_paths())
        progress.poll()
        assert progress.completed == len(progress.scenarios) == 2
        assert progress.total_records == sum(
            len(read_trace_log(path)) for path in runner.trace_paths())
        rollup = progress.rollup()
        assert rollup["started"] == rollup["scenarios"] == 2
        assert rollup["tasks_done"] == rollup["tasks_total"] == 8
        assert "scenarios complete" in progress.format_line()
        assert progress.poll() == 0  # drained

    def test_metered_campaign_surfaces_flush_counters(self, tmp_path):
        spec = CampaignSpec.from_dict(spec_dict(str(tmp_path / "traces")))
        runner = CampaignRunner(spec, metrics_every=1)
        runner.run()
        for path in runner.trace_paths():
            assert read_trace_log(path).kinds()["metrics.sample"] > 0
        progress = CampaignProgress(runner.trace_paths())
        progress.poll()
        assert all(p.sample for p in progress.scenarios)
        line = progress.format_line()
        assert "flushes:" in line and "flush time:" in line

    def test_an_unreadable_trace_never_kills_the_watcher(self, tmp_path):
        good = tmp_path / "good.jsonl"
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        progress = CampaignProgress([good, bad])
        assert progress.poll() == 0  # the TraceError is swallowed per-scenario


class TestMetricsDoNotPerturb:
    def test_metered_campaign_results_equal_unmetered(self, tmp_path):
        plain_spec = CampaignSpec.from_dict(spec_dict(str(tmp_path / "plain")))
        metered_spec = CampaignSpec.from_dict(spec_dict(str(tmp_path / "metered")))
        plain = CampaignRunner(plain_spec).run()
        metered = CampaignRunner(metered_spec, metrics_every=8).run()
        assert [r.to_dict() for r in metered] == [r.to_dict() for r in plain]
