"""The campaign interference axis: spec round-trips, expansion, execution."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    InterferenceSpec,
    WorkloadSpec,
)
from repro.analysis import interference_slowdowns
from repro.exceptions import WorkloadError


def spec_dict(interference):
    return {
        "name": "loaded-sweep",
        "workloads": [
            {"kind": "scheme", "name": "fig2-s2"},
            {"kind": "collective", "name": "broadcast", "params": {"size": "1M"}},
        ],
        "networks": ["ethernet"],
        "host_counts": [4],
        "placements": ["RRP"],
        "seeds": [0],
        "interference": interference,
    }


LOADED = {
    "name": "loaded",
    "background": {"rate": 200, "size": "2M", "max_flows": 16, "seed": 1},
    "link_degradation": {"factor": 0.5, "start": 0.0, "until": 0.1},
}


class TestInterferenceSpec:
    def test_round_trip_through_dict(self):
        spec = InterferenceSpec.from_dict(LOADED)
        assert spec.name == "loaded"
        assert not spec.is_clean
        assert InterferenceSpec.from_dict(spec.to_dict()) == spec
        assert InterferenceSpec.from_dict("none").is_clean
        assert InterferenceSpec.from_dict("none").to_dict() == "none"
        # a named entry with no sections must round-trip as a mapping too
        named = InterferenceSpec.from_dict({"name": "placeholder"})
        assert InterferenceSpec.from_dict(named.to_dict()) == named

    def test_size_strings_are_parsed(self):
        spec = InterferenceSpec.from_dict(LOADED)
        injectors = spec.build_injectors(seed=0)
        background = injectors[0]
        assert background.size == 2_000_000.0
        assert background.seed == 1  # spec seed + scenario seed offset

    def test_scenario_seed_offsets_the_background_seed(self):
        spec = InterferenceSpec.from_dict(LOADED)
        assert spec.build_injectors(seed=5)[0].seed == 6

    def test_bad_specs_are_rejected(self):
        with pytest.raises(WorkloadError):
            InterferenceSpec.from_dict({"name": "x", "background": {"bogus": 1}})
        with pytest.raises(WorkloadError):
            InterferenceSpec.from_dict({"name": "x", "unknown_section": {}})
        with pytest.raises(WorkloadError):
            InterferenceSpec.from_dict("sometimes")

    def test_specs_are_picklable(self):
        import pickle

        spec = InterferenceSpec.from_dict(LOADED)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestCampaignExpansion:
    def test_graph_workloads_collapse_the_interference_axis(self):
        campaign = CampaignSpec.from_dict(spec_dict(["none", LOADED]))
        scenarios = campaign.scenarios()
        graph = [s for s in scenarios if not s.is_application]
        apps = [s for s in scenarios if s.is_application]
        assert len(graph) == 1 and graph[0].interference is None
        assert [s.interference.name for s in apps] == ["none", "loaded"]
        assert apps[1].scenario_id.endswith("loaded")
        assert apps[0].axes()["interference"] == "none"

    def test_default_axis_is_clean_and_ids_are_unchanged(self):
        data = spec_dict(["none"])
        del data["interference"]
        campaign = CampaignSpec.from_dict(data)
        apps = [s for s in campaign.scenarios() if s.is_application]
        assert apps[0].interference == InterferenceSpec()
        assert apps[0].build_injectors() == ()
        # clean entries never decorate the scenario id (backward compatible)
        assert not apps[0].scenario_id.endswith("none")

    def test_spec_round_trips_through_dict(self):
        campaign = CampaignSpec.from_dict(spec_dict(["none", LOADED]))
        again = CampaignSpec.from_dict(campaign.to_dict())
        assert [s.scenario_id for s in again.scenarios()] == \
            [s.scenario_id for s in campaign.scenarios()]


class TestCampaignExecution:
    def run(self, workers, backend="thread"):
        campaign = CampaignSpec.from_dict(spec_dict(["none", LOADED]))
        return CampaignRunner(campaign, max_workers=workers,
                              backend=backend).run()

    def test_loaded_scenarios_are_slower_and_reported(self):
        store = self.run(workers=1)
        rows = interference_slowdowns(store)
        assert [row["interference"] for row in rows] == ["none", "loaded"]
        assert rows[0]["slowdown"] == pytest.approx(1.0)
        assert rows[1]["slowdown"] is not None and rows[1]["slowdown"] > 1.0
        # graph scenarios stay out of the interference report
        assert len(rows) == 2 and len(store) == 3

    def test_parallel_backends_match_serial(self):
        serial = self.run(workers=1)
        threaded = self.run(workers=2, backend="thread")
        processes = self.run(workers=2, backend="process")
        reference = [(r.axes, r.metrics, r.times) for r in serial]
        assert [(r.axes, r.metrics, r.times) for r in threaded] == reference
        assert [(r.axes, r.metrics, r.times) for r in processes] == reference

    def test_same_name_workloads_with_different_params_keep_their_baselines(self):
        """Clean-twin pairing must key on the params, not just the name."""
        campaign = CampaignSpec.from_dict({
            "name": "sized",
            "workloads": [
                {"kind": "collective", "name": "broadcast", "params": {"size": "256K"}},
                {"kind": "collective", "name": "broadcast", "params": {"size": "4M"}},
            ],
            "networks": ["ethernet"],
            "host_counts": [4],
            "placements": ["RRP"],
            "seeds": [0],
            "interference": ["none", LOADED],
        })
        store = CampaignRunner(campaign).run()
        rows = interference_slowdowns(store)
        assert len(rows) == 4
        clean = {row["workload_params"]: row for row in rows
                 if row["interference"] == "none"}
        assert len(clean) == 2  # the two sizes stay distinguishable
        for row in rows:
            twin = clean[row["workload_params"]]
            assert row["baseline_time"] == twin["total_time"]
        small, large = clean.values()
        assert small["total_time"] != large["total_time"]

    def test_csv_rows_carry_the_interference_column(self, tmp_path):
        store = self.run(workers=1)
        out = tmp_path / "rows.csv"
        store.to_csv(out)
        header, *rows = out.read_text().strip().splitlines()
        assert "interference" in header.split(",")
        assert any(",loaded," in row for row in rows)


class TestWorkloadSpecStillValidates:
    def test_interference_requires_application_workloads_to_matter(self):
        campaign = CampaignSpec(
            name="graphs-only",
            workloads=[WorkloadSpec(kind="scheme", name="fig2-s2")],
            interference=[InterferenceSpec.from_dict(LOADED)],
        )
        # graph-only campaigns simply collapse the axis
        assert all(s.interference is None for s in campaign.scenarios())
