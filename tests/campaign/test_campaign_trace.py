"""Campaign trace toggle: per-scenario JSONL files, spec round-trip."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.trace import assert_traces_equal, read_trace_log


def spec_dict(trace_dir=None):
    data = {
        "name": "trace-campaign",
        "workloads": [
            {"kind": "collective", "name": "broadcast", "params": {"size": "1M"}},
            {"kind": "scheme", "name": "fig2-s2"},
        ],
        "host_counts": [4],
        "interference": [
            "none",
            {"name": "bg",
             "background": {"rate": 150, "size": "2M", "max_flows": 4}},
        ],
    }
    if trace_dir is not None:
        data["trace_dir"] = trace_dir
    return data


class TestSpecToggle:
    def test_trace_dir_round_trips_through_dict_and_json(self, tmp_path):
        spec = CampaignSpec.from_dict(spec_dict(trace_dir="traces"))
        assert spec.trace_dir == "traces"
        assert CampaignSpec.from_dict(spec.to_dict()).trace_dir == "traces"
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert CampaignSpec.from_json(path).trace_dir == "traces"

    def test_trace_dir_defaults_to_off_and_is_omitted(self):
        spec = CampaignSpec.from_dict(spec_dict())
        assert spec.trace_dir is None
        assert "trace_dir" not in spec.to_dict()


class TestRunnerTracing:
    def test_traced_campaign_writes_one_file_per_app_scenario(self, tmp_path):
        trace_dir = tmp_path / "traces"
        spec = CampaignSpec.from_dict(spec_dict(trace_dir=str(trace_dir)))
        runner = CampaignRunner(spec)
        store = runner.run()

        paths = runner.trace_paths()
        app_scenarios = [s for s in spec.scenarios() if s.is_application]
        graph_scenarios = [s for s in spec.scenarios() if not s.is_application]
        assert len(paths) == len(app_scenarios) == 2
        assert graph_scenarios  # the scheme workload traces nothing
        for scenario, path in zip(app_scenarios, paths):
            assert path.name == f"{scenario.scenario_id}.jsonl"
            log = read_trace_log(path)
            assert len(log) > 0
            # self-describing: `repro trace replay` needs the run.meta header
            meta = log.meta()
            assert meta["scenario_id"] == scenario.scenario_id
            assert meta["workload"] == scenario.workload.name
            assert meta["hosts"] == scenario.num_hosts
            result = store.by_id(scenario.scenario_id)
            # the trace's task events are the run's report records
            assert log.kinds()["task.event"] > 0
            if scenario.interference and scenario.interference.name != "none":
                assert log.kinds()["inject.flow_start"] > 0
            assert result.metrics["total_time"] > 0

    def test_tracing_does_not_change_results(self, tmp_path):
        clean_spec = CampaignSpec.from_dict(spec_dict())
        traced_spec = CampaignSpec.from_dict(
            spec_dict(trace_dir=str(tmp_path / "t")))
        untraced = CampaignRunner(clean_spec).run()
        traced = CampaignRunner(traced_spec).run()
        assert [r.to_dict() for r in traced] == [r.to_dict() for r in untraced]

    def test_runner_argument_overrides_the_spec(self, tmp_path):
        spec = CampaignSpec.from_dict(spec_dict())
        override = tmp_path / "override"
        runner = CampaignRunner(spec, trace_dir=str(override))
        runner.run()
        assert runner.trace_dir == str(override)
        assert any(override.glob("*.jsonl"))

    @pytest.mark.parametrize("backend,workers", [("thread", 2), ("process", 2)])
    def test_parallel_backends_trace_identically_to_serial(
        self, tmp_path, backend, workers
    ):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / backend
        spec = CampaignSpec.from_dict(spec_dict())
        serial_store = CampaignRunner(spec, trace_dir=str(serial_dir)).run()
        parallel_store = CampaignRunner(
            spec, trace_dir=str(parallel_dir), max_workers=workers,
            backend=backend,
        ).run()
        assert [r.to_dict() for r in parallel_store] == \
            [r.to_dict() for r in serial_store]
        serial_files = sorted(p.name for p in serial_dir.glob("*.jsonl"))
        parallel_files = sorted(p.name for p in parallel_dir.glob("*.jsonl"))
        assert serial_files == parallel_files
        for name in serial_files:
            # record-level first: a failure localizes to the first diverging
            # record instead of two opaque file dumps
            assert_traces_equal(read_trace_log(serial_dir / name),
                                read_trace_log(parallel_dir / name),
                                label_a=f"serial/{name}",
                                label_b=f"{backend}/{name}")
            assert (serial_dir / name).read_text() == \
                (parallel_dir / name).read_text()
