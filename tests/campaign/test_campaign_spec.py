"""Tests of the declarative campaign spec layer."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, WorkloadSpec
from repro.core.graph import CommunicationGraph
from repro.exceptions import WorkloadError
from repro.simulator.application import Application
from repro.units import MB


def sample_spec() -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "sample",
        "workloads": [
            {"kind": "scheme", "name": "fig2-s4"},
            {"kind": "synthetic", "name": "random-tree", "params": {"size": "4M"}},
            {"kind": "collective", "name": "broadcast", "params": {"size": "1M"}},
            {"kind": "linpack", "name": "hpl",
             "params": {"problem_size": 2000, "block_size": 250, "num_tasks": 4}},
        ],
        "networks": ["ethernet", "myrinet"],
        "host_counts": [8],
        "placements": ["RRP", "RRN"],
        "seeds": [0, 1],
    })


class TestExpansion:
    def test_axes_collapse_per_workload_kind(self):
        scenarios = sample_spec().scenarios()
        # scheme: 2 networks (hosts/placement/seed collapsed) = 2
        # synthetic: 2 networks × 1 host × 2 seeds = 4
        # collective + linpack: 2 networks × 1 host × 2 placements × 2 seeds = 8 each
        assert len(scenarios) == 2 + 4 + 8 + 8
        by_kind = {}
        for scenario in scenarios:
            by_kind.setdefault(scenario.workload.kind, []).append(scenario)
        assert all(s.num_hosts is None for s in by_kind["scheme"])
        assert all(s.placement is None for s in by_kind["synthetic"])
        assert all(s.placement in ("RRP", "RRN") for s in by_kind["linpack"])

    def test_expansion_is_deterministic_and_ids_unique(self):
        first = [s.scenario_id for s in sample_spec().scenarios()]
        second = [s.scenario_id for s in sample_spec().scenarios()]
        assert first == second
        assert len(set(first)) == len(first)

    def test_graph_workloads_materialize(self):
        for scenario in sample_spec().scenarios():
            if scenario.is_application:
                app = scenario.build_application()
                assert isinstance(app, Application)
            else:
                graph = scenario.build_graph()
                assert isinstance(graph, CommunicationGraph)
                assert len(graph) > 0

    def test_synthetic_seed_changes_the_graph(self):
        spec = sample_spec()
        trees = [s for s in spec.scenarios()
                 if s.workload.name == "random-tree" and s.network == "ethernet"]
        g0, g1 = trees[0].build_graph(), trees[1].build_graph()
        assert g0.to_edge_list() != g1.to_edge_list()


class TestLoaders:
    def test_dict_roundtrip(self):
        spec = sample_spec()
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_json_roundtrip(self, tmp_path):
        spec = sample_spec()
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert CampaignSpec.from_json(path).to_dict() == spec.to_dict()

    def test_size_strings_are_parsed(self):
        workload = WorkloadSpec.from_dict(
            {"kind": "synthetic", "name": "random-tree", "params": {"size": "4M"}}
        )
        spec = CampaignSpec(name="s", workloads=[workload], host_counts=[4])
        graph = spec.scenarios()[0].build_graph()
        assert all(c.size == 4 * MB for c in graph)

    def test_rejects_unknown_keys_kinds_and_policies(self):
        with pytest.raises(WorkloadError):
            CampaignSpec.from_dict({"name": "x", "workloads": [], "frobnicate": 1})
        with pytest.raises(WorkloadError):
            WorkloadSpec.from_dict({"kind": "quantum", "name": "x"})
        with pytest.raises(WorkloadError):
            WorkloadSpec.from_dict({"kind": "synthetic", "name": "moebius"})
        with pytest.raises(WorkloadError):
            CampaignSpec.from_dict({
                "name": "x",
                "workloads": [{"kind": "scheme", "name": "fig4"}],
                "placements": ["teleport"],
            })
        with pytest.raises(WorkloadError):
            CampaignSpec.from_dict({"name": "empty", "workloads": []})

    def test_unreadable_file_raises_workload_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(WorkloadError):
            CampaignSpec.from_json(path)
        with pytest.raises(WorkloadError):
            CampaignSpec.from_json(tmp_path / "missing.json")
