"""Persistence tests: save → reload → identical hits, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, PersistentPenaltyCache
from repro.campaign.persistence import canonical_key
from repro.core import GigabitEthernetModel, MyrinetModel
from repro.core.incremental import IncrementalPenaltyEngine
from repro.exceptions import GraphError
from repro.workloads import random_graph_scheme


def small_campaign() -> CampaignSpec:
    return CampaignSpec.from_dict({
        "name": "cache-roundtrip",
        "workloads": [
            {"kind": "synthetic", "name": "random-tree"},
            {"kind": "synthetic", "name": "random"},
        ],
        "networks": ["ethernet", "myrinet"],
        "host_counts": [8],
        "seeds": [0, 1],
    })


class TestCanonicalKey:
    def test_stable_across_model_instances(self):
        key_a = canonical_key((MyrinetModel().memo_key(), ((0, 1), (0, 2))))
        key_b = canonical_key((MyrinetModel().memo_key(), ((0, 1), (0, 2))))
        assert key_a == key_b

    def test_distinguishes_models_and_snapshots(self):
        snapshot = ((0, 1), (0, 2))
        assert canonical_key((MyrinetModel().memo_key(), snapshot)) != \
            canonical_key((GigabitEthernetModel().memo_key(), snapshot))
        assert canonical_key((MyrinetModel().memo_key(), ((0, 1),))) != \
            canonical_key((MyrinetModel().memo_key(), snapshot))

    def test_type_tagging_keeps_scalars_apart(self):
        assert canonical_key((1,)) != canonical_key((1.0,))
        assert canonical_key((1,)) != canonical_key((True,))
        assert canonical_key(("1",)) != canonical_key((1,))

    def test_rejects_unserialisable_components(self):
        with pytest.raises(GraphError):
            canonical_key((object(),))


class TestRoundtrip:
    def test_reload_serves_identical_hits(self, tmp_path):
        path = tmp_path / "cache.json"
        model = MyrinetModel()
        graph = random_graph_scheme(10, 14, seed=3)

        cache = PersistentPenaltyCache(path)
        engine = IncrementalPenaltyEngine(model, cache=cache)
        expected = engine.update(graph.communications)
        assert cache.save() == len(cache) > 0

        reloaded = PersistentPenaltyCache.load(path)
        assert reloaded.load_error is None
        assert reloaded.loaded_entries == len(cache)
        warm = IncrementalPenaltyEngine(model, cache=reloaded)
        replayed = warm.update(graph.communications)
        assert replayed == expected          # bit-exact, not approx
        assert warm.stats.cache_misses == 0
        assert warm.stats.comm_evaluations == 0

    def test_campaign_second_run_is_all_hits(self, tmp_path):
        path = tmp_path / "cache.json"
        spec = small_campaign()

        cold_cache = PersistentPenaltyCache.load(path)
        cold = CampaignRunner(spec, cache=cold_cache).run()
        assert cold.stats["comm_evaluations"] > 0
        cold_cache.save()

        warm_cache = PersistentPenaltyCache.load(path)
        warm = CampaignRunner(spec, cache=warm_cache).run()
        assert warm.stats["comm_evaluations"] == 0
        assert warm.stats["cache_misses"] == 0
        assert [r.to_dict() for r in warm.results] == \
            [r.to_dict() for r in cold.results]

    def test_lru_order_and_values_survive(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = PersistentPenaltyCache(path, max_entries=8)
        for i in range(8):
            cache.put((i,), {(0, 1): 1.0 + i / 7.0})
        cache.save()
        reloaded = PersistentPenaltyCache.load(path, max_entries=8)
        for i in range(8):
            assert reloaded.get((i,)) == {(0, 1): 1.0 + i / 7.0}
        # inserting one more evicts the oldest entry, like the original
        reloaded.put((99,), {(0, 1): 2.0})
        assert reloaded.get((0,)) is None


class TestCorruptionTolerance:
    @pytest.mark.parametrize("payload", [
        "{not json at all",
        '"a bare string"',
        '{"version": 99, "entries": []}',
        '{"version": 1}',
        '{"version": 1, "entries": [{"key": 42, "penalties": []}]}',
        '{"version": 1, "entries": [{"key": "k", "penalties": [["x", 0, 1.0]]}]}',
        "",
    ])
    def test_corrupted_file_yields_empty_cache(self, tmp_path, payload):
        path = tmp_path / "cache.json"
        path.write_text(payload, encoding="utf-8")
        cache = PersistentPenaltyCache.load(path)
        assert len(cache) == 0
        assert cache.load_error is not None
        # and the cache stays fully usable
        cache.put(("k",), {(0, 1): 1.5})
        assert cache.get(("k",)) == {(0, 1): 1.5}
        cache.save()
        assert PersistentPenaltyCache.load(path).get(("k",)) == {(0, 1): 1.5}

    def test_missing_file_is_fine(self, tmp_path):
        cache = PersistentPenaltyCache.load(tmp_path / "nope.json")
        assert len(cache) == 0 and cache.load_error is None

    def test_save_without_path_raises(self):
        with pytest.raises(GraphError):
            PersistentPenaltyCache().save()

    def test_save_is_atomic_on_reentry(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = PersistentPenaltyCache(path)
        cache.put(("k",), {(0, 1): 1.0})
        cache.save()
        before = path.read_text(encoding="utf-8")
        json.loads(before)  # well-formed
        cache.put(("k2",), {(0, 2): 2.0})
        cache.save()
        assert len(PersistentPenaltyCache.load(path)) == 2


class TestPersistentCacheTelemetry:
    def test_stats_include_persistence_details(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = PersistentPenaltyCache(path=path)
        cache.put(("k", 1), {(0, 1): 1.5})
        cache.get(("k", 1))
        cache.save()
        reloaded = PersistentPenaltyCache.load(path)
        reloaded.get(("k", 1))
        summary = reloaded.stats()
        assert summary["loaded_entries"] == 1
        assert summary["load_failed"] == 0.0
        assert summary["hits"] == 1
        assert summary["entries_never_hit"] == 0

    def test_stats_flag_swallowed_load_failure(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json", encoding="utf-8")
        cache = PersistentPenaltyCache.load(path)
        assert cache.stats()["load_failed"] == 1.0
        assert cache.stats()["loaded_entries"] == 0
