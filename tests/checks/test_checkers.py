"""Per-rule tests against the seeded fixture trees.

Every rule RC01–RC06 has a seeded-violation fixture and a clean twin; the
tests pin the *exact* ``(path, line, code)`` triples so a checker that
drifts by one line, fires twice, or goes silent fails loudly.
"""

from __future__ import annotations

from pathlib import Path

from repro.checks import run_check
from repro.checks.bench_emit import BenchEmitChecker
from repro.checks.delta_contract import DeltaContractChecker
from repro.checks.guarded_emission import GuardedEmissionChecker
from repro.checks.numpy_guard import NumpyGuardChecker
from repro.checks.parity import ParityManifestChecker
from repro.checks.trace_kinds import TraceKindChecker

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def triples(findings):
    return [(f.path, f.line, f.code) for f in findings]


class TestTraceKindsRC01:
    ROOT = FIXTURES / "rc01"

    def run(self, *names, trace_doc="trace-format.md"):
        return run_check([self.ROOT / name for name in names],
                         root=self.ROOT, checkers=[TraceKindChecker],
                         trace_doc=self.ROOT / trace_doc)

    def test_unregistered_literal_kind_is_reported(self):
        findings, _ = self.run("records.py", "bad_kinds.py")
        assert triples(findings) == [("bad_kinds.py", 7, "RC01")]
        assert "calendar.flsh" in findings[0].message

    def test_registered_kind_is_clean(self):
        findings, _ = self.run("records.py", "clean_kinds.py")
        assert findings == []

    def test_undocumented_registry_entry_is_reported(self, tmp_path):
        pristine = (self.ROOT / "trace-format.md").read_text(encoding="utf-8")
        kept = [line for line in pristine.splitlines(keepends=True)
                if "`metrics.sample`" not in line]
        assert len(kept) == len(pristine.splitlines()) - 1
        drifted = tmp_path / "trace-format.md"
        drifted.write_text("".join(kept), encoding="utf-8")
        findings, _ = run_check(
            [self.ROOT / "records.py", self.ROOT / "clean_kinds.py"],
            root=self.ROOT, checkers=[TraceKindChecker], trace_doc=drifted)
        # anchored at the registry entry of the now-undocumented kind
        assert triples(findings) == [("records.py", 6, "RC01")]
        assert "metrics.sample" in findings[0].message


class TestNumpyGuardRC02:
    ROOT = FIXTURES / "rc02"

    def test_direct_imports_are_reported_per_statement(self):
        findings, _ = run_check([self.ROOT / "bad_numpy.py"], root=self.ROOT,
                                checkers=[NumpyGuardChecker])
        assert triples(findings) == [("bad_numpy.py", 3, "RC02"),
                                     ("bad_numpy.py", 4, "RC02")]

    def test_guarded_import_is_clean(self):
        findings, _ = run_check([self.ROOT / "clean_numpy.py"],
                                root=self.ROOT, checkers=[NumpyGuardChecker])
        assert findings == []

    def test_inline_suppression_counts_but_does_not_report(self):
        findings, ctx = run_check([self.ROOT / "suppressed_numpy.py"],
                                  root=self.ROOT,
                                  checkers=[NumpyGuardChecker])
        assert findings == []
        assert ctx.suppressed_count == 1


class TestGuardedEmissionRC03:
    ROOT = FIXTURES / "rc03"

    def test_unguarded_truthy_and_computed_receivers_are_reported(self):
        findings, _ = run_check([self.ROOT / "bad" / "engine.py"],
                                root=self.ROOT,
                                checkers=[GuardedEmissionChecker])
        assert triples(findings) == [("bad/engine.py", 7, "RC03"),
                                     ("bad/engine.py", 12, "RC03"),
                                     ("bad/engine.py", 16, "RC03")]

    def test_every_real_guard_shape_is_accepted(self):
        findings, _ = run_check([self.ROOT / "clean" / "engine.py"],
                                root=self.ROOT,
                                checkers=[GuardedEmissionChecker])
        assert findings == []

    def test_non_hot_basenames_are_ignored(self, tmp_path):
        twin = tmp_path / "analysis.py"
        twin.write_text((self.ROOT / "bad" / "engine.py").read_text(),
                        encoding="utf-8")
        findings, _ = run_check([twin], root=tmp_path,
                                checkers=[GuardedEmissionChecker])
        assert findings == []


class TestDeltaContractRC04:
    ROOT = FIXTURES / "rc04"

    def test_all_four_shape_rules_fire_at_the_offending_def(self):
        findings, _ = run_check([self.ROOT / "bad_provider.py"],
                                root=self.ROOT,
                                checkers=[DeltaContractChecker])
        # SlotsWithoutArrays (no reset) trips both slot-tier rules at the
        # update_slots def line
        assert triples(findings) == [("bad_provider.py", 8, "RC04"),
                                     ("bad_provider.py", 8, "RC04"),
                                     ("bad_provider.py", 16, "RC04"),
                                     ("bad_provider.py", 24, "RC04")]
        messages = "\n".join(f.message for f in findings)
        assert "update_slots() without update_arrays()" in messages
        assert "slot-map invariant method set (missing: reset)" in messages
        assert "does not route through update()" in messages
        assert "reset() must be zero-arg" in messages

    def test_conforming_tiered_provider_is_clean(self):
        findings, _ = run_check([self.ROOT / "clean_provider.py"],
                                root=self.ROOT,
                                checkers=[DeltaContractChecker])
        assert findings == []


class TestParityManifestRC05:
    ROOT = FIXTURES / "rc05"

    def test_unmapped_toggle_is_reported_at_the_toggle_line(self):
        findings, _ = run_check(
            [self.ROOT / "toggle_module.py"], root=self.ROOT,
            checkers=[ParityManifestChecker],
            parity_manifest=self.ROOT / "manifest_empty.json")
        assert triples(findings) == [("toggle_module.py", 4, "RC05")]

    def test_mapped_toggle_is_clean(self):
        findings, _ = run_check(
            [self.ROOT / "toggle_module.py"], root=self.ROOT,
            checkers=[ParityManifestChecker],
            parity_manifest=self.ROOT / "manifest_good.json")
        assert findings == []

    def test_stale_entry_and_missing_test_file_are_reported(self):
        findings, _ = run_check(
            [self.ROOT / "no_toggle.py", self.ROOT / "toggle_module.py"],
            root=self.ROOT, checkers=[ParityManifestChecker],
            parity_manifest=self.ROOT / "manifest_stale.json")
        assert triples(findings) == [("manifest_stale.json", 0, "RC05"),
                                     ("no_toggle.py", 1, "RC05")]
        assert "missing_test_file.py" in findings[0].message
        assert "no longer defines" in findings[1].message


class TestBenchEmitRC06:
    ROOT = FIXTURES / "rc06"

    def test_hand_rolled_writes_are_reported(self):
        findings, _ = run_check([self.ROOT / "bench_bad.py"], root=self.ROOT,
                                checkers=[BenchEmitChecker])
        assert triples(findings) == [("bench_bad.py", 9, "RC06"),
                                     ("bench_bad.py", 10, "RC06")]

    def test_emit_fixture_usage_is_clean(self):
        findings, _ = run_check([self.ROOT / "bench_clean.py"],
                                root=self.ROOT, checkers=[BenchEmitChecker])
        assert findings == []

    def test_rule_only_applies_to_bench_basenames(self, tmp_path):
        twin = tmp_path / "helper.py"
        twin.write_text((self.ROOT / "bench_bad.py").read_text(),
                        encoding="utf-8")
        findings, _ = run_check([twin], root=tmp_path,
                                checkers=[BenchEmitChecker])
        assert findings == []
