"""Tests of file collection, suppression accounting and output formatting."""

from __future__ import annotations

import json
from pathlib import Path

from repro.checks import format_findings, run_check
from repro.checks.numpy_guard import NumpyGuardChecker
from repro.checks.runner import collect_files

FIXTURES = Path(__file__).resolve().parent / "fixtures"


class TestCollectFiles:
    def test_fixture_directories_are_pruned_on_recursion(self):
        collected = collect_files([FIXTURES.parent])  # tests/checks
        assert collected, "the checks test package itself should be found"
        assert all("fixtures" not in path.parts for path in collected)

    def test_explicit_paths_bypass_the_exclusion(self):
        target = FIXTURES / "rc02" / "bad_numpy.py"
        assert collect_files([target]) == [target]

    def test_duplicates_are_collapsed(self):
        target = FIXTURES / "rc02" / "bad_numpy.py"
        assert collect_files([target, target]) == [target]

    def test_missing_directory_raises(self, tmp_path):
        try:
            collect_files([tmp_path / "nowhere"])
        except FileNotFoundError as exc:
            assert "nowhere" in str(exc)
        else:
            raise AssertionError("expected FileNotFoundError")

    def test_no_default_excludes_descends_into_fixtures(self):
        collected = collect_files([FIXTURES.parent], excluded_dirs=())
        assert any("fixtures" in path.parts for path in collected)


class TestRunCheck:
    def test_syntax_error_becomes_an_rc00_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def half(:\n", encoding="utf-8")
        findings, _ = run_check([broken], root=tmp_path)
        assert [(f.path, f.code) for f in findings] == [("broken.py", "RC00")]
        assert "does not parse" in findings[0].message

    def test_findings_come_back_sorted(self):
        rc02 = FIXTURES / "rc02"
        findings, _ = run_check(
            [rc02 / "clean_numpy.py", rc02 / "bad_numpy.py"],
            root=rc02, checkers=[NumpyGuardChecker])
        assert findings == sorted(findings)
        assert [f.line for f in findings] == [3, 4]


class TestFormatting:
    def run_bad(self):
        rc02 = FIXTURES / "rc02"
        return run_check([rc02 / "bad_numpy.py"], root=rc02,
                         checkers=[NumpyGuardChecker])

    def test_text_format_is_one_line_per_finding_plus_summary(self):
        findings, ctx = self.run_bad()
        lines = format_findings(findings, ctx).splitlines()
        assert lines[0].startswith("bad_numpy.py:3: RC02 ")
        assert lines[1].startswith("bad_numpy.py:4: RC02 ")
        assert lines[-1] == "repro check: 2 findings in 1 files"

    def test_text_summary_reports_suppressions(self):
        rc02 = FIXTURES / "rc02"
        findings, ctx = run_check([rc02 / "suppressed_numpy.py"], root=rc02,
                                  checkers=[NumpyGuardChecker])
        summary = format_findings(findings, ctx).splitlines()[-1]
        assert summary == "repro check: 0 findings in 1 files (1 suppressed)"

    def test_json_bundle_shape(self):
        findings, ctx = self.run_bad()
        bundle = json.loads(format_findings(findings, ctx, fmt="json"))
        assert bundle["version"] == 1
        assert bundle["checked_files"] == 1
        assert bundle["suppressed"] == 0
        assert [f["line"] for f in bundle["findings"]] == [3, 4]
        assert set(bundle["findings"][0]) == {"path", "line", "code", "message"}
