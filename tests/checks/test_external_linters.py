"""Run ruff and mypy when they are installed (the CI static-analysis gate).

The container baking the tier-1 environment ships neither tool — the tests
skip there.  CI's ``static-analysis`` job installs both (``repro[lint]``)
and runs them directly; these tests exist so a contributor with the lint
extra installed gets the same gate from plain ``pytest``.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_floor_is_clean():
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_typed_core_is_clean():
    proc = subprocess.run(
        ["mypy"], cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
