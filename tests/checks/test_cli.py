"""Tests of the ``repro check`` command line: exit codes, formats, --fix."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.checks.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
RC02 = FIXTURES / "rc02"


class TestExitCodes:
    def test_violations_exit_nonzero(self, capsys):
        rc = main([str(RC02 / "bad_numpy.py"), "--root", str(RC02),
                   "--select", "RC02"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "bad_numpy.py:3: RC02" in out

    def test_clean_tree_exits_zero(self, capsys):
        rc = main([str(RC02 / "clean_numpy.py"), "--root", str(RC02)])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_unknown_rule_code_is_a_usage_error(self, capsys):
        rc = main([str(RC02 / "clean_numpy.py"), "--select", "RC99"])
        assert rc == 2
        assert "unknown rule codes: RC99" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        rc = main(["definitely/not/a/path"])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err


class TestOutputs:
    def test_json_format(self, capsys):
        rc = main([str(RC02 / "bad_numpy.py"), "--root", str(RC02),
                   "--select", "RC02", "--format", "json"])
        assert rc == 1
        bundle = json.loads(capsys.readouterr().out)
        assert [(f["line"], f["code"]) for f in bundle["findings"]] == \
            [(3, "RC02"), (4, "RC02")]

    def test_list_checks_names_every_rule(self, capsys):
        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for code in ("RC01", "RC02", "RC03", "RC04", "RC05", "RC06"):
            assert code in out

    def test_select_filters_rules(self):
        # the RC02 fixture has no RC03 content: selecting RC03 only is clean
        rc = main([str(RC02 / "bad_numpy.py"), "--root", str(RC02),
                   "--select", "RC03"])
        assert rc == 0


class TestFix:
    def test_fix_rewrites_then_rechecks_clean(self, tmp_path, capsys):
        target = tmp_path / "pipeline.py"
        shutil.copy(RC02 / "fixable_numpy.py", target)
        rc = main([str(target), "--root", str(tmp_path),
                   "--select", "RC02", "--fix"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fixed:" in out
        assert "from repro._numpy import np" in target.read_text()

    def test_fix_is_idempotent(self, tmp_path, capsys):
        target = tmp_path / "pipeline.py"
        shutil.copy(RC02 / "fixable_numpy.py", target)
        argv = [str(target), "--root", str(tmp_path), "--select", "RC02",
                "--fix"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "fixed:" not in capsys.readouterr().out

    def test_fix_leaves_unfixable_forms_as_findings(self, tmp_path, capsys):
        target = tmp_path / "pipeline.py"
        shutil.copy(RC02 / "bad_numpy.py", target)
        rc = main([str(target), "--root", str(tmp_path),
                   "--select", "RC02", "--fix"])
        out = capsys.readouterr().out
        assert rc == 1  # 'from numpy import linalg' cannot be auto-fixed
        assert "from repro._numpy import np" in target.read_text()
        assert "from numpy import linalg" in target.read_text()
        assert "pipeline.py:4: RC02" in out


class TestReproCliIntegration:
    def test_repro_check_subcommand_routes_here(self, capsys):
        from repro.cli import main as repro_main

        rc = repro_main(["check", "--root", str(RC02), "--select", "RC02",
                         str(RC02 / "bad_numpy.py")])
        assert rc == 1
        assert "RC02" in capsys.readouterr().out

    def test_module_entry_point_exists(self):
        import repro.checks.__main__  # noqa: F401  (import is the test)
