"""Unit tests of the RC02 import rewriter behind ``repro check --fix``."""

from __future__ import annotations

from pathlib import Path

from repro.checks import rewrite_numpy_imports
from repro.checks.fixes import fix_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


class TestRewrite:
    def test_np_alias_form(self):
        fixed, n = rewrite_numpy_imports("import numpy as np\n")
        assert (fixed, n) == ("from repro._numpy import np\n", 1)

    def test_bare_import_keeps_the_bound_name(self):
        fixed, n = rewrite_numpy_imports("import numpy\n")
        assert (fixed, n) == ("from repro._numpy import np as numpy\n", 1)

    def test_custom_alias_is_preserved(self):
        fixed, n = rewrite_numpy_imports("import numpy as xp\n")
        assert (fixed, n) == ("from repro._numpy import np as xp\n", 1)

    def test_indentation_and_trailing_comment_survive(self):
        source = "def lazy():\n    import numpy as np  # deferred\n"
        fixed, n = rewrite_numpy_imports(source)
        assert n == 1
        assert fixed == ("def lazy():\n"
                         "    from repro._numpy import np  # deferred\n")

    def test_stale_suppression_comment_is_dropped(self):
        source = "import numpy as np  # repro-check: ignore[RC02]\n"
        fixed, n = rewrite_numpy_imports(source)
        assert (fixed, n) == ("from repro._numpy import np\n", 1)

    def test_from_imports_and_multi_alias_are_left_alone(self):
        for source in ("from numpy import linalg\n",
                       "import numpy, json\n",
                       "import numpy.linalg\n"):
            fixed, n = rewrite_numpy_imports(source)
            assert (fixed, n) == (source, 0)

    def test_unparsable_source_is_untouched(self):
        source = "def half(:\n"
        assert rewrite_numpy_imports(source) == (source, 0)


class TestFixPaths:
    def test_rewrites_in_place_and_reports_counts(self, tmp_path):
        target = tmp_path / "stats.py"
        target.write_text("import numpy as np\nX = np.zeros(3)\n",
                          encoding="utf-8")
        changed = fix_paths([target])
        assert changed == [(target, 1)]
        assert target.read_text().startswith("from repro._numpy import np\n")

    def test_guard_module_itself_is_never_rewritten(self, tmp_path):
        guard = tmp_path / "_numpy.py"
        guard.write_text("import numpy as np\n", encoding="utf-8")
        assert fix_paths([guard]) == []
        assert guard.read_text() == "import numpy as np\n"

    def test_clean_files_are_not_touched(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("from repro._numpy import np\n", encoding="utf-8")
        before = target.stat().st_mtime_ns
        assert fix_paths([target]) == []
        assert target.stat().st_mtime_ns == before
