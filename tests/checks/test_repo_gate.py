"""The acceptance gate itself: the real tree is clean, and doc drift fails.

These are the two properties the CI ``static-analysis`` job relies on:
``repro check src tests benchmarks`` exits 0 on the maintained tree, and
removing a record kind's row from ``docs/trace-format.md`` makes RC01 fire.
"""

from __future__ import annotations

from pathlib import Path

from repro.checks import run_check
from repro.checks.trace_kinds import TraceKindChecker

REPO_ROOT = Path(__file__).resolve().parents[2]
RECORDS = REPO_ROOT / "src" / "repro" / "trace" / "records.py"


class TestRepoGate:
    def test_maintained_tree_has_no_findings(self):
        findings, ctx = run_check(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT)
        assert [f.format() for f in findings] == []
        assert len(ctx.modules) > 100  # the whole tree really was scanned

    def test_registry_and_real_doc_are_in_sync(self):
        findings, _ = run_check([RECORDS], root=REPO_ROOT,
                                checkers=[TraceKindChecker])
        assert findings == []


class TestDocDrift:
    def test_removing_a_documented_kind_fails_rc01(self, tmp_path):
        doc = REPO_ROOT / "docs" / "trace-format.md"
        pristine = doc.read_text(encoding="utf-8")
        kept = [line for line in pristine.splitlines(keepends=True)
                if "`calendar.flush`" not in line]
        assert len(kept) == len(pristine.splitlines()) - 1
        drifted = tmp_path / "trace-format.md"
        drifted.write_text("".join(kept), encoding="utf-8")
        findings, _ = run_check([RECORDS], root=REPO_ROOT,
                                checkers=[TraceKindChecker],
                                trace_doc=drifted)
        assert [(f.path, f.code) for f in findings] == \
            [("src/repro/trace/records.py", "RC01")]
        assert "'calendar.flush'" in findings[0].message
