"""Seeded RC02 violations: direct numpy imports outside the guard."""

import numpy as np
from numpy import linalg


def norm(values):
    return float(linalg.norm(np.asarray(values)))
