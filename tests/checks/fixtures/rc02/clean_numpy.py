"""Clean twin: numpy arrives through the guard module."""

from repro._numpy import np


def norm(values):
    return float(np.linalg.norm(np.asarray(values)))
