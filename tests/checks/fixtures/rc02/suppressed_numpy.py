"""RC02 violation silenced by an inline suppression comment."""

import numpy as np  # repro-check: ignore[RC02]


def mean(values):
    return float(np.mean(values))
