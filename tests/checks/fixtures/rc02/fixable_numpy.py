"""Seeded RC02 violation that ``repro check --fix`` can rewrite."""

import numpy as np


def total(values):
    return float(np.sum(np.asarray(values)))
