"""Seeded RC01 violation: a literal kind missing from the registry."""

from repro.trace.records import TraceRecord


def emit_bad(trace):
    trace.emit(TraceRecord(0.0, "calendar.flsh", None, {}))
