"""Mini trace-kind registry for the RC01 fixtures (self-contained)."""

KNOWN_KINDS = (
    "run.meta",
    "calendar.flush",
    "metrics.sample",
)
