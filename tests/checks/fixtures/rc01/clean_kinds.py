"""Clean twin of bad_kinds: the literal kind is registered."""

from repro.trace.records import TraceRecord


def emit_ok(trace):
    trace.emit(TraceRecord(0.0, "calendar.flush", None, {}))
