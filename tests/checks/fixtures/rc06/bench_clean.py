"""Clean twin: results flow through the shared emit fixture."""


def test_fixture_benchmark(emit):
    emit("fixture benchmark report", record={"metric": 1.0})
