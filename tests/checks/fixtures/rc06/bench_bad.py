"""Seeded RC06 violations: hand-rolled trajectory writes."""

import json

BENCH_RESULTS = "BENCH_fixture.json"


def publish(record):
    with open(BENCH_RESULTS, "a") as handle:
        json.dump(record, handle)
