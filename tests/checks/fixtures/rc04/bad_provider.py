"""Seeded RC04 violations: three contract-shape breakages."""


class SlotsWithoutArrays:
    def update(self, added, removed):
        return {}

    def update_slots(self, added_slots, removed):
        return (), (), ()


class DriftingRates:
    def update(self, added, removed):
        return {}

    def rates(self, active):
        return {t.transfer_id: 1.0 for t in active}


class ChattyReset:
    def update(self, added, removed):
        return {}

    def reset(self, hard):
        pass
