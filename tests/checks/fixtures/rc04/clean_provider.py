"""Clean twin: a full three-tier provider with a conforming shim."""


class TieredProvider:
    def update(self, added, removed):
        return {}

    def update_arrays(self, added, removed):
        return (), ()

    def update_slots(self, added_slots, removed):
        return (), (), ()

    def rates(self, active):
        # the shim reaches update() transitively, through _sync()
        return self._sync(active)

    def _sync(self, active):
        return dict(self.update(list(active), []))

    def reset(self):
        pass


class InheritedArrays(TieredProvider):
    """update_slots is fine here: update_arrays comes from the base class."""

    def update_slots(self, added_slots, removed):
        return (), (), ()
