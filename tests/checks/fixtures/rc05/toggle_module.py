"""Seeded RC05 violation: a vectorized toggle outside the manifest."""


def price(components, vectorized=False):
    return list(components) if vectorized else [c for c in components]
