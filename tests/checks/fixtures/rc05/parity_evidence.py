"""Stands in for a scalar-vs-array property-test file in the fixtures."""
