"""A plain module: listed in the stale manifest but has no toggle."""


def price(components):
    return list(components)
