"""Clean twin: every emission is dominated by an ``is not None`` test."""

from repro.trace.records import TraceRecord, emit_inject_apply


def run_guarded(trace, now):
    if trace is not None:
        trace.emit(TraceRecord(now, "step", None, {}))


def run_early_return(trace, now):
    if trace is None:
        return
    trace.emit(TraceRecord(now, "step", None, {}))


def run_boolop(trace, now, wanted):
    if trace is not None and wanted:
        trace.emit(TraceRecord(now, "step", None, {}))


def run_helper(trace, now, injector):
    if trace is not None:
        emit_inject_apply(trace, now, injector, 0)


def run_timer(metrics):
    timer = metrics.timer("fixture.phase") if metrics is not None else None
    if timer is not None and timer.due():
        timer.observe(0.0)
