"""Seeded RC03 violations in a hot-module basename twin."""

from repro.trace.records import TraceRecord


def run_unguarded(trace, now):
    trace.emit(TraceRecord(now, "step", None, {}))


def run_truthiness(trace, now):
    if trace:
        trace.emit(TraceRecord(now, "step", None, {}))


def run_computed(sinks, now):
    sinks[0].emit(TraceRecord(now, "step", None, {}))
