"""Tests of the scheme description language and the paper's scheme library."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemeParseError, WorkloadError
from repro.scheme import (
    SCHEME_BUILDERS,
    figure2_schemes,
    figure4_scheme,
    figure5_graph,
    format_scheme,
    get_scheme,
    incoming_conflict_scheme,
    mk1_tree,
    mk2_complete,
    outgoing_conflict_scheme,
    parse_scheme,
)
from repro.units import MB


class TestLanguage:
    def test_parse_minimal(self):
        graph = parse_scheme("0 -> 1\n0 -> 2\n")
        assert len(graph) == 2
        assert graph["a"].src == 0 and graph["a"].dst == 1

    def test_parse_with_directives(self):
        text = """
        scheme fig2-s2
        size 20M
        0 -> 1 : a
        0 -> 2 : b
        """
        graph = parse_scheme(text)
        assert graph.name == "fig2-s2"
        assert graph["a"].size == 20 * MB
        assert set(graph.names) == {"a", "b"}

    def test_parse_per_edge_size(self):
        graph = parse_scheme("0 -> 1 : x 4MB\n1 -> 2 512k\n")
        assert graph["x"].size == 4 * MB
        assert graph.communications[1].size == 512_000

    def test_comments_and_blank_lines_ignored(self):
        graph = parse_scheme("# a comment\n\n0 -> 1  # trailing comment\n")
        assert len(graph) == 1

    def test_malformed_edge_rejected(self):
        with pytest.raises(SchemeParseError):
            parse_scheme("0 -> \n")

    def test_unknown_line_rejected(self):
        with pytest.raises(SchemeParseError) as excinfo:
            parse_scheme("0 -> 1\nnonsense line\n")
        assert excinfo.value.line == 2

    def test_bad_size_rejected(self):
        with pytest.raises(SchemeParseError):
            parse_scheme("size 12parsecs\n0 -> 1\n")

    def test_round_trip(self):
        original = figure4_scheme()
        parsed = parse_scheme(format_scheme(original))
        assert parsed.to_edge_list() == original.to_edge_list()
        assert parsed.names == original.names
        assert parsed.name == original.name

    def test_round_trip_mixed_sizes(self):
        graph = parse_scheme("0 -> 1 : x 4MB\n2 -> 1 : y 20MB\n")
        again = parse_scheme(format_scheme(graph))
        assert again.to_edge_list() == graph.to_edge_list()


class TestFigure2Schemes:
    def test_ladder_grows_one_communication_at_a_time(self, fig2):
        sizes = [len(fig2[f"S{i}"]) for i in range(1, 7)]
        assert sizes == [1, 2, 3, 4, 5, 6]

    def test_s3_is_a_pure_outgoing_conflict(self, fig2):
        graph = fig2["S3"]
        assert graph.out_degree(0) == 3
        assert all(graph.in_degree(n) == 1 for n in (1, 2, 3))

    def test_s4_adds_an_incoming_communication_to_node_0(self, fig2):
        graph = fig2["S4"]
        assert graph.in_degree(0) == 1
        assert graph["d"].dst == 0

    def test_custom_size_propagates(self):
        schemes = figure2_schemes(size=4 * MB)
        assert all(c.size == 4 * MB for c in schemes["S5"])


class TestConflictLadders:
    def test_outgoing_scheme(self):
        graph = outgoing_conflict_scheme(4)
        assert graph.out_degree(0) == 4
        assert len(graph.nodes) == 5

    def test_incoming_scheme(self):
        graph = incoming_conflict_scheme(3)
        assert graph.in_degree(0) == 3

    def test_invalid_fanout(self):
        with pytest.raises(WorkloadError):
            outgoing_conflict_scheme(0)
        with pytest.raises(WorkloadError):
            incoming_conflict_scheme(0)


class TestReconstructedGraphs:
    def test_figure4_structure(self):
        graph = figure4_scheme()
        assert len(graph) == 6
        assert graph.out_degree(0) == 3
        assert graph.in_degree(3) == 3
        assert graph.delta_o("f") == 1

    def test_figure5_structure(self):
        graph = figure5_graph()
        assert len(graph) == 6
        # the doubly contended destination node receives three communications
        assert graph.in_degree(2) == 3
        assert graph.out_degree(0) == 3

    def test_mk1_is_a_tree(self):
        import networkx as nx
        graph = mk1_tree()
        undirected = nx.Graph()
        for comm in graph:
            undirected.add_edge(comm.src, comm.dst)
        assert nx.is_tree(undirected)
        assert len(graph) == 7
        assert len(graph.nodes) == 8

    def test_mk2_is_a_complete_graph(self):
        graph = mk2_complete()
        assert len(graph) == 10
        assert len(graph.nodes) == 5
        pairs = {frozenset((c.src, c.dst)) for c in graph}
        assert len(pairs) == 10   # one communication per unordered pair

    def test_default_sizes_match_the_paper(self):
        assert all(c.size == 4 * MB for c in figure4_scheme())
        assert all(c.size == 20 * MB for c in figure5_graph())
        assert all(c.size == 4 * MB for c in mk1_tree())


class TestSchemeRegistry:
    def test_every_builder_produces_a_graph(self):
        for name in SCHEME_BUILDERS:
            graph = get_scheme(name)
            assert len(graph) >= 1

    def test_get_scheme_with_size(self):
        graph = get_scheme("mk2", size=1 * MB)
        assert all(c.size == 1 * MB for c in graph)

    def test_get_scheme_unknown(self):
        with pytest.raises(WorkloadError):
            get_scheme("fig99")
