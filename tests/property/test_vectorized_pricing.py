"""Property tests: numpy batch pricing is bit-exact with the scalar models.

``ContentionModel.penalties_batch`` prices several component selections in
one numpy dispatch; the incremental engine routes every cache-miss set of a
calendar flush through it when ``vectorized=True``.  The contract is strict
bit-exactness: for any communication graph, pricing the conflict components
through the batch path must return exactly (``==`` on floats, not approx)
what the scalar ``component_penalties`` loop and the whole-graph
``penalties`` call produce, for every shipped model and baseline.  The
engine-level test closes the loop: a vectorized ``ModelRateProvider`` and a
scalar one must emit identical rate streams over arbitrary delta sequences.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import GigabitEthernetModel, InfinibandModel, MyrinetModel
from repro.core.baselines import (
    FairShareModel,
    KimLeeModel,
    LogGPContentionAdapter,
    LogGPCostModel,
    NoContentionModel,
)
from repro.core.graph import Communication, CommunicationGraph, ConflictRule
from repro.network.fluid import Transfer
from repro.simulator.providers import ModelRateProvider

MODEL_FACTORIES = [
    GigabitEthernetModel,
    MyrinetModel,
    InfinibandModel,
    NoContentionModel,
    FairShareModel,
    KimLeeModel,
    lambda: LogGPContentionAdapter(LogGPCostModel(L=5e-6, o=1e-6, g=2e-6, G=1e-8)),
]
MODEL_IDS = [
    "ethernet", "myrinet", "infiniband", "no-contention", "fair-share",
    "kim-lee", "loggp",
]

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# small host universe so endpoint conflicts are common; intra-node pairs
# (src == dst) are produced regularly
graph_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 10**7)),
    min_size=0, max_size=24,
)


def build_graph(triples) -> CommunicationGraph:
    graph = CommunicationGraph(name="batch-prop")
    for index, (src, dst, size) in enumerate(triples):
        graph.add(Communication(name=f"c{index}", src=src, dst=dst, size=size))
    return graph


class TestBatchPricingBitExact:
    @pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=MODEL_IDS)
    @common_settings
    @given(triples=graph_strategy)
    def test_batch_equals_scalar_components_and_full_graph(self, factory, triples):
        model = factory()
        graph = build_graph(triples)
        rule = model.component_rule or ConflictRule.ENDPOINT
        # conflict components plus the intra-node communications (which never
        # conflict) — together they cover the whole graph, like the engine's
        # dirty sets do
        selections = [list(names) for names in graph.conflict_components(rule)]
        intra = [comm.name for comm in graph if comm.is_intra_node]
        if intra:
            selections.append(intra)

        batched = model.penalties_batch(graph, selections)
        scalar = [model.component_penalties(graph, names) for names in selections]
        assert batched == scalar

        merged = {}
        for result in batched:
            merged.update(result)
        assert merged == model.penalties(graph)
        # the trace layer JSON-serialises penalties: no numpy scalars allowed
        assert all(type(v) is float for v in merged.values())

    @common_settings
    @given(triples=graph_strategy, keep=st.integers(0, 1))
    def test_batch_of_a_component_subset(self, triples, keep):
        """Selections need not cover the graph — any sub-collection of
        conflict components prices exactly like the scalar loop."""
        model = GigabitEthernetModel()
        graph = build_graph(triples)
        components = graph.conflict_components(ConflictRule.ENDPOINT)
        subset = [list(names) for names in components[keep::2]]
        batched = model.penalties_batch(graph, subset)
        for names, result in zip(subset, batched):
            assert result == model.component_penalties(graph, names)


# --- engine level: vectorized and scalar providers over delta sequences ----
step_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("del"), st.integers(0, 30), st.integers(0, 0)),
)
sequence_strategy = st.lists(step_strategy, min_size=1, max_size=30)


def deltas(steps, max_live=8):
    live = {}
    counter = 0
    out = []
    for kind, x, y in steps:
        if kind == "add" and len(live) < max_live:
            transfer = Transfer(transfer_id=counter, src=x, dst=y, size=1000.0)
            live[counter] = transfer
            counter += 1
            out.append(([transfer], [], dict(live)))
        elif kind == "del" and live:
            tid = list(live)[x % len(live)]
            del live[tid]
            out.append(([], [tid], dict(live)))
    return out


class TestVectorizedProviderBitExact:
    @pytest.mark.parametrize(
        "factory", [GigabitEthernetModel, MyrinetModel, InfinibandModel],
        ids=["ethernet", "myrinet", "infiniband"],
    )
    @common_settings
    @given(steps=sequence_strategy)
    def test_vectorized_and_scalar_update_streams_identical(self, factory, steps):
        vec = ModelRateProvider(factory(), "ethernet", vectorized=True)
        ref = ModelRateProvider(factory(), "ethernet", vectorized=False)
        for added, removed, _live in deltas(steps):
            changed_vec = vec.update(added, removed)
            changed_ref = ref.update(added, removed)
            assert changed_vec == changed_ref
            assert all(type(r) is float for r in changed_vec.values())
