"""Property-based tests: tracing never perturbs the simulation.

The acceptance bar of the trace pipeline: attaching a sink (memory or
JSONL) must produce **bit-for-bit** the results of an untraced run — over
random applications, placements, both provider families and both loops
(execution engine and fluid simulator) — and a disabled sink must behave
exactly like no sink at all.  Tracing is observability, never physics.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.network.topology import CrossbarTopology
from repro.simulator import (
    ANY_SOURCE,
    Application,
    BackgroundTrafficInjector,
    EngineConfig,
    Simulator,
)
from repro.simulator.providers import ModelRateProvider
from repro.trace import MemoryTraceSink, NullTraceSink
from repro.units import KiB, MB

common_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# the same anti-deadlock round structure the calendar-engine properties use
round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=4),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
    "provider": st.sampled_from(["model", "emulator"]),
    "loaded": st.booleans(),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="trace-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def make_provider(kind, cluster):
    if kind == "model":
        return ModelRateProvider(GigabitEthernetModel(), "ethernet")
    topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                technology=cluster.technology)
    return EmulatorRateProvider(cluster.technology, topology)


def run_engine(spec, app, cluster, trace):
    injectors = ()
    if spec["loaded"]:
        injectors = (BackgroundTrafficInjector(
            rate=200.0, size=1 * MB, seed=spec["seed"], max_flows=6),)
    sim = Simulator(cluster, make_provider(spec["provider"], cluster),
                    config=EngineConfig(injectors=injectors), trace=trace)
    placement = make_placement(spec["policy"], cluster, app.num_tasks,
                               seed=spec["seed"])
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task, sim.last_engine_stats


#: strategy counters: an attached sink pins the calendar to the dict
#: handoff tier (the array/slot tiers skip the per-flush trace records), so
#: which tier served a flush — never the work done — differs under tracing
STRATEGY_COUNTERS = ("bulk_merges", "bulk_entries", "handoff_tier_slots",
                     "handoff_tier_arrays", "handoff_tier_dict")


def comparable(outcome):
    records, finish, stats = outcome
    flat = stats.as_dict()
    for key in STRATEGY_COUNTERS:
        flat.pop(key, None)
    return records, finish, flat


class TestTraceOffBitExact:
    @common_settings
    @given(spec=workload_strategy)
    def test_tracing_is_bit_exact_in_the_engine(self, spec):
        """Untraced, null-sink and memory-sink runs are identical — for the
        model and the emulator provider, clean and loaded fabrics."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        untraced = run_engine(spec, app, cluster, trace=None)
        null_sink = run_engine(spec, app, cluster, trace=NullTraceSink())
        memory = MemoryTraceSink()
        traced = run_engine(spec, app, cluster, trace=memory)
        assert comparable(null_sink) == comparable(untraced)
        assert comparable(traced) == comparable(untraced)
        # the trace actually observed the run it did not perturb
        assert memory.emitted > 0
        kinds = memory.log().kinds()
        assert kinds["task.event"] == len(untraced[0])
        assert kinds["calendar.complete"] == untraced[2]["completions"]

    @common_settings
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 40)),
            min_size=1, max_size=10,
        ),
        provider=st.sampled_from(["model", "emulator"]),
    )
    def test_tracing_is_bit_exact_in_the_fluid_simulator(self, entries, provider):
        transfers = [
            Transfer(i, src, dst, 100_000.0 * ticks, start_time=0.001 * i)
            for i, (src, dst, ticks) in enumerate(entries)
        ]
        cluster = custom_cluster(num_nodes=4, cores_per_node=1,
                                 technology="ethernet")
        untraced_sim = FluidTransferSimulator(make_provider(provider, cluster))
        untraced = untraced_sim.run(transfers)
        memory = MemoryTraceSink()
        traced_sim = FluidTransferSimulator(make_provider(provider, cluster),
                                            trace=memory)
        traced = traced_sim.run(transfers)
        assert traced == untraced
        traced_stats = traced_sim.last_calendar_stats.as_dict()
        untraced_stats = untraced_sim.last_calendar_stats.as_dict()
        for key in STRATEGY_COUNTERS:
            traced_stats.pop(key, None)
            untraced_stats.pop(key, None)
        assert traced_stats == untraced_stats
        assert memory.emitted > 0
