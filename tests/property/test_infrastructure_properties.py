"""Property-based tests on the sharing solver, the fluid simulator, placements
and the scheme language round-trip."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core.graph import CommunicationGraph
from repro.network import FlowSpec, FluidTransferSimulator, Transfer, max_min_allocation
from repro.scheme import format_scheme, parse_scheme
from repro.units import MB

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestMaxMinProperties:
    @common_settings
    @given(
        num_flows=st.integers(1, 8),
        capacity=st.floats(1.0, 1e9, allow_nan=False, allow_infinity=False),
        caps=st.lists(st.floats(0.5, 1e9), min_size=8, max_size=8),
    )
    def test_feasibility_and_cap_respect(self, num_flows, capacity, caps):
        flows = [FlowSpec(i, ("r",), cap=caps[i]) for i in range(num_flows)]
        rates = max_min_allocation(flows, {"r": capacity})
        assert sum(rates.values()) <= capacity * (1 + 1e-9)
        for flow in flows:
            assert rates[flow.flow_id] <= flow.cap * (1 + 1e-9)
            assert rates[flow.flow_id] >= 0.0

    @common_settings
    @given(num_flows=st.integers(1, 8), capacity=st.floats(1.0, 1e9))
    def test_uncapped_flows_share_equally(self, num_flows, capacity):
        flows = [FlowSpec(i, ("r",)) for i in range(num_flows)]
        rates = max_min_allocation(flows, {"r": capacity})
        expected = capacity / num_flows
        for value in rates.values():
            assert value == pytest.approx(expected, rel=1e-6)

    @common_settings
    @given(
        num_flows=st.integers(2, 6),
        capacity=st.floats(10.0, 1e6),
        seed=st.integers(0, 100),
    )
    def test_work_conservation_on_the_bottleneck(self, num_flows, capacity, seed):
        """If no flow is cap-limited, the bottleneck resource is fully used."""
        flows = [FlowSpec(i, ("r",)) for i in range(num_flows)]
        rates = max_min_allocation(flows, {"r": capacity})
        assert sum(rates.values()) == pytest.approx(capacity, rel=1e-9)


class _FairShare:
    def rates(self, active):
        return {t.transfer_id: 100.0 / len(active) for t in active}


class TestFluidSimulatorProperties:
    @common_settings
    @given(
        sizes=st.lists(st.floats(1.0, 1e4), min_size=1, max_size=6),
        latency=st.floats(0.0, 1.0),
    )
    def test_all_transfers_finish_and_conserve_bytes(self, sizes, latency):
        sim = FluidTransferSimulator(_FairShare(), latency=latency)
        transfers = [Transfer(i, 0, i + 1, s) for i, s in enumerate(sizes)]
        results = sim.run(transfers)
        assert set(results) == {t.transfer_id for t in transfers}
        for transfer in transfers:
            result = results[transfer.transfer_id]
            assert result.duration >= latency - 1e-12
            # a transfer can never beat the full-capacity lower bound
            assert result.duration >= transfer.size / 100.0 + latency - 1e-9

    @common_settings
    @given(sizes=st.lists(st.floats(1.0, 1e4), min_size=2, max_size=6))
    def test_makespan_at_least_total_work_over_capacity(self, sizes):
        sim = FluidTransferSimulator(_FairShare())
        transfers = [Transfer(i, 0, i + 1, s) for i, s in enumerate(sizes)]
        makespan = sim.makespan(transfers)
        assert makespan >= sum(sizes) / 100.0 - 1e-9


class TestPlacementProperties:
    @common_settings
    @given(
        num_nodes=st.integers(1, 10),
        cores=st.integers(1, 4),
        tasks=st.integers(1, 30),
        policy=st.sampled_from(["RRN", "RRP", "random"]),
        seed=st.integers(0, 50),
    )
    def test_placements_are_total_and_within_bounds(self, num_nodes, cores, tasks, policy, seed):
        cluster = custom_cluster(num_nodes=num_nodes, cores_per_node=cores)
        if tasks > num_nodes * cores:
            return  # capacity errors are tested elsewhere
        placement = make_placement(policy, cluster, tasks, seed=seed)
        assert placement.num_tasks == tasks
        assert all(0 <= n < num_nodes for n in placement.node_of_rank)
        counts = placement.tasks_per_node()
        assert sum(counts.values()) == tasks

    @common_settings
    @given(
        num_nodes=st.integers(2, 10),
        cores=st.integers(1, 4),
        tasks=st.integers(2, 30),
    )
    def test_rrp_fills_nodes_contiguously(self, num_nodes, cores, tasks):
        cluster = custom_cluster(num_nodes=num_nodes, cores_per_node=cores)
        if tasks > num_nodes * cores:
            return
        placement = make_placement("RRP", cluster, tasks)
        nodes = placement.node_of_rank
        assert all(nodes[i] <= nodes[i + 1] for i in range(len(nodes) - 1))


class TestSchemeLanguageProperties:
    @common_settings
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
            min_size=1, max_size=12, unique=True,
        ),
        size=st.sampled_from([1 * MB, 4 * MB, 20 * MB]),
    )
    def test_format_parse_round_trip(self, edges, size):
        graph = CommunicationGraph.from_edges(list(edges), size=size, name="prop")
        again = parse_scheme(format_scheme(graph))
        assert again.to_edge_list() == graph.to_edge_list()
        assert again.names == graph.names
